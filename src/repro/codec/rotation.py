"""Homopolymer-free rotating ternary code (Goldman-style).

Each trit (base-3 digit) selects one of the three bases *different from the
previous base*, so the output never contains two identical consecutive
bases. This is the constrained-coding alternative the paper's Section 2.1
mentions; it trades density (log2(3) ~ 1.585 bits/base versus 2) for
robustness of synthesis/sequencing.

Bits are first converted to a big integer, then to base-3 digits, so the
codec is exact and reversible for any bit length. A fixed-width header of
base-3 digits carries the bit length so decoding knows how much to emit.
"""

from __future__ import annotations

import numpy as np

from repro.codec.basemap import BASES

_LENGTH_HEADER_TRITS = 16  # supports payloads up to 3^16 - 1 = ~43M bits


class RotationCodec:
    """Ternary rotation codec producing homopolymer-free DNA strings."""

    bits_per_base = np.log2(3)

    def encode(self, bits: np.ndarray, previous_base: str = "A") -> str:
        """Encode a 0/1 array into a homopolymer-free DNA string.

        Args:
            bits: the payload bits.
            previous_base: base assumed to precede the output (the first
                emitted base will differ from it).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0 or 1")
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        trits = self._to_trits(value)
        header = self._int_to_fixed_trits(bits.size, _LENGTH_HEADER_TRITS)
        return self._trits_to_bases(header + trits, previous_base)

    def decode(self, strand: str, previous_base: str = "A") -> np.ndarray:
        """Decode a strand produced by :meth:`encode` back to bits."""
        trits = self._bases_to_trits(strand, previous_base)
        if len(trits) < _LENGTH_HEADER_TRITS:
            raise ValueError("strand too short to contain the length header")
        n_bits = self._fixed_trits_to_int(trits[:_LENGTH_HEADER_TRITS])
        value = 0
        for trit in trits[_LENGTH_HEADER_TRITS:]:
            value = value * 3 + trit
        bits = np.zeros(n_bits, dtype=np.uint8)
        for i in range(n_bits - 1, -1, -1):
            bits[i] = value & 1
            value >>= 1
        if value != 0:
            raise ValueError("payload value exceeds declared bit length")
        return bits

    def encoded_length(self, n_bits: int) -> int:
        """Bases required to encode ``n_bits`` bits (header included)."""
        if n_bits == 0:
            payload_trits = 1  # the zero payload still emits one trit
        else:
            # ceil(n_bits / log2(3)) is a tight bound; compute exactly below.
            payload_trits = int(np.ceil(n_bits / np.log2(3))) + 1
        return _LENGTH_HEADER_TRITS + payload_trits

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _to_trits(value: int) -> list:
        if value == 0:
            return [0]
        trits = []
        while value:
            trits.append(value % 3)
            value //= 3
        return trits[::-1]

    @staticmethod
    def _int_to_fixed_trits(value: int, width: int) -> list:
        if value >= 3**width:
            raise ValueError(f"value {value} does not fit in {width} trits")
        trits = [0] * width
        for i in range(width - 1, -1, -1):
            trits[i] = value % 3
            value //= 3
        return trits

    @staticmethod
    def _fixed_trits_to_int(trits: list) -> int:
        value = 0
        for trit in trits:
            value = value * 3 + trit
        return value

    @staticmethod
    def _trits_to_bases(trits: list, previous_base: str) -> str:
        if previous_base not in BASES:
            raise ValueError(f"invalid previous base {previous_base!r}")
        out = []
        current = previous_base
        for trit in trits:
            candidates = [b for b in BASES if b != current]
            current = candidates[trit]
            out.append(current)
        return "".join(out)

    @staticmethod
    def _bases_to_trits(strand: str, previous_base: str) -> list:
        if previous_base not in BASES:
            raise ValueError(f"invalid previous base {previous_base!r}")
        trits = []
        current = previous_base
        for base in strand:
            if base not in BASES:
                raise ValueError(f"invalid DNA character {base!r}")
            if base == current:
                raise ValueError("strand violates the no-repeat constraint")
            candidates = [b for b in BASES if b != current]
            trits.append(candidates.index(base))
            current = base
        return trits
