"""The paper's direct 2-bits-per-base mapping (00=A, 01=C, 10=G, 11=T).

DNA strings travel through the library as Python ``str`` of ``ACGT``
characters (readable, easy to diff in tests); hot paths convert to uint8
index arrays with :func:`bases_to_indices`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

BASES = "ACGT"
_BASE_TO_INDEX = {base: i for i, base in enumerate(BASES)}
# Lookup table over ASCII codes for vectorized conversion.
_ASCII_TO_INDEX = np.full(128, -1, dtype=np.int8)
for _i, _b in enumerate(BASES):
    _ASCII_TO_INDEX[ord(_b)] = _i


def bases_to_indices(strand: str) -> np.ndarray:
    """Convert an ACGT string to a uint8 index array (A=0, C=1, G=2, T=3)."""
    codes = np.frombuffer(strand.encode("ascii"), dtype=np.uint8)
    indices = _ASCII_TO_INDEX[codes]
    if np.any(indices < 0):
        bad = strand[int(np.argmax(indices < 0))]
        raise ValueError(f"invalid DNA character {bad!r}")
    return indices.astype(np.uint8)


_INDEX_TO_ASCII = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)


def indices_to_bases(indices: np.ndarray) -> str:
    """Convert an index array back to an ACGT string."""
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() > 3):
        raise ValueError("base indices must be in [0, 3]")
    return _INDEX_TO_ASCII[indices.astype(np.int64)].tobytes().decode("ascii")


def random_bases(length: int, rng: RngLike = None) -> str:
    """Generate a uniformly random DNA string of the given length."""
    generator = ensure_rng(rng)
    return indices_to_bases(generator.integers(0, 4, size=length))


class DirectCodec:
    """Maximum-density mapping between bit arrays and DNA strings.

    Two consecutive bits form one base; the first bit of the pair is the
    high bit (00=A, 01=C, 10=G, 11=T), matching the paper's Section 2.1.
    """

    bits_per_base = 2

    def encode(self, bits: np.ndarray) -> str:
        """Map a 0/1 array (even length) to a DNA string."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % 2 != 0:
            raise ValueError(f"bit count must be even, got {bits.size}")
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0 or 1")
        pairs = bits.reshape(-1, 2)
        indices = pairs[:, 0] * 2 + pairs[:, 1]
        return indices_to_bases(indices)

    def decode(self, strand: str) -> np.ndarray:
        """Map a DNA string back to its 0/1 array."""
        indices = bases_to_indices(strand)
        bits = np.empty(indices.size * 2, dtype=np.uint8)
        bits[0::2] = indices >> 1
        bits[1::2] = indices & 1
        return bits

    def encoded_length(self, n_bits: int) -> int:
        """Number of bases needed for ``n_bits`` bits."""
        if n_bits % 2 != 0:
            raise ValueError(f"bit count must be even, got {n_bits}")
        return n_bits // 2
