"""Binary <-> DNA base coding.

The paper assumes the maximum-density direct mapping (2 bits per base,
00=A 01=C 10=G 11=T) and notes that constrained codes (homopolymer-free,
GC-balanced) are common alternatives. Both are provided:

* :class:`repro.codec.basemap.DirectCodec` — the paper's 2-bit mapping.
* :class:`repro.codec.rotation.RotationCodec` — a Goldman-style rotating
  ternary code that never repeats a base (homopolymer-free).
* :mod:`repro.codec.constraints` — GC-content and homopolymer validators.
"""

from repro.codec.basemap import (
    BASES,
    DirectCodec,
    bases_to_indices,
    indices_to_bases,
    random_bases,
)
from repro.codec.constraints import (
    gc_content,
    max_homopolymer_run,
    violates_constraints,
)
from repro.codec.rotation import RotationCodec

__all__ = [
    "BASES",
    "DirectCodec",
    "RotationCodec",
    "bases_to_indices",
    "indices_to_bases",
    "random_bases",
    "gc_content",
    "max_homopolymer_run",
    "violates_constraints",
]
