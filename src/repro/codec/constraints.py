"""Biochemical sequence constraints: GC content and homopolymer runs.

The paper's Section 2.1 discusses codes that avoid homopolymers (repeated
bases such as ``AAA``) to reduce sequencing errors, and codes that balance
GC content to improve synthesis yield. These validators are used by the
primer-design module and by the constrained codec.
"""

from __future__ import annotations


def gc_content(strand: str) -> float:
    """Fraction of G and C bases in a strand (0.0 for the empty string)."""
    if not strand:
        return 0.0
    gc = sum(1 for base in strand if base in "GC")
    return gc / len(strand)


def max_homopolymer_run(strand: str) -> int:
    """Length of the longest run of one repeated base (0 for empty)."""
    if not strand:
        return 0
    longest = 1
    current = 1
    for previous, base in zip(strand, strand[1:]):
        current = current + 1 if base == previous else 1
        longest = max(longest, current)
    return longest


def violates_constraints(
    strand: str,
    max_run: int = 3,
    gc_low: float = 0.4,
    gc_high: float = 0.6,
) -> bool:
    """True if the strand breaks the homopolymer or GC-window constraints."""
    if max_homopolymer_run(strand) > max_run:
        return True
    content = gc_content(strand)
    return not (gc_low <= content <= gc_high)
