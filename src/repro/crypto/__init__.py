"""Stream-cipher encryption for end-to-end encrypted storage.

The paper's evaluation stores *encrypted* images and stresses that its
content-agnostic bit ranking "allows for approximate storage of end-to-end
encrypted data". That only works because a stream cipher maps a ciphertext
bit flip to the same plaintext bit flip (no avalanche across the file, in
contrast to block ciphers in chained modes). ChaCha20 (RFC 8439) is
implemented from scratch here, plus a tiny convenience wrapper.
"""

from repro.crypto.chacha20 import ChaCha20, chacha20_decrypt, chacha20_encrypt

__all__ = ["ChaCha20", "chacha20_encrypt", "chacha20_decrypt"]
