"""ChaCha20 stream cipher (RFC 8439), implemented from scratch.

Vectorized with numpy: all 16 state words are processed as uint32 arrays,
one array slot per block, so the whole keystream for a message is produced
in 10 double-round passes regardless of length.

Why ChaCha20 here: the paper stores end-to-end *encrypted* images and maps
their bits to DNA positions by priority. Under a stream cipher, flipping
ciphertext bit i flips exactly plaintext bit i — corruption does not
avalanche — so approximate storage of encrypted data is possible. The
property is asserted by tests in ``tests/crypto``.
"""

from __future__ import annotations

import numpy as np

_CONSTANTS = np.array(
    [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32
)  # "expand 32-byte k"


def _rotl32(x: np.ndarray, count: int) -> np.ndarray:
    return ((x << np.uint32(count)) | (x >> np.uint32(32 - count))).astype(np.uint32)


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """One ChaCha quarter round applied across all blocks at once."""
    state[a] += state[b]
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl32(state[b] ^ state[c], 7)


class ChaCha20:
    """ChaCha20 keystream generator / XOR cipher.

    Args:
        key: 32-byte secret key.
        nonce: 12-byte nonce (unique per message under one key).
    """

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(key) != 32:
            raise ValueError(f"key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
        self._key_words = np.frombuffer(key, dtype="<u4").astype(np.uint32)
        self._nonce_words = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)

    def keystream(self, n_bytes: int, initial_counter: int = 1) -> bytes:
        """Generate ``n_bytes`` of keystream starting at a block counter."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return b""
        n_blocks = (n_bytes + 63) // 64
        counters = (
            np.arange(initial_counter, initial_counter + n_blocks) & 0xFFFFFFFF
        ).astype(np.uint32)
        # state[word, block]: 16 words replicated across blocks.
        state = np.empty((16, n_blocks), dtype=np.uint32)
        state[0:4] = _CONSTANTS[:, None]
        state[4:12] = self._key_words[:, None]
        state[12] = counters
        state[13:16] = self._nonce_words[:, None]
        working = state.copy()
        with np.errstate(over="ignore"):
            for _ in range(10):  # 20 rounds = 10 column+diagonal double rounds
                _quarter_round(working, 0, 4, 8, 12)
                _quarter_round(working, 1, 5, 9, 13)
                _quarter_round(working, 2, 6, 10, 14)
                _quarter_round(working, 3, 7, 11, 15)
                _quarter_round(working, 0, 5, 10, 15)
                _quarter_round(working, 1, 6, 11, 12)
                _quarter_round(working, 2, 7, 8, 13)
                _quarter_round(working, 3, 4, 9, 14)
            working += state
        # Serialize: per block, the 16 words little-endian, blocks in order.
        blocks = working.T.astype("<u4").tobytes()
        return blocks[:n_bytes]

    def process(self, data: bytes, initial_counter: int = 1) -> bytes:
        """Encrypt or decrypt (XOR with keystream) — the operation is symmetric."""
        stream = np.frombuffer(self.keystream(len(data), initial_counter),
                               dtype=np.uint8)
        message = np.frombuffer(data, dtype=np.uint8)
        return (message ^ stream).tobytes()


def chacha20_encrypt(data: bytes, key: bytes, nonce: bytes) -> bytes:
    """One-shot encryption with block counter 1 (RFC 8439 convention)."""
    return ChaCha20(key, nonce).process(data)


def chacha20_decrypt(data: bytes, key: bytes, nonce: bytes) -> bytes:
    """One-shot decryption (identical to encryption for a stream cipher)."""
    return ChaCha20(key, nonce).process(data)
