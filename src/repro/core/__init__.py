"""The paper's contribution: skew-aware data layout for DNA storage.

* :mod:`repro.core.layout` — the encoding-matrix abstraction (Figure 1)
  and the three codeword/placement policies: the baseline row layout,
  Gini's diagonal interleaving (Figure 8), and DnaMapper's priority
  zig-zag placement (Figure 9).
* :mod:`repro.core.ranking` — bit-priority heuristics (Section 5.3):
  positional JPEG ranking, the proportional multi-file share, and the
  brute-force oracle.
* :mod:`repro.core.pipeline` — the end-to-end encode/decode pipeline
  (Section 6 methodology).
"""

from repro.core.layout import (
    BaselineLayout,
    DnaMapperLayout,
    GiniLayout,
    LayoutPolicy,
    MatrixConfig,
)
from repro.core.pipeline import (
    DecodeReport,
    DnaStoragePipeline,
    EncodedUnit,
    PipelineConfig,
)
from repro.core.ranking import (
    identity_ranking,
    oracle_ranking,
    positional_ranking,
    proportional_share_ranking,
)
from repro.core.store import (
    DnaStore,
    ReadRequest,
    ReadResult,
    StoreImage,
    StoreReport,
)

__all__ = [
    "MatrixConfig",
    "LayoutPolicy",
    "BaselineLayout",
    "GiniLayout",
    "DnaMapperLayout",
    "PipelineConfig",
    "DnaStoragePipeline",
    "EncodedUnit",
    "DecodeReport",
    "identity_ranking",
    "positional_ranking",
    "proportional_share_ranking",
    "oracle_ranking",
    "DnaStore",
    "ReadRequest",
    "ReadResult",
    "StoreImage",
    "StoreReport",
]
