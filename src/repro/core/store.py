"""Multi-unit storage: payloads larger than one encoding unit.

The paper's encoding unit (matrix) has a fixed capacity; larger payloads
must span several units, each of which would carry its own primer pair in
the wetlab (units are separately amplifiable pools — the key-value model
of Section 2.1). :class:`DnaStore` handles the split:

* the payload is cut into per-unit stripes *round-robin in priority
  order*, so that under DnaMapper every unit receives an even share of
  every priority class (unit 0 does not hoard all the important bits —
  a lost unit then degrades all files proportionally, mirroring the
  paper's multi-file fairness heuristic at the unit level);
* each unit is an independent :class:`DnaStoragePipeline` encode, so all
  layout policies work unchanged;
* decoding accepts per-unit cluster lists and reassembles the stripes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.sequencer import ReadCluster
from repro.consensus.base import Reconstructor
from repro.core.pipeline import DecodeReport, DnaStoragePipeline, EncodedUnit, PipelineConfig


@dataclass
class StoreImage:
    """A payload encoded across several units.

    Attributes:
        units: one :class:`EncodedUnit` per stripe.
        n_data_bits: payload length in bits.
    """

    units: List[EncodedUnit]
    n_data_bits: int

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_strands(self) -> int:
        return sum(len(unit.strands) for unit in self.units)


@dataclass
class StoreReport:
    """Aggregated decode outcome across units."""

    unit_reports: List[DecodeReport]

    @property
    def clean(self) -> bool:
        return all(report.clean for report in self.unit_reports)

    @property
    def total_erased_columns(self) -> int:
        return sum(len(report.erased_columns) for report in self.unit_reports)

    @property
    def total_failed_codewords(self) -> int:
        return sum(len(report.failed_codewords) for report in self.unit_reports)


class DnaStore:
    """Encode/decode byte payloads of arbitrary size across units."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        reconstructor: Optional[Reconstructor] = None,
    ) -> None:
        self.pipeline = DnaStoragePipeline(config, reconstructor=reconstructor)

    @property
    def unit_capacity_bits(self) -> int:
        return self.pipeline.capacity_bits

    def units_needed(self, n_bits: int) -> int:
        """Number of encoding units a payload of ``n_bits`` requires."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be non-negative, got {n_bits}")
        return max(1, -(-n_bits // self.unit_capacity_bits))

    def encode(
        self, bits: np.ndarray, ranking: Optional[np.ndarray] = None
    ) -> StoreImage:
        """Encode a bit array of any size into one or more units.

        Args:
            bits: the payload.
            ranking: optional *global* priority permutation (see
                :mod:`repro.core.ranking`); the prioritized stream is dealt
                round-robin across units, highest priority first.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be a 1-D array")
        if ranking is None:
            prioritized = bits
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (bits.size,):
                raise ValueError("ranking must be a permutation of the bits")
            prioritized = bits[ranking]

        n_units = self.units_needed(bits.size)
        units = []
        for u in range(n_units):
            stripe = prioritized[u::n_units]
            units.append(self.pipeline.encode(stripe))
        return StoreImage(units=units, n_data_bits=bits.size)


    def decode(
        self,
        clusters_per_unit: Sequence[Sequence[ReadCluster]],
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
    ):
        """Decode per-unit clusters back into the payload bits.

        Args:
            clusters_per_unit: one cluster list per unit, in unit order.
            n_data_bits: payload size stored at encode time.
            ranking: the same global permutation used at encode time.

        Returns:
            ``(bits, StoreReport)``.
        """
        n_units = self.units_needed(n_data_bits)
        if len(clusters_per_unit) != n_units:
            raise ValueError(
                f"expected clusters for {n_units} units, got {len(clusters_per_unit)}"
            )
        stripe_sizes = [
            len(range(u, n_data_bits, n_units)) for u in range(n_units)
        ]
        prioritized = np.zeros(n_data_bits, dtype=np.uint8)
        reports = []
        for u, clusters in enumerate(clusters_per_unit):
            stripe, report = self.pipeline.decode(clusters, stripe_sizes[u])
            prioritized[u::n_units] = stripe
            reports.append(report)
        if ranking is None:
            bits = prioritized
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (n_data_bits,):
                raise ValueError("ranking length must equal n_data_bits")
            bits = np.zeros(n_data_bits, dtype=np.uint8)
            bits[ranking] = prioritized
        return bits, StoreReport(unit_reports=reports)
