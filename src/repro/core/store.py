"""Multi-unit storage: payloads larger than one encoding unit.

The paper's encoding unit (matrix) has a fixed capacity; larger payloads
must span several units, each of which would carry its own primer pair in
the wetlab (units are separately amplifiable pools — the key-value model
of Section 2.1). :class:`DnaStore` handles the split:

* the payload is cut into per-unit stripes *round-robin in priority
  order*, so that under DnaMapper every unit receives an even share of
  every priority class (unit 0 does not hoard all the important bits —
  a lost unit then degrades all files proportionally, mirroring the
  paper's multi-file fairness heuristic at the unit level);
* all units encode through one batched
  :meth:`~repro.core.pipeline.DnaStoragePipeline.encode_many` pass, so
  layout policies work unchanged while placement, parity and strand
  rendering run as single array operations across the whole store;
* decoding is the store's batching boundary: one spanning
  :class:`~repro.channel.readbatch.ReadBatch` (units back to back, see
  :meth:`ReadBatch.concat` and ``SequencingSimulator.sequence_store``)
  goes through **one** consensus batch call and one vectorized
  :meth:`~repro.core.pipeline.DnaStoragePipeline.receive_many` pass
  covering every surviving cluster of every unit, feeding per-unit RS
  correction. The original per-unit loop survives as
  :meth:`DnaStore.decode_units` — the frozen differential reference,
  pinned byte-identical by ``tests/core/test_store_batched.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadCluster
from repro.cluster.batched import BatchedGreedyClusterer
from repro.consensus.base import Reconstructor
from repro.core.pipeline import DecodeReport, DnaStoragePipeline, EncodedUnit, PipelineConfig
from repro.observability.manifest import build_manifest
from repro.observability.trace import get_tracer

#: Anything :meth:`DnaStore.decode` can consume: one spanning batch, one
#: batch or cluster list per unit.
StoreReads = Union[
    ReadBatch,
    Sequence[ReadBatch],
    Sequence[Sequence[ReadCluster]],
]


@dataclass
class StoreImage:
    """A payload encoded across several units.

    Attributes:
        units: one :class:`EncodedUnit` per stripe.
        n_data_bits: payload length in bits.
    """

    units: List[EncodedUnit]
    n_data_bits: int

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_strands(self) -> int:
        return sum(len(unit.strands) for unit in self.units)


@dataclass
class StoreReport:
    """Aggregated decode outcome across units."""

    unit_reports: List[DecodeReport]

    @property
    def clean(self) -> bool:
        return all(report.clean for report in self.unit_reports)

    @property
    def total_erased_columns(self) -> int:
        return sum(len(report.erased_columns) for report in self.unit_reports)

    @property
    def total_failed_codewords(self) -> int:
        return sum(len(report.failed_codewords) for report in self.unit_reports)


class DnaStore:
    """Encode/decode byte payloads of arbitrary size across units."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        reconstructor: Optional[Reconstructor] = None,
    ) -> None:
        self.pipeline = DnaStoragePipeline(config, reconstructor=reconstructor)

    @property
    def unit_capacity_bits(self) -> int:
        return self.pipeline.capacity_bits

    def units_needed(self, n_bits: int) -> int:
        """Number of encoding units a payload of ``n_bits`` requires."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be non-negative, got {n_bits}")
        return max(1, -(-n_bits // self.unit_capacity_bits))

    def encode(
        self, bits: np.ndarray, ranking: Optional[np.ndarray] = None
    ) -> StoreImage:
        """Encode a bit array of any size into one or more units.

        Args:
            bits: the payload.
            ranking: optional *global* priority permutation (see
                :mod:`repro.core.ranking`); the prioritized stream is dealt
                round-robin across units, highest priority first.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be a 1-D array")
        if ranking is None:
            prioritized = bits
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (bits.size,):
                raise ValueError("ranking must be a permutation of the bits")
            prioritized = bits[ranking]

        n_units = self.units_needed(bits.size)
        stripes = [prioritized[u::n_units] for u in range(n_units)]
        return StoreImage(
            units=self.pipeline.encode_many(stripes), n_data_bits=bits.size
        )

    def decode(
        self,
        reads: StoreReads,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Decode a whole store's reads back into the payload bits.

        The store is the batching boundary: whatever form the reads
        arrive in, they are normalized into one spanning
        :class:`~repro.channel.readbatch.ReadBatch` (units back to back)
        and decoded through a **single** consensus batch call plus one
        vectorized :meth:`~repro.core.pipeline.DnaStoragePipeline.
        receive_many` pass over every surviving cluster of every unit;
        only the RS correction runs per unit. Output is byte-identical to
        the frozen per-unit loop (:meth:`decode_units`).

        Args:
            reads: one spanning :class:`ReadBatch` covering all units
                (what ``SequencingSimulator.sequence_store`` or
                ``ReadPool.for_store(...).batch_at`` emit), or one
                :class:`ReadBatch` per unit, or one
                :class:`ReadCluster` list per unit.
            n_data_bits: payload size stored at encode time.
            ranking: the same global permutation used at encode time.
            confidence_threshold: when set (and the reconstructor exposes
                confidence output), low-confidence payload cells become
                advisory RS erasures, as in
                :meth:`~repro.core.pipeline.DnaStoragePipeline.receive`.

        Returns:
            ``(bits, StoreReport)``.
        """
        n_units = self.units_needed(n_data_bits)
        tracer = get_tracer()
        with tracer.span(
            "store.decode", n_units=n_units, n_data_bits=n_data_bits
        ):
            batch, boundaries = self._spanning_batch(reads, n_units)
            received = self.pipeline.receive_many(
                batch, boundaries, confidence_threshold=confidence_threshold
            )
            result = self._correct_units(received, n_data_bits, ranking)
        self._emit_manifest(tracer, "store.decode")
        return result

    def decode_pool(
        self,
        pool: ReadBatch,
        n_data_bits: int,
        clusterer: Optional[BatchedGreedyClusterer] = None,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Decode a whole store from *unlabeled* per-unit read pools.

        The realistic retrieval workload: ``pool`` holds one cluster per
        encoding unit — the unit's amplification pool, reads unordered
        and untagged, exactly what ``SequencingSimulator.sequence_store
        (..., labeled=False)`` emits. Unit membership is physical (units
        are separately amplifiable pools with their own primer pairs);
        *strand* membership within a unit is what the clustering
        subsystem recovers. Each pool is clustered independently on the
        columnar plane, then every recovered cluster of every unit
        decodes through the same single-pass
        :meth:`~repro.core.pipeline.DnaStoragePipeline.receive_many`
        as labeled reads — ``receive_many`` takes the recovered-cluster
        boundary table directly, the consensus strands name their
        columns via the embedded index field, and RS absorbs residual
        clustering mistakes.

        Args:
            pool: one cluster per unit (``n_clusters == n_units``).
            n_data_bits: payload size stored at encode time.
            clusterer: the batched greedy clusterer to use; defaults to
                the strand-length-derived threshold
                (:meth:`BatchedGreedyClusterer.for_strand_length`).
            ranking: the same global permutation used at encode time.
            confidence_threshold: as in :meth:`decode`.

        Returns:
            ``(bits, StoreReport)``.
        """
        n_units = self.units_needed(n_data_bits)
        if pool.n_clusters != n_units:
            raise ValueError(
                f"pool holds {pool.n_clusters} unit pools; the payload "
                f"spans {n_units} units"
            )
        if clusterer is None:
            clusterer = BatchedGreedyClusterer.for_strand_length(
                self.pipeline.matrix_config.strand_length
            )
        tracer = get_tracer()
        with tracer.span(
            "store.decode_pool", n_units=n_units, n_reads=pool.n_reads,
            n_data_bits=n_data_bits,
        ):
            labeled, boundaries = clusterer.cluster_pools(pool)
            received = self.pipeline.receive_many(
                labeled, boundaries, confidence_threshold=confidence_threshold
            )
            result = self._correct_units(received, n_data_bits, ranking)
        self._emit_manifest(tracer, "store.decode_pool")
        return result

    def decode_units(
        self,
        reads: StoreReads,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Frozen per-unit reference decode (one pipeline pass per unit).

        The original store decode loop, kept — like the per-cluster
        reconstructors in :mod:`repro.consensus.reference` — as the
        differential baseline the batched :meth:`decode` is pinned
        against. Accepts the same input forms and returns byte-identical
        results; it is simply N reconstructor calls instead of one.
        """
        n_units = self.units_needed(n_data_bits)
        received = [
            self.pipeline.receive(
                unit_reads, confidence_threshold=confidence_threshold
            )
            for unit_reads in self._per_unit_reads(reads, n_units)
        ]
        return self._correct_units(received, n_data_bits, ranking)

    def _emit_manifest(self, tracer, name: str) -> None:
        """Snapshot a recording tracer into a RunManifest.

        Manifests aggregate *the whole tracer so far* — channel spans
        recorded earlier under the same tracer (e.g. by
        ``SequencingSimulator``) are part of the run's story, and a
        tracer reused across several decodes accumulates all of them
        (use one tracer per run for one-run manifests). Tracers with
        ``auto_manifest`` off (long decode loops that build one
        manifest at the end, e.g. the benchmark harness) skip this.
        """
        if not tracer.is_recording or not getattr(
            tracer, "auto_manifest", True
        ):
            return
        tracer.attach_manifest(
            build_manifest(tracer, name, config=self.pipeline.config)
        )

    def _correct_units(self, received, n_data_bits, ranking):
        """Batched RS correction + stripe reassembly (shared tail).

        All units' dirty codewords decode through one
        :meth:`~repro.core.pipeline.DnaStoragePipeline.correct_many`
        call — a single batched errata wave (plus at most one
        soft-erasure retry wave) for the whole store.
        """
        n_units = self.units_needed(n_data_bits)
        stripe_sizes = [
            len(range(u, n_data_bits, n_units)) for u in range(n_units)
        ]
        prioritized = np.zeros(n_data_bits, dtype=np.uint8)
        reports = []
        corrected = self.pipeline.correct_many(received, stripe_sizes)
        for u, (stripe, report) in enumerate(corrected):
            prioritized[u::n_units] = stripe
            reports.append(report)
        if ranking is None:
            bits = prioritized
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (n_data_bits,):
                raise ValueError("ranking length must equal n_data_bits")
            bits = np.zeros(n_data_bits, dtype=np.uint8)
            bits[ranking] = prioritized
        return bits, StoreReport(unit_reports=reports)

    def _spanning_batch(
        self, reads: StoreReads, n_units: int
    ) -> Tuple[ReadBatch, np.ndarray]:
        """Normalize any accepted input form into ``(batch, boundaries)``.

        ``boundaries`` is the per-unit cluster boundary table
        (``boundaries[u] .. boundaries[u+1]`` are unit ``u``'s cluster
        slots in the spanning batch).
        """
        if isinstance(reads, ReadBatch):
            n_columns = self._validate_spanning(reads, n_units)
            boundaries = np.arange(n_units + 1, dtype=np.int64) * n_columns
            return reads, boundaries
        per_unit = [
            unit if isinstance(unit, ReadBatch)
            else ReadBatch.from_clusters(unit)
            for unit in self._per_unit_reads(reads, n_units)
        ]
        counts = np.array([batch.n_clusters for batch in per_unit],
                          dtype=np.int64)
        boundaries = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        return ReadBatch.concat(per_unit), boundaries

    def _per_unit_reads(self, reads: StoreReads, n_units: int) -> List:
        """Split any accepted input form into per-unit pieces."""
        if isinstance(reads, ReadBatch):
            n_columns = self._validate_spanning(reads, n_units)
            return [
                reads.select_clusters(u * n_columns, (u + 1) * n_columns)
                for u in range(n_units)
            ]
        if len(reads) != n_units:
            raise ValueError(
                f"expected clusters for {n_units} units, got {len(reads)}"
            )
        return list(reads)

    def _validate_spanning(self, batch: ReadBatch, n_units: int) -> int:
        """Check a spanning batch's cluster count; returns ``n_columns``."""
        n_columns = self.pipeline.matrix_config.n_columns
        if batch.n_clusters != n_units * n_columns:
            raise ValueError(
                f"spanning batch holds {batch.n_clusters} clusters; "
                f"expected {n_units} units x {n_columns} columns"
            )
        return n_columns
