"""Multi-unit storage: payloads larger than one encoding unit.

The paper's encoding unit (matrix) has a fixed capacity; larger payloads
must span several units, each of which would carry its own primer pair in
the wetlab (units are separately amplifiable pools — the key-value model
of Section 2.1). :class:`DnaStore` handles the split:

* the payload is cut into per-unit stripes *round-robin in priority
  order*, so that under DnaMapper every unit receives an even share of
  every priority class (unit 0 does not hoard all the important bits —
  a lost unit then degrades all files proportionally, mirroring the
  paper's multi-file fairness heuristic at the unit level);
* all units encode through one batched
  :meth:`~repro.core.pipeline.DnaStoragePipeline.encode_many` pass, so
  layout policies work unchanged while placement, parity and strand
  rendering run as single array operations across the whole store;
* decoding is the store's batching boundary: one spanning
  :class:`~repro.channel.readbatch.ReadBatch` (units back to back, see
  :meth:`ReadBatch.concat` and ``SequencingSimulator.sequence_store``)
  goes through **one** consensus batch call and one vectorized
  :meth:`~repro.core.pipeline.DnaStoragePipeline.receive_many` pass
  covering every surviving cluster of every unit, feeding per-unit RS
  correction. The original per-unit loop survives behind
  ``ReadRequest(reference=True)`` — the frozen differential reference,
  pinned byte-identical by ``tests/core/test_store_batched.py``.

The read surface is request-shaped: :meth:`DnaStore.read` takes one
:class:`ReadRequest` (labeled reads, an unlabeled pool, or the frozen
reference path, with per-request ranking/confidence options) and returns
a :class:`ReadResult`; :meth:`DnaStore.read_many` coalesces many
requests into **one** spanning consensus pass and **one** batched RS
errata pass shared across all of them — the amortization the
:mod:`repro.service` plane builds its tick loop on. The legacy
``decode`` / ``decode_pool`` / ``decode_units`` names survive as thin
deprecated wrappers over the same engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadCluster
from repro.cluster.batched import BatchedGreedyClusterer
from repro.cluster.lsh import LSHClusterer
from repro.consensus.base import Reconstructor
from repro.core.pipeline import DecodeReport, DnaStoragePipeline, EncodedUnit, PipelineConfig
from repro.observability.manifest import build_manifest
from repro.observability.trace import get_tracer

#: Anything :meth:`DnaStore.decode` can consume: one spanning batch, one
#: batch or cluster list per unit.
StoreReads = Union[
    ReadBatch,
    Sequence[ReadBatch],
    Sequence[Sequence[ReadCluster]],
]

#: Any clusterer a pooled request can ride: the exact batched greedy
#: scan, or the sub-linear LSH-banded path for large pools — anything
#: exposing the ``cluster_pools(batch, pool_boundaries)`` surface.
PoolClusterer = Union[BatchedGreedyClusterer, LSHClusterer]


@dataclass
class StoreImage:
    """A payload encoded across several units.

    Attributes:
        units: one :class:`EncodedUnit` per stripe.
        n_data_bits: payload length in bits.
    """

    units: List[EncodedUnit]
    n_data_bits: int

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_strands(self) -> int:
        return sum(len(unit.strands) for unit in self.units)


@dataclass
class StoreReport:
    """Aggregated decode outcome across units."""

    unit_reports: List[DecodeReport]

    @property
    def clean(self) -> bool:
        return all(report.clean for report in self.unit_reports)

    @property
    def total_erased_columns(self) -> int:
        return sum(len(report.erased_columns) for report in self.unit_reports)

    @property
    def total_failed_codewords(self) -> int:
        return sum(len(report.failed_codewords) for report in self.unit_reports)


@dataclass
class ReadRequest:
    """One object-read request for :meth:`DnaStore.read` / ``read_many``.

    A request names *what to decode* and *how*: labeled reads (the
    default), an unlabeled per-unit pool (``pool=True``, reads clustered
    first — what ``decode_pool`` did), or the frozen per-unit reference
    loop (``reference=True`` — what ``decode_units`` did). Options that
    were keyword arguments on the three legacy entry points travel with
    the request, so :meth:`DnaStore.read_many` can coalesce requests
    with heterogeneous options into shared batch passes.

    Attributes:
        reads: the read material — anything :data:`StoreReads` accepts
            for labeled/reference requests; one :class:`ReadBatch` with
            one cluster (pool) per unit when ``pool`` is set.
        n_data_bits: payload size stored at encode time.
        pool: when True, ``reads`` is an unlabeled per-unit pool batch
            and is clustered before decoding.
        reference: when True, decode through the frozen per-unit
            reference loop (one pipeline pass per unit) instead of the
            batched engine.
        ranking: the global priority permutation used at encode time.
        confidence_threshold: advisory-erasure threshold, as in
            :meth:`~repro.core.pipeline.DnaStoragePipeline.receive`.
        clusterer: pooled requests only — which clusterer recovers the
            pool's clusters: :class:`~repro.cluster.BatchedGreedyClusterer`
            (exact greedy scan, the default at a strand-length-derived
            threshold) or :class:`~repro.cluster.LSHClusterer`
            (sub-linear candidate generation for large pools).
        object_id: opaque caller tag, copied onto the result (the
            service plane keys its queue and cache on it).
        request_id: opaque per-request tag, also copied onto the
            result — the service plane stamps its monotonically
            assigned ticket numbers here so a result can be joined
            against the structured event log.
    """

    reads: StoreReads
    n_data_bits: int
    pool: bool = False
    reference: bool = False
    ranking: Optional[np.ndarray] = None
    confidence_threshold: Optional[float] = None
    clusterer: Optional[PoolClusterer] = None
    object_id: Optional[object] = None
    request_id: Optional[int] = None


@dataclass
class ReadResult:
    """The outcome of one :class:`ReadRequest`.

    Wraps the payload bits and the existing :class:`StoreReport` (no
    parallel report type); iterable as ``(bits, report)`` so call sites
    written against the legacy tuple shape unpack unchanged.

    Attributes:
        bits: the decoded payload.
        report: per-unit decode outcomes.
        object_id: echoed from the request.
        request_id: echoed from the request (the service plane's ticket
            number — the join key into its event log).
        cache_hit: True when the service plane answered entirely from
            its decoded-unit cache (no pipeline work).
        seconds: wall-clock serve time (queue wait included when the
            service plane answers; 0.0 when not measured).
    """

    bits: np.ndarray
    report: StoreReport
    object_id: Optional[object] = None
    request_id: Optional[int] = None
    cache_hit: bool = False
    seconds: float = 0.0

    def __iter__(self):
        yield self.bits
        yield self.report

    @property
    def clean(self) -> bool:
        return self.report.clean


class DnaStore:
    """Encode/decode byte payloads of arbitrary size across units."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        reconstructor: Optional[Reconstructor] = None,
    ) -> None:
        self.pipeline = DnaStoragePipeline(config, reconstructor=reconstructor)

    @property
    def unit_capacity_bits(self) -> int:
        return self.pipeline.capacity_bits

    def units_needed(self, n_bits: int) -> int:
        """Number of encoding units a payload of ``n_bits`` requires."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be non-negative, got {n_bits}")
        return max(1, -(-n_bits // self.unit_capacity_bits))

    def encode(
        self, bits: np.ndarray, ranking: Optional[np.ndarray] = None
    ) -> StoreImage:
        """Encode a bit array of any size into one or more units.

        Args:
            bits: the payload.
            ranking: optional *global* priority permutation (see
                :mod:`repro.core.ranking`); the prioritized stream is dealt
                round-robin across units, highest priority first.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be a 1-D array")
        if ranking is None:
            prioritized = bits
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (bits.size,):
                raise ValueError("ranking must be a permutation of the bits")
            prioritized = bits[ranking]

        n_units = self.units_needed(bits.size)
        stripes = [prioritized[u::n_units] for u in range(n_units)]
        return StoreImage(
            units=self.pipeline.encode_many(stripes), n_data_bits=bits.size
        )

    # -- the read surface ----------------------------------------------------

    def read(self, request: ReadRequest) -> ReadResult:
        """Serve one :class:`ReadRequest`; returns a :class:`ReadResult`.

        The single decode entry point: labeled reads, unlabeled pools
        (``pool=True``) and the frozen per-unit reference loop
        (``reference=True``) all route through the same engine, so every
        option combination the legacy ``decode``/``decode_pool``/
        ``decode_units`` trio exposed is one request field away — and
        stays byte-identical to those paths (pinned by
        ``tests/core/test_read_api.py``).
        """
        return self._serve([request], "store.read")[0]

    def read_many(self, requests: Sequence[ReadRequest]) -> List[ReadResult]:
        """Serve many requests through **shared** batch passes.

        The coalescing boundary the service plane amortizes on: all
        non-reference requests are merged — pooled requests sharing a
        clusterer go through one
        :meth:`~repro.cluster.batched.BatchedGreedyClusterer.
        cluster_pools` call, requests sharing a ``confidence_threshold``
        through one spanning
        :meth:`~repro.core.pipeline.DnaStoragePipeline.receive_many`
        (one consensus batch call), and *every* request's units through
        one :meth:`~repro.core.pipeline.DnaStoragePipeline.correct_many`
        (one batched RS errata pass). Results come back in request
        order, each byte-identical to serving its request alone.
        """
        return self._serve(list(requests), "store.read_many")

    def _serve(
        self,
        requests: List[ReadRequest],
        span_name: str,
        span_attrs: Optional[dict] = None,
    ) -> List[ReadResult]:
        """Run requests through the coalescing engine under one span.

        ``span_attrs`` overrides the default ``n_requests`` attribute —
        the deprecated wrappers pass their legacy span names and
        attributes through here so existing traces and manifests keep
        their shape.
        """
        if span_attrs is None:
            span_attrs = {"n_requests": len(requests)}
        if not requests:
            return []
        tracer = get_tracer()
        with tracer.span(span_name, **span_attrs):
            served = self._read_many_impl(requests)
        self._emit_manifest(tracer, span_name)
        return [
            ReadResult(bits=bits, report=report, object_id=request.object_id,
                       request_id=request.request_id)
            for request, (bits, report, _) in zip(requests, served)
        ]

    def _read_many_impl(
        self, requests: List[ReadRequest]
    ) -> List[Tuple[np.ndarray, StoreReport, Optional[list]]]:
        """The coalescing engine behind :meth:`read`/:meth:`read_many`.

        Returns one ``(bits, StoreReport, corrected)`` triple per
        request, in request order; ``corrected`` is the per-unit
        ``(stripe, DecodeReport)`` list (``None`` on the reference
        path) — the service plane's decoded-unit cache stores those
        stripes, which are ranking-independent (ranking is applied at
        assembly, see :meth:`_assemble_bits`).
        """
        results: List = [None] * len(requests)
        batched = []
        for i, request in enumerate(requests):
            if request.reference:
                bits, report = self._decode_units_reference(
                    request.reads, request.n_data_bits, request.ranking,
                    request.confidence_threshold,
                )
                results[i] = (bits, report, None)
            else:
                batched.append(i)
        if not batched:
            return results

        # One receive_many per distinct confidence threshold (the
        # threshold is a per-call knob of the consensus/receive pass);
        # the homogeneous common case is a single group, i.e. a single
        # consensus batch call for the whole request list.
        groups: dict = {}
        group_order = []
        for i in batched:
            threshold = requests[i].confidence_threshold
            if threshold not in groups:
                groups[threshold] = []
                group_order.append(threshold)
            groups[threshold].append(i)

        default_clusterer = None
        received_by_request: dict = {}
        for threshold in group_order:
            segments = []  # (batch, boundaries, [(request index, n_units)])
            pooled: dict = {}
            pooled_order = []
            for i in groups[threshold]:
                request = requests[i]
                n_units = self.units_needed(request.n_data_bits)
                if request.pool:
                    self._validate_pool(request.reads, n_units)
                    key = (id(request.clusterer)
                           if request.clusterer is not None else None)
                    if key not in pooled:
                        pooled[key] = []
                        pooled_order.append(key)
                    pooled[key].append(i)
                else:
                    segments.append(
                        self._spanning_batch(request.reads, n_units)
                        + ([(i, n_units)],)
                    )
            # Pooled requests sharing a clusterer cluster through ONE
            # cluster_pools call: their pool batches concatenate (one
            # cluster per unit), and pools cluster independently, so
            # each unit's recovered clusters match the solo decode.
            for key in pooled_order:
                indices = pooled[key]
                clusterer = requests[indices[0]].clusterer
                if clusterer is None:
                    if default_clusterer is None:
                        default_clusterer = (
                            BatchedGreedyClusterer.for_strand_length(
                                self.pipeline.matrix_config.strand_length
                            )
                        )
                    clusterer = default_clusterer
                pools = [requests[i].reads for i in indices]
                combined = pools[0] if len(pools) == 1 else (
                    ReadBatch.concat(pools)
                )
                labeled, boundaries = clusterer.cluster_pools(combined)
                owners = [
                    (i, self.units_needed(requests[i].n_data_bits))
                    for i in indices
                ]
                segments.append((labeled, boundaries, owners))

            merged_batch, merged_bounds, owners = self._merge_segments(
                segments
            )
            received = self.pipeline.receive_many(
                merged_batch, merged_bounds,
                confidence_threshold=threshold,
            )
            cursor = 0
            for i, n_units in owners:
                received_by_request[i] = received[cursor:cursor + n_units]
                cursor += n_units

        # ONE batched RS errata pass across every request's units.
        all_received = []
        all_sizes = []
        unit_spans = []
        for i in batched:
            units = received_by_request[i]
            all_received.extend(units)
            all_sizes.extend(
                self._stripe_sizes(requests[i].n_data_bits, len(units))
            )
            unit_spans.append((i, len(units)))
        corrected = self.pipeline.correct_many(all_received, all_sizes)
        cursor = 0
        for i, n_units in unit_spans:
            request_corrected = corrected[cursor:cursor + n_units]
            cursor += n_units
            bits, report = self._assemble_bits(
                request_corrected, requests[i].n_data_bits,
                requests[i].ranking,
            )
            results[i] = (bits, report, request_corrected)
        return results

    @staticmethod
    def _merge_segments(segments):
        """Concatenate ``(batch, boundaries, owners)`` segments into one
        spanning batch + unit boundary table for ``receive_many``."""
        if len(segments) == 1:
            batch, boundaries, owners = segments[0]
            return batch, boundaries, list(owners)
        batches = [segment[0] for segment in segments]
        pieces = [np.zeros(1, dtype=np.int64)]
        owners: List = []
        offset = 0
        for batch, boundaries, segment_owners in segments:
            pieces.append(np.asarray(boundaries[1:], dtype=np.int64) + offset)
            offset += batch.n_clusters
            owners.extend(segment_owners)
        return ReadBatch.concat(batches), np.concatenate(pieces), owners

    def _validate_pool(self, pool, n_units: int) -> None:
        if not isinstance(pool, ReadBatch):
            raise TypeError(
                "pooled requests take one ReadBatch with one pool per unit"
            )
        if pool.n_clusters != n_units:
            raise ValueError(
                f"pool holds {pool.n_clusters} unit pools; the payload "
                f"spans {n_units} units"
            )

    # -- deprecated wrappers -------------------------------------------------

    def decode(
        self,
        reads: StoreReads,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Deprecated: use :meth:`read` with a :class:`ReadRequest`.

        Kept as a thin wrapper over the same engine (byte-identical,
        pinned by ``tests/core/test_read_api.py``), preserving the
        legacy ``store.decode`` span/manifest names. Returns
        ``(bits, StoreReport)``.
        """
        warnings.warn(
            "DnaStore.decode is deprecated; use "
            "DnaStore.read(ReadRequest(reads, n_data_bits, ...))",
            DeprecationWarning, stacklevel=2,
        )
        result = self._serve(
            [ReadRequest(
                reads=reads, n_data_bits=n_data_bits, ranking=ranking,
                confidence_threshold=confidence_threshold,
            )],
            "store.decode",
            {"n_units": self.units_needed(n_data_bits),
             "n_data_bits": n_data_bits},
        )[0]
        return result.bits, result.report

    def decode_pool(
        self,
        pool: ReadBatch,
        n_data_bits: int,
        clusterer: Optional[PoolClusterer] = None,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Deprecated: use :meth:`read` with ``ReadRequest(pool=True)``.

        Kept as a thin wrapper over the same engine (byte-identical,
        pinned by ``tests/core/test_read_api.py``), preserving the
        legacy ``store.decode_pool`` span/manifest names. Returns
        ``(bits, StoreReport)``.
        """
        warnings.warn(
            "DnaStore.decode_pool is deprecated; use "
            "DnaStore.read(ReadRequest(pool_batch, n_data_bits, "
            "pool=True, ...))",
            DeprecationWarning, stacklevel=2,
        )
        n_units = self.units_needed(n_data_bits)
        self._validate_pool(pool, n_units)
        result = self._serve(
            [ReadRequest(
                reads=pool, n_data_bits=n_data_bits, pool=True,
                clusterer=clusterer, ranking=ranking,
                confidence_threshold=confidence_threshold,
            )],
            "store.decode_pool",
            {"n_units": n_units, "n_reads": pool.n_reads,
             "n_data_bits": n_data_bits},
        )[0]
        return result.bits, result.report

    def decode_units(
        self,
        reads: StoreReads,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Deprecated: use :meth:`read` with ``ReadRequest(
        reference=True)``. Returns ``(bits, StoreReport)``."""
        warnings.warn(
            "DnaStore.decode_units is deprecated; use "
            "DnaStore.read(ReadRequest(reads, n_data_bits, "
            "reference=True))",
            DeprecationWarning, stacklevel=2,
        )
        return self._decode_units_reference(
            reads, n_data_bits, ranking, confidence_threshold
        )

    def _decode_units_reference(
        self,
        reads: StoreReads,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ):
        """Frozen per-unit reference decode (one pipeline pass per unit).

        The original store decode loop, kept — like the per-cluster
        reconstructors in :mod:`repro.consensus.reference` — as the
        differential baseline the batched engine is pinned against.
        Accepts the same input forms and returns byte-identical results;
        it is simply N reconstructor calls instead of one.
        """
        n_units = self.units_needed(n_data_bits)
        received = [
            self.pipeline.receive(
                unit_reads, confidence_threshold=confidence_threshold
            )
            for unit_reads in self._per_unit_reads(reads, n_units)
        ]
        return self._correct_units(received, n_data_bits, ranking)

    def _emit_manifest(self, tracer, name: str) -> None:
        """Snapshot a recording tracer into a RunManifest.

        Manifests aggregate *the whole tracer so far* — channel spans
        recorded earlier under the same tracer (e.g. by
        ``SequencingSimulator``) are part of the run's story, and a
        tracer reused across several decodes accumulates all of them
        (use one tracer per run for one-run manifests). Tracers with
        ``auto_manifest`` off (long decode loops that build one
        manifest at the end, e.g. the benchmark harness) skip this.
        """
        if not tracer.is_recording or not getattr(
            tracer, "auto_manifest", True
        ):
            return
        tracer.attach_manifest(
            build_manifest(tracer, name, config=self.pipeline.config)
        )

    def _correct_units(self, received, n_data_bits, ranking):
        """Batched RS correction + stripe reassembly (shared tail).

        All units' dirty codewords decode through one
        :meth:`~repro.core.pipeline.DnaStoragePipeline.correct_many`
        call — a single batched errata wave (plus at most one
        soft-erasure retry wave) for the whole store.
        """
        n_units = self.units_needed(n_data_bits)
        corrected = self.pipeline.correct_many(
            received, self._stripe_sizes(n_data_bits, n_units)
        )
        return self._assemble_bits(corrected, n_data_bits, ranking)

    @staticmethod
    def _stripe_sizes(n_data_bits: int, n_units: int) -> List[int]:
        """Per-unit stripe lengths of the round-robin deal."""
        return [
            len(range(u, n_data_bits, n_units)) for u in range(n_units)
        ]

    @staticmethod
    def _assemble_bits(corrected, n_data_bits, ranking):
        """Reassemble corrected unit stripes into the payload bits.

        ``corrected`` is one ``(stripe, DecodeReport)`` per unit — what
        ``correct_many`` returns, and what the service plane's
        decoded-unit cache stores. The stripes interleave back
        round-robin; ``ranking`` (the encode-time global permutation) is
        applied here, so cached stripes stay ranking-independent.
        """
        n_units = len(corrected)
        prioritized = np.zeros(n_data_bits, dtype=np.uint8)
        reports = []
        for u, (stripe, report) in enumerate(corrected):
            prioritized[u::n_units] = stripe
            reports.append(report)
        if ranking is None:
            bits = prioritized
        else:
            ranking = np.asarray(ranking, dtype=np.int64)
            if ranking.shape != (n_data_bits,):
                raise ValueError("ranking length must equal n_data_bits")
            bits = np.zeros(n_data_bits, dtype=np.uint8)
            bits[ranking] = prioritized
        return bits, StoreReport(unit_reports=reports)

    def _spanning_batch(
        self, reads: StoreReads, n_units: int
    ) -> Tuple[ReadBatch, np.ndarray]:
        """Normalize any accepted input form into ``(batch, boundaries)``.

        ``boundaries`` is the per-unit cluster boundary table
        (``boundaries[u] .. boundaries[u+1]`` are unit ``u``'s cluster
        slots in the spanning batch).
        """
        if isinstance(reads, ReadBatch):
            n_columns = self._validate_spanning(reads, n_units)
            boundaries = np.arange(n_units + 1, dtype=np.int64) * n_columns
            return reads, boundaries
        per_unit = [
            unit if isinstance(unit, ReadBatch)
            else ReadBatch.from_clusters(unit)
            for unit in self._per_unit_reads(reads, n_units)
        ]
        counts = np.array([batch.n_clusters for batch in per_unit],
                          dtype=np.int64)
        boundaries = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        return ReadBatch.concat(per_unit), boundaries

    def _per_unit_reads(self, reads: StoreReads, n_units: int) -> List:
        """Split any accepted input form into per-unit pieces."""
        if isinstance(reads, ReadBatch):
            n_columns = self._validate_spanning(reads, n_units)
            return [
                reads.select_clusters(u * n_columns, (u + 1) * n_columns)
                for u in range(n_units)
            ]
        if len(reads) != n_units:
            raise ValueError(
                f"expected clusters for {n_units} units, got {len(reads)}"
            )
        return list(reads)

    def _validate_spanning(self, batch: ReadBatch, n_units: int) -> int:
        """Check a spanning batch's cluster count; returns ``n_columns``."""
        n_columns = self.pipeline.matrix_config.n_columns
        if batch.n_clusters != n_units * n_columns:
            raise ValueError(
                f"spanning batch holds {batch.n_clusters} clusters; "
                f"expected {n_units} units x {n_columns} columns"
            )
        return n_columns
