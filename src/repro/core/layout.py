"""Encoding-matrix geometry and the three layout policies.

The encoding unit (the paper's Figure 1) is a matrix of m-bit symbols:
every *column* is synthesized into one DNA molecule, every *codeword*
spans all ``n_columns`` columns and carries ``nsym`` parity symbols. The
first ``M = n_columns - nsym`` columns hold data, the rest redundancy.
Each molecule additionally carries an unprotected ordering index of
exactly one symbol (the paper's Section 2.2: the index must be
``log2(M+E)`` bits, which equals the symbol size).

A :class:`LayoutPolicy` fixes two independent aspects:

* **codeword geometry** — which matrix cells form codeword ``k``
  (baseline/DnaMapper: row ``k``; Gini: the wrapped diagonal);
* **placement order** — the sequence of data cells filled by the
  priority-ordered data stream (baseline/Gini: column-major, i.e. molecule
  by molecule; DnaMapper: the reliability zig-zag across rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

Cell = Tuple[int, int]  # (row, column) within the payload matrix


@dataclass(frozen=True)
class MatrixConfig:
    """Geometry of one encoding unit.

    Attributes:
        m: Reed-Solomon symbol size in bits (also the index width).
        n_columns: number of molecules, ``M + E`` (at most ``2^m - 1``).
        nsym: redundancy symbols per codeword, ``E``.
        payload_rows: symbols per molecule payload, ``S`` (matrix rows).
    """

    m: int = 8
    n_columns: int = 255
    nsym: int = 47
    payload_rows: int = 30

    def __post_init__(self) -> None:
        if self.m % 2 != 0:
            raise ValueError(f"symbol size must be even (whole bases), got {self.m}")
        if self.n_columns > (1 << self.m) - 1:
            raise ValueError(
                f"n_columns {self.n_columns} exceeds codeword length "
                f"{(1 << self.m) - 1} for m={self.m}"
            )
        if not (0 <= self.nsym < self.n_columns):
            raise ValueError(f"nsym must be in [0, {self.n_columns})")
        if self.n_columns > (1 << self.m):
            raise ValueError("index symbol cannot address all molecules")
        if self.payload_rows < 1:
            raise ValueError("payload_rows must be >= 1")

    @property
    def data_columns(self) -> int:
        """M — molecules holding data symbols."""
        return self.n_columns - self.nsym

    @property
    def index_bases(self) -> int:
        """Bases reserved for the ordering index (one symbol)."""
        return self.m // 2

    @property
    def payload_bases(self) -> int:
        """Bases per molecule holding matrix symbols."""
        return self.payload_rows * (self.m // 2)

    @property
    def strand_length(self) -> int:
        """Total bases per molecule (index + payload, without primers)."""
        return self.index_bases + self.payload_bases

    @property
    def data_symbols(self) -> int:
        """Data symbols per encoding unit."""
        return self.payload_rows * self.data_columns

    @property
    def data_bits(self) -> int:
        """Data bit capacity per encoding unit."""
        return self.data_symbols * self.m

    @property
    def redundancy_fraction(self) -> float:
        """Fraction of matrix symbols that are parity."""
        return self.nsym / self.n_columns


class LayoutPolicy:
    """Codeword geometry + data placement order over a matrix config."""

    def __init__(self, config: MatrixConfig) -> None:
        self.config = config

    @property
    def n_codewords(self) -> int:
        return self.config.payload_rows

    def codeword_cells(self, k: int) -> List[Cell]:
        """Cells of codeword ``k`` in symbol order (data first, then parity).

        Position ``j`` of the codeword lives in column ``j``; data symbols
        occupy ``j < M`` and parity ``j >= M``, for every policy.
        """
        raise NotImplementedError

    def placement_order(self) -> Iterator[Cell]:
        """Data cells (columns ``< M`` only) in data-stream order.

        For priority-aware layouts, earlier cells are the more reliable
        locations; for the baseline, it is plain column-major order.
        """
        raise NotImplementedError

    def codeword_of_cell(self, row: int, column: int) -> int:
        """Inverse geometry: which codeword owns the given cell."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _column_major(self) -> Iterator[Cell]:
        for column in range(self.config.data_columns):
            for row in range(self.config.payload_rows):
                yield (row, column)


class BaselineLayout(LayoutPolicy):
    """The state-of-the-art architecture of the paper's Figure 1.

    Row codewords, column-major data placement (chunk ``i`` of the input
    fills molecule ``i`` top to bottom).
    """

    def codeword_cells(self, k: int) -> List[Cell]:
        if not (0 <= k < self.n_codewords):
            raise ValueError(f"codeword index {k} out of range")
        return [(k, column) for column in range(self.config.n_columns)]

    def placement_order(self) -> Iterator[Cell]:
        return self._column_major()

    def codeword_of_cell(self, row: int, column: int) -> int:
        return row


class GiniLayout(LayoutPolicy):
    """Gini's diagonal codeword interleaving (the paper's Figure 8).

    Codeword ``k``'s symbol at position ``j`` lives in cell
    ``((k + j) mod S', j)`` — the diagonal wraps around the row dimension
    and, because there are far more columns than rows, cycles through all
    row positions many times. Every column still contributes exactly one
    symbol per codeword, so erasure protection matches the baseline while
    positional error is spread evenly over all codewords.

    ``excluded_rows`` (Figure 8b) keeps selected rows as plain row
    codewords — separate reliability classes — and interleaves only the
    remaining rows.
    """

    def __init__(
        self, config: MatrixConfig, excluded_rows: Sequence[int] = ()
    ) -> None:
        super().__init__(config)
        self.excluded_rows = tuple(sorted(set(int(r) for r in excluded_rows)))
        for row in self.excluded_rows:
            if not (0 <= row < config.payload_rows):
                raise ValueError(f"excluded row {row} out of range")
        self._interleaved_rows = [
            row for row in range(config.payload_rows)
            if row not in self.excluded_rows
        ]
        if not self._interleaved_rows:
            raise ValueError("Gini needs at least one non-excluded row")
        # Codeword ids: excluded rows keep their row index; the interleaved
        # group's diagonals take the remaining ids in row order.
        self._diagonal_ids = {
            row: t for t, row in enumerate(self._interleaved_rows)
        }

    def codeword_cells(self, k: int) -> List[Cell]:
        if not (0 <= k < self.n_codewords):
            raise ValueError(f"codeword index {k} out of range")
        if k in self.excluded_rows:
            return [(k, column) for column in range(self.config.n_columns)]
        # k is an interleaved row: its diagonal id decides the offset.
        t = self._diagonal_ids[k]
        rows = self._interleaved_rows
        s = len(rows)
        return [
            (rows[(t + column) % s], column)
            for column in range(self.config.n_columns)
        ]

    def placement_order(self) -> Iterator[Cell]:
        return self._column_major()

    def codeword_of_cell(self, row: int, column: int) -> int:
        if row in self.excluded_rows:
            return row
        s = len(self._interleaved_rows)
        position_in_group = self._interleaved_rows.index(row)
        t = (position_in_group - column) % s
        return self._interleaved_rows[t]


class DnaMapperLayout(LayoutPolicy):
    """DnaMapper's priority zig-zag placement (the paper's Figure 9).

    Codewords are plain rows (parity is computed after placement, per
    row), but data is placed by reliability: the highest-priority bits go
    to the last row (the molecule end, adjacent in reliability to the
    index at the start), the next to the first payload row, then the
    second-to-last, and so on zig-zagging towards the unreliable middle.
    Within one row, consecutive symbols stripe across the data columns.
    """

    def codeword_cells(self, k: int) -> List[Cell]:
        if not (0 <= k < self.n_codewords):
            raise ValueError(f"codeword index {k} out of range")
        return [(k, column) for column in range(self.config.n_columns)]

    def placement_order(self) -> Iterator[Cell]:
        for row in self.row_priority_order():
            for column in range(self.config.data_columns):
                yield (row, column)

    def codeword_of_cell(self, row: int, column: int) -> int:
        return row

    def row_priority_order(self) -> List[int]:
        """Payload rows from most to least reliable.

        The index occupies the very start of the molecule, so the nearest
        payload position to a molecule end is the *last* row; then the
        first payload row (one base group in from the index), then the
        second-to-last, alternating inward.
        """
        s = self.config.payload_rows
        order = []
        front, back = 0, s - 1
        take_back = True
        while front <= back:
            if take_back:
                order.append(back)
                back -= 1
            else:
                order.append(front)
                front += 1
            take_back = not take_back
        return order


class RandomInterleavedLayout(LayoutPolicy):
    """A strawman interleaver: codeword cells drawn by random permutation.

    Included as an ablation target, *not* as a recommended layout. A
    random interleaver spreads positional errors as evenly as Gini, but
    it breaks the erasure guarantee Gini preserves: with random cell
    assignment a codeword may own *several* symbols in one column, so a
    single lost molecule can consume multiple erasure-correction units of
    the same codeword. Gini's "continue from the next column when
    wrapping" rule (the paper's Figure 8a) exists precisely to avoid
    this. The per-column permutations here are seeded deterministically
    so encode and decode agree.
    """

    def __init__(self, config: MatrixConfig, seed: int = 0) -> None:
        super().__init__(config)
        generator = np.random.default_rng(seed)
        rows = config.payload_rows
        # Deal data cells and parity cells separately so every codeword
        # still owns exactly M data symbols and E parity symbols; only the
        # *columns* those symbols sit in are randomized.
        data_cells = [(r, c) for c in range(config.data_columns)
                      for r in range(rows)]
        parity_cells = [(r, c)
                        for c in range(config.data_columns, config.n_columns)
                        for r in range(rows)]
        self._cells_of = [[] for _ in range(rows)]
        self._owner = {}
        for pool in (data_cells, parity_cells):
            order = generator.permutation(len(pool))
            for slot, cell_index in enumerate(order):
                codeword = slot % rows
                cell = pool[int(cell_index)]
                self._cells_of[codeword].append(cell)
                self._owner[cell] = codeword

    def codeword_cells(self, k: int) -> List[Cell]:
        if not (0 <= k < self.n_codewords):
            raise ValueError(f"codeword index {k} out of range")
        return list(self._cells_of[k])

    def placement_order(self) -> Iterator[Cell]:
        return self._column_major()

    def codeword_of_cell(self, row: int, column: int) -> int:
        return self._owner[(row, column)]


def build_layout(
    name: str, config: MatrixConfig, gini_excluded_rows: Sequence[int] = ()
) -> LayoutPolicy:
    """Factory: 'baseline', 'gini', 'dnamapper', or 'random' (ablation)."""
    if name == "baseline":
        return BaselineLayout(config)
    if name == "gini":
        return GiniLayout(config, excluded_rows=gini_excluded_rows)
    if name == "dnamapper":
        return DnaMapperLayout(config)
    if name == "random":
        return RandomInterleavedLayout(config)
    raise ValueError(f"unknown layout {name!r}")
