"""The end-to-end DNA storage pipeline (the paper's Section 6 methodology).

Encoding: data bits -> priority permutation -> matrix placement -> per-
codeword Reed-Solomon parity -> per-column DNA strands (index + payload).

Decoding: read clusters -> consensus (two-way by default) -> index parse
and column assembly -> per-codeword RS error/erasure correction ->
inverse placement -> inverse permutation -> data bits.

The pipeline is deliberately split into ``receive`` (clusters to a raw
symbol matrix) and ``correct`` (matrix to bits) so analyses like the
paper's Figure 11 can observe the *pre-correction* error distribution per
codeword.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadCluster
from repro.cluster.batched import BatchedGreedyClusterer
from repro.codec.basemap import DirectCodec, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.two_way import TwoWayReconstructor
from repro.core.layout import LayoutPolicy, MatrixConfig, build_layout
from repro.core.ranking import identity_ranking
from repro.ecc.batched import reason_counts
from repro.ecc.reed_solomon import DecodeFailure, ReedSolomon
from repro.ecc.reference import ReferenceReedSolomon
from repro.observability.trace import get_tracer
from repro.utils.bitio import pack_uint


@dataclass(frozen=True)
class PipelineConfig:
    """Full configuration of one storage pipeline.

    Attributes:
        matrix: encoding-unit geometry.
        layout: 'baseline', 'gini', or 'dnamapper'.
        gini_excluded_rows: rows kept as separate reliability classes when
            ``layout == 'gini'`` (the paper's Figure 8b).
    """

    matrix: MatrixConfig = field(default_factory=MatrixConfig)
    layout: str = "baseline"
    gini_excluded_rows: Tuple[int, ...] = ()


@dataclass
class EncodedUnit:
    """One synthesized encoding unit.

    Attributes:
        strands: one DNA string per molecule (index + payload bases).
        matrix: the ground-truth symbol matrix (payload_rows x n_columns),
            kept for analysis (error accounting in simulations).
        n_data_bits: number of caller bits stored (before padding).
    """

    strands: List[str]
    matrix: np.ndarray
    n_data_bits: int


@dataclass
class ReceivedUnit:
    """Raw matrix reassembled from consensus strands, pre-correction.

    Attributes:
        matrix: received symbols (zeros where nothing was received).
        erased_columns: columns with no (validly indexed) strand.
        duplicate_columns: columns claimed by more than one cluster.
        invalid_strands: consensus strands dropped for a bad index.
        cell_erasures: (row, column) cells the consensus flagged as
            low-confidence (only populated by confidence-aware receive).
    """

    matrix: np.ndarray
    erased_columns: List[int]
    duplicate_columns: List[int]
    invalid_strands: int
    cell_erasures: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class DecodeReport:
    """Outcome statistics of a unit decode.

    Attributes:
        erased_columns: molecules lost before correction.
        failed_codewords: codeword ids the RS decoder gave up on.
        corrected_symbols: symbols fixed across all codewords.
        clean: True when every codeword decoded successfully.
    """

    erased_columns: List[int]
    failed_codewords: List[int]
    corrected_symbols: int

    @property
    def clean(self) -> bool:
        return not self.failed_codewords


class DnaStoragePipeline:
    """Encode/decode encoding units under a configurable layout policy."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        reconstructor: Optional[Reconstructor] = None,
    ) -> None:
        self.config = config
        self.matrix_config = config.matrix
        self.layout: LayoutPolicy = build_layout(
            config.layout, config.matrix, config.gini_excluded_rows
        )
        self.reconstructor = reconstructor or TwoWayReconstructor()
        self._codec = DirectCodec()
        self._rs = (
            ReedSolomon(
                config.matrix.m,
                nsym=config.matrix.nsym,
                n=config.matrix.n_columns,
            )
            if config.matrix.nsym > 0
            else None
        )
        # The frozen scalar decoder behind correct_matrix_loop_reference;
        # built lazily — ordinary decodes never touch it.
        self._rs_reference: Optional[ReferenceReedSolomon] = None
        self._placement = list(self.layout.placement_order())
        if len(self._placement) != config.matrix.data_symbols:
            raise AssertionError("placement order does not cover the data cells")
        # Index-array form of the placement order and the codeword
        # geometry: one fancy-indexing gather/scatter replaces every
        # per-cell Python loop on both the encode and the correct path.
        placement = np.array(self._placement, dtype=np.int64).reshape(-1, 2)
        self._placement_rows = placement[:, 0]
        self._placement_cols = placement[:, 1]
        cells = np.array(
            [self.layout.codeword_cells(k)
             for k in range(self.layout.n_codewords)],
            dtype=np.int64,
        )  # (n_codewords, n_columns, 2)
        self._codeword_rows = cells[:, :, 0]
        self._codeword_cols = cells[:, :, 1]

    # -- encoding -------------------------------------------------------------

    @property
    def capacity_bits(self) -> int:
        """Data bits one unit can hold."""
        return self.matrix_config.data_bits

    def encode(
        self, bits: np.ndarray, ranking: Optional[np.ndarray] = None
    ) -> EncodedUnit:
        """Encode a bit array (at most ``capacity_bits``) into strands.

        The whole unit is assembled array-native: the data symbols land in
        the matrix through one placement scatter, every codeword's parity
        comes from one :meth:`~repro.ecc.reed_solomon.ReedSolomon.
        parity_many` matrix product, and all columns render to strands in
        a single bits->bases pass. Output is byte-identical to the
        per-cell loop encoder (kept as :meth:`encode_loop_reference` and
        pinned by the differential suite).

        Args:
            bits: 0/1 array of payload bits.
            ranking: priority permutation over ``len(bits)`` (see
                :mod:`repro.core.ranking`); identity when omitted. Padding
                bits (capacity beyond ``len(bits)``) always rank last.
        """
        prioritized = self._prioritize(bits, ranking)
        matrices = self._assemble_matrices(prioritized[None, :])
        strands = self._render_strands(matrices)
        return EncodedUnit(
            strands=strands[0], matrix=matrices[0],
            n_data_bits=np.asarray(bits).size,
        )

    def encode_many(self, stripes: Sequence[np.ndarray]) -> List[EncodedUnit]:
        """Encode several units' payloads in one batched pass.

        ``stripes[u]`` is unit ``u``'s bit array (each at most
        ``capacity_bits``; identity ranking — multi-unit priority is
        handled globally by :class:`~repro.core.store.DnaStore` before
        striping). All units' placement scatters, parity codewords and
        strand renderings run as single array operations over a
        ``(n_units, ...)`` stack; per-unit output is byte-identical to
        calling :meth:`encode` once per stripe.
        """
        sizes = []
        prioritized = np.zeros((len(stripes), self.capacity_bits),
                               dtype=np.uint8)
        for u, bits in enumerate(stripes):
            bits = np.asarray(bits, dtype=np.uint8)
            if bits.ndim != 1:
                raise ValueError("bits must be a 1-D array")
            if bits.size > self.capacity_bits:
                raise ValueError(
                    f"{bits.size} bits exceed unit capacity "
                    f"{self.capacity_bits}"
                )
            prioritized[u, : bits.size] = bits
            sizes.append(bits.size)
        matrices = self._assemble_matrices(prioritized)
        strands = self._render_strands(matrices)
        return [
            EncodedUnit(strands=strands[u], matrix=matrices[u],
                        n_data_bits=sizes[u])
            for u in range(len(stripes))
        ]

    def encode_loop_reference(
        self, bits: np.ndarray, ranking: Optional[np.ndarray] = None
    ) -> EncodedUnit:
        """The frozen per-cell loop encoder (differential reference).

        Mirrors the :mod:`repro.consensus.reference` pattern: this is the
        original implementation — placement loop, per-codeword
        :meth:`_fill_parity`, per-column strand rendering — kept so the
        batched :meth:`encode` stays pinned byte-identical to it.
        """
        prioritized = self._prioritize(bits, ranking)
        symbols = self._bits_to_symbols(prioritized)
        config = self.matrix_config
        matrix = np.zeros((config.payload_rows, config.n_columns), dtype=np.int64)
        for value, (row, column) in zip(symbols, self._placement):
            matrix[row, column] = value
        self._fill_parity(matrix)
        strands = [
            self._column_to_strand(matrix, column)
            for column in range(config.n_columns)
        ]
        return EncodedUnit(strands=strands, matrix=matrix,
                           n_data_bits=np.asarray(bits).size)

    def _prioritize(
        self, bits: np.ndarray, ranking: Optional[np.ndarray]
    ) -> np.ndarray:
        """Validate a payload and apply the priority permutation."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be a 1-D array")
        if bits.size > self.capacity_bits:
            raise ValueError(
                f"{bits.size} bits exceed unit capacity {self.capacity_bits}"
            )
        if ranking is None:
            ranking = identity_ranking(bits.size)
        ranking = np.asarray(ranking, dtype=np.int64)
        if ranking.shape != (bits.size,):
            raise ValueError("ranking must be a permutation of the bit indices")

        padded = np.zeros(self.capacity_bits, dtype=np.uint8)
        padded[: bits.size] = bits
        prioritized = np.empty(self.capacity_bits, dtype=np.uint8)
        prioritized[: bits.size] = padded[ranking]
        prioritized[bits.size:] = 0  # padding occupies the weakest positions
        return prioritized

    def _assemble_matrices(self, prioritized: np.ndarray) -> np.ndarray:
        """Prioritized bit stacks -> fully parity-filled symbol matrices.

        ``prioritized`` is ``(n_units, capacity_bits)``; the result is
        ``(n_units, payload_rows, n_columns)``. Data symbols land through
        one placement-index scatter; every unit's every codeword gets its
        parity from a single :meth:`ReedSolomon.parity_many` call.
        """
        config = self.matrix_config
        n_units = prioritized.shape[0]
        m = config.m
        grouped = prioritized.reshape(n_units, -1, m).astype(np.int64)
        weights = 1 << np.arange(m - 1, -1, -1, dtype=np.int64)
        symbols = grouped @ weights  # (n_units, data_symbols)
        matrices = np.zeros(
            (n_units, config.payload_rows, config.n_columns), dtype=np.int64
        )
        matrices[:, self._placement_rows, self._placement_cols] = symbols
        if self._rs is not None:
            data_columns = config.data_columns
            messages = matrices[
                :, self._codeword_rows[:, :data_columns],
                self._codeword_cols[:, :data_columns],
            ]  # (n_units, n_codewords, data_columns)
            parity = self._rs.parity_many(
                messages.reshape(-1, data_columns)
            ).reshape(n_units, self.layout.n_codewords, config.nsym)
            matrices[
                :, self._codeword_rows[:, data_columns:],
                self._codeword_cols[:, data_columns:],
            ] = parity
        return matrices

    def _render_strands(self, matrices: np.ndarray) -> List[List[str]]:
        """All columns of all units -> strands, one bits->bases pass.

        Each strand is its column index symbol followed by the column's
        payload symbols, expanded MSB-first to bits and packed two bits
        per base (00=A, 01=C, 10=G, 11=T) exactly like
        :meth:`_column_to_strand`; the only per-strand Python work left
        is slicing the final ACGT string out of one big decoded buffer.
        """
        config = self.matrix_config
        n_units = matrices.shape[0]
        n_columns = config.n_columns
        index_row = np.broadcast_to(
            np.arange(n_columns, dtype=np.int64), (n_units, 1, n_columns)
        )
        values = np.concatenate([index_row, matrices], axis=1)
        values = values.transpose(0, 2, 1)  # (n_units, n_columns, symbols)
        shifts = np.arange(config.m - 1, -1, -1, dtype=np.int64)
        bits = ((values[..., None] >> shifts) & 1).reshape(
            n_units, n_columns, -1
        )
        bases = (2 * bits[:, :, 0::2] + bits[:, :, 1::2]).astype(np.uint8)
        big = indices_to_bases(bases.reshape(-1))
        length = config.strand_length
        return [
            [big[(u * n_columns + c) * length:
                 (u * n_columns + c + 1) * length]
             for c in range(n_columns)]
            for u in range(n_units)
        ]

    def _fill_parity(self, matrix: np.ndarray) -> None:
        if self._rs is None:
            return
        data_columns = self.matrix_config.data_columns
        for k in range(self.layout.n_codewords):
            cells = self.layout.codeword_cells(k)
            message = np.array(
                [matrix[row, col] for row, col in cells[:data_columns]],
                dtype=np.int64,
            )
            parity = self._rs.parity(message)
            for value, (row, col) in zip(parity, cells[data_columns:]):
                matrix[row, col] = value

    def _column_to_strand(self, matrix: np.ndarray, column: int) -> str:
        config = self.matrix_config
        bits = [pack_uint(column, config.m)]
        bits += [
            pack_uint(int(matrix[row, column]), config.m)
            for row in range(config.payload_rows)
        ]
        return self._codec.encode(np.concatenate(bits))

    # -- decoding -------------------------------------------------------------

    def receive(
        self,
        clusters: Union[Sequence[ReadCluster], ReadBatch],
        confidence_threshold: Optional[float] = None,
    ) -> ReceivedUnit:
        """Consensus + column assembly; no error correction yet.

        All surviving clusters are decoded through the reconstructor's
        *batch* entry point in one call, so engines that advance every
        cluster simultaneously reconstruct the whole unit in a handful of
        vectorized passes — the pointer scans (the default two-way) and
        the refinement layers (iterative realign-and-vote, posterior
        lattice) alike. A columnar
        :class:`~repro.channel.readbatch.ReadBatch` (what
        ``SequencingSimulator.sequence_batch`` emits) is consumed whole —
        flat base buffer straight into the consensus scan; a plain cluster
        list goes through per-cluster index arrays. Neither path ever
        materializes a base string.

        Args:
            clusters: read clusters (one per molecule, any order), or one
                :class:`~repro.channel.readbatch.ReadBatch` covering the
                unit.
            confidence_threshold: when set *and* the reconstructor exposes
                ``reconstruct_with_confidence`` (see
                :class:`repro.consensus.posterior.PosteriorReconstructor`),
                payload symbols whose bases fall below this posterior
                confidence are flagged as *cell erasures*. RS treats
                erasures at half the cost of errors, so flagging the
                consensus's own uncertain symbols buys correction margin
                — an extension of the paper's design enabled by soft
                consensus output.
        """
        config = self.matrix_config
        matrix = np.zeros((config.payload_rows, config.n_columns), dtype=np.int64)
        filled: Set[int] = set()
        duplicates: List[int] = []
        cell_erasures: List[Tuple[int, int]] = []
        invalid = 0
        use_confidence = (
            confidence_threshold is not None
            and hasattr(self.reconstructor, "reconstruct_with_confidence")
        )
        with get_tracer().span("pipeline.receive"):
            estimates, confidences = self._reconstruct_unit(
                clusters, use_confidence
            )
        for estimate, confidence in zip(estimates, confidences):
            column, symbols = self._parse_indices(estimate)
            if column is None:
                invalid += 1
                continue
            if column in filled:
                duplicates.append(column)
                continue  # first strand wins; later claims are dropped
            matrix[:, column] = symbols
            filled.add(column)
            if confidence is not None:
                cell_erasures.extend(
                    (row, column)
                    for row in self._low_confidence_rows(
                        confidence, confidence_threshold
                    )
                )
        erased = [c for c in range(config.n_columns) if c not in filled]
        return ReceivedUnit(
            matrix=matrix,
            erased_columns=erased,
            duplicate_columns=duplicates,
            invalid_strands=invalid,
            cell_erasures=cell_erasures,
        )

    def receive_many(
        self,
        batch: ReadBatch,
        unit_boundaries: Optional[np.ndarray] = None,
        confidence_threshold: Optional[float] = None,
    ) -> List[ReceivedUnit]:
        """Consensus + column assembly for *several units* in one pass.

        The store-plane counterpart of :meth:`receive`: ``batch`` spans
        every cluster of every unit (units back to back, see
        :meth:`~repro.channel.readbatch.ReadBatch.concat`), the
        reconstructor's batch entry point runs **once** over all
        surviving clusters, and the per-estimate index parsing that
        :meth:`receive` does in a Python loop happens as array operations
        over the whole estimate stack — base-4 symbol grouping, index
        validation, first-claim-wins column assembly and confidence-cell
        extraction, all segmented by unit. Per-unit output is
        byte-identical to running :meth:`receive` on each unit's clusters
        (the frozen per-unit path, pinned by the store differential
        suite).

        Args:
            batch: one spanning :class:`ReadBatch`; cluster slots
                ``[unit_boundaries[u], unit_boundaries[u + 1])`` belong to
                unit ``u``. Lost clusters (zero reads) are dropped before
                consensus, exactly like :meth:`receive`.
            unit_boundaries: ``(n_units + 1,)`` non-decreasing cluster
                boundary table starting at 0 and ending at
                ``batch.n_clusters``. When omitted, the batch must hold a
                whole number of ``n_columns``-cluster units.
            confidence_threshold: as in :meth:`receive`, applied to every
                unit.
        """
        tracer = get_tracer()
        with tracer.span(
            "pipeline.receive_many", n_clusters=batch.n_clusters
        ) as span:
            received = self._receive_many_impl(
                batch, unit_boundaries, confidence_threshold
            )
            if tracer.is_recording:
                span.set(n_units=len(received))
                metrics = tracer.metrics
                metrics.counter("receive.clusters_in").add(
                    int(batch.n_clusters)
                )
                metrics.counter("receive.units_out").add(len(received))
                metrics.counter("receive.invalid_strands").add(
                    sum(unit.invalid_strands for unit in received)
                )
                metrics.counter("receive.duplicate_strands").add(
                    sum(len(unit.duplicate_columns) for unit in received)
                )
                metrics.counter("receive.erased_columns").add(
                    sum(len(unit.erased_columns) for unit in received)
                )
                metrics.counter("receive.cell_erasures").add(
                    sum(len(unit.cell_erasures) for unit in received)
                )
        return received

    def _receive_many_impl(
        self,
        batch: ReadBatch,
        unit_boundaries: Optional[np.ndarray],
        confidence_threshold: Optional[float],
    ) -> List[ReceivedUnit]:
        config = self.matrix_config
        if unit_boundaries is None:
            n_units, remainder = divmod(batch.n_clusters, config.n_columns)
            if remainder or n_units == 0:
                raise ValueError(
                    f"batch holds {batch.n_clusters} clusters, not a "
                    f"whole number of {config.n_columns}-cluster units"
                )
            unit_boundaries = np.arange(n_units + 1, dtype=np.int64) \
                * config.n_columns
        boundaries = np.asarray(unit_boundaries, dtype=np.int64)
        if (boundaries.ndim != 1 or boundaries.size < 2
                or boundaries[0] != 0
                or boundaries[-1] != batch.n_clusters
                or np.any(np.diff(boundaries) < 0)):
            raise ValueError(
                "unit_boundaries must be a non-decreasing table from 0 to "
                f"batch.n_clusters ({batch.n_clusters})"
            )
        n_units = boundaries.size - 1
        # Unit of every *live* cluster, derived from the slot positions
        # before the lost clusters are compacted away (drop_lost keeps
        # cluster order, so estimate i belongs to the i-th live slot).
        live_slots = np.flatnonzero(batch.coverage_counts() > 0)
        unit_of_estimate = np.searchsorted(
            boundaries, live_slots, side="right"
        ) - 1
        live = batch.drop_lost()
        length = config.strand_length
        use_confidence = (
            confidence_threshold is not None
            and hasattr(self.reconstructor, "reconstruct_with_confidence")
        )
        confidences: Optional[np.ndarray] = None
        tracer = get_tracer()
        if tracer.is_recording:
            # Counted here so every reconstructor (two-way, iterative,
            # posterior, reference) reports uniformly; the batched
            # refiners add their own iteration/sweep counters on top.
            tracer.metrics.counter("consensus.clusters").add(live.n_clusters)
            tracer.metrics.counter("consensus.reads").add(live.n_reads)
        with tracer.span(
            "consensus.reconstruct",
            n_clusters=live.n_clusters,
            n_reads=live.n_reads,
        ):
            if use_confidence:
                results = \
                    self.reconstructor.reconstruct_batch_with_confidence(
                        live, length
                    )
                if results:
                    estimates = np.stack(
                        [np.asarray(e, dtype=np.int64) for e, _ in results]
                    )
                    confidences = np.stack(
                        [np.asarray(c, dtype=np.float64) for _, c in results]
                    )
                else:
                    estimates = np.zeros((0, length), dtype=np.int64)
                    confidences = np.zeros((0, length), dtype=np.float64)
            else:
                estimates = np.asarray(
                    self.reconstructor.reconstruct_batch(live, length),
                    dtype=np.int64,
                )

        # Vectorized counterpart of _parse_indices over the whole stack:
        # group bases into base-4 big-endian symbols, split off the index.
        bases_per_symbol = config.m // 2
        weights = 4 ** np.arange(bases_per_symbol - 1, -1, -1, dtype=np.int64)
        values = estimates.reshape(
            estimates.shape[0], length // bases_per_symbol, bases_per_symbol
        ) @ weights
        columns = values[:, 0]
        symbols = values[:, 1:]
        valid = columns < config.n_columns
        invalid_counts = np.bincount(
            unit_of_estimate[~valid], minlength=n_units
        )
        # First-claim-wins, segmented by unit: the first *valid* estimate
        # claiming a (unit, column) key wins (estimates are in cluster
        # order, matching the reference loop); later claims are
        # duplicates.
        valid_rows = np.flatnonzero(valid)
        keys = (unit_of_estimate[valid_rows] * config.n_columns
                + columns[valid_rows])
        _, first_of_key = np.unique(keys, return_index=True)
        winner_mask = np.zeros(valid_rows.size, dtype=bool)
        winner_mask[first_of_key] = True
        winners = valid_rows[winner_mask]
        duplicate_rows = valid_rows[~winner_mask]

        matrices = np.zeros(
            (n_units, config.payload_rows, config.n_columns), dtype=np.int64
        )
        matrices[unit_of_estimate[winners], :, columns[winners]] = \
            symbols[winners]
        filled = np.zeros((n_units, config.n_columns), dtype=bool)
        filled[unit_of_estimate[winners], columns[winners]] = True

        # Confidence cells of every winning estimate at once: payload rows
        # whose minimum per-base posterior mass falls under the threshold.
        if confidences is not None and winners.size:
            payload = confidences[winners][:, config.index_bases:]
            per_row = payload[
                :, : config.payload_rows * bases_per_symbol
            ].reshape(winners.size, config.payload_rows, bases_per_symbol)
            low_winner, low_row = np.nonzero(
                per_row.min(axis=2) < confidence_threshold
            )
        else:
            low_winner = low_row = np.zeros(0, dtype=np.int64)
        cell_units = unit_of_estimate[winners[low_winner]]
        cell_columns = columns[winners[low_winner]]
        duplicate_units = unit_of_estimate[duplicate_rows]

        received = []
        for u in range(n_units):
            dup_lo, dup_hi = np.searchsorted(duplicate_units, [u, u + 1])
            cell_lo, cell_hi = np.searchsorted(cell_units, [u, u + 1])
            received.append(ReceivedUnit(
                matrix=matrices[u],
                erased_columns=[int(c) for c in np.flatnonzero(~filled[u])],
                duplicate_columns=[
                    int(c) for c in columns[duplicate_rows[dup_lo:dup_hi]]
                ],
                invalid_strands=int(invalid_counts[u]),
                cell_erasures=[
                    (int(r), int(c))
                    for r, c in zip(low_row[cell_lo:cell_hi],
                                    cell_columns[cell_lo:cell_hi])
                ],
            ))
        return received

    def decode_many(
        self,
        batch: ReadBatch,
        n_data_bits,
        unit_boundaries: Optional[np.ndarray] = None,
        ranking: Optional[np.ndarray] = None,
        extra_erasure_columns: Sequence[int] = (),
        confidence_threshold: Optional[float] = None,
    ) -> List[Tuple[np.ndarray, DecodeReport]]:
        """Decode several units from one spanning batch.

        One :meth:`receive_many` pass (a single consensus batch call over
        every unit's clusters) feeding one :meth:`correct_many` pass (a
        single batched errata decode over every unit's dirty codewords).
        ``n_data_bits`` is a scalar applied to every unit or one value per
        unit; ``ranking``/``extra_erasure_columns`` apply per unit,
        ``confidence_threshold`` to the whole receive pass (as in
        :meth:`receive`). Returns one ``(bits, DecodeReport)`` pair per
        unit.
        """
        with get_tracer().span("pipeline.decode_many"):
            received = self.receive_many(
                batch, unit_boundaries,
                confidence_threshold=confidence_threshold,
            )
            if np.ndim(n_data_bits) == 0:
                sizes = [int(n_data_bits)] * len(received)
            else:
                sizes = [int(size) for size in n_data_bits]
            return self.correct_many(
                received, sizes, ranking, extra_erasure_columns
            )

    def _reconstruct_unit(
        self,
        clusters: Union[Sequence[ReadCluster], ReadBatch],
        use_confidence: bool,
    ) -> Tuple[Sequence[np.ndarray], Sequence[Optional[np.ndarray]]]:
        """Run the unit's surviving clusters through the reconstructor.

        Lost clusters (strand dropouts) are excluded before consensus —
        their degenerate estimates would otherwise claim column 0.
        """
        length = self.matrix_config.strand_length
        if isinstance(clusters, ReadBatch):
            live_batch = clusters.drop_lost()
            if use_confidence:
                results = self.reconstructor.reconstruct_batch_with_confidence(
                    live_batch, length
                )
                return ([e for e, _ in results], [c for _, c in results])
            estimates = self.reconstructor.reconstruct_batch(
                live_batch, length
            )
            return estimates, [None] * len(estimates)
        live = [cluster for cluster in clusters if not cluster.is_lost]
        index_clusters = [cluster.read_indices() for cluster in live]
        if use_confidence:
            results = self._confidence_ladder(index_clusters, length)
            return ([e for e, _ in results], [c for _, c in results])
        estimates = self.reconstructor.reconstruct_many_indices(
            index_clusters, length
        )
        return estimates, [None] * len(live)

    def _confidence_ladder(
        self, index_clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Confidence reconstruction over index lists: the batched variant
        when the reconstructor has one (the posterior's runs the whole
        unit through one lattice sweep), per-cluster calls otherwise."""
        if hasattr(self.reconstructor, "reconstruct_many_with_confidence"):
            return self.reconstructor.reconstruct_many_with_confidence(
                index_clusters, length
            )
        return [
            self.reconstructor.reconstruct_with_confidence(reads, length)
            for reads in index_clusters
        ]

    def _low_confidence_rows(
        self, confidence: np.ndarray, threshold: float
    ) -> List[int]:
        """Payload rows containing any base below the confidence threshold."""
        config = self.matrix_config
        bases_per_symbol = config.m // 2
        payload = confidence[config.index_bases:]
        per_row = payload[: config.payload_rows * bases_per_symbol].reshape(
            config.payload_rows, bases_per_symbol
        )
        return [int(r) for r in np.nonzero(per_row.min(axis=1) < threshold)[0]]

    def _parse_indices(
        self, indices: np.ndarray
    ) -> Tuple[Optional[int], np.ndarray]:
        """Split a consensus strand (as base indices) into column + symbols.

        Vectorized counterpart of decoding the strand to bits and unpacking
        ``m``-bit groups: each base carries two bits, so ``m // 2``
        consecutive bases form one matrix symbol.
        """
        config = self.matrix_config
        indices = np.asarray(indices, dtype=np.int64)
        bases_per_symbol = config.m // 2
        if indices.size != config.strand_length:
            # Truncated or overlong estimates cannot split into index +
            # payload symbols; treat them like a bad index instead of
            # letting the reshape below blow up.
            return None, np.zeros(0, dtype=np.int64)
        # Base-4 big-endian digits -> integers, one symbol per group.
        weights = 4 ** np.arange(bases_per_symbol - 1, -1, -1, dtype=np.int64)
        grouped = indices.reshape(-1, bases_per_symbol)
        values = grouped @ weights
        index = int(values[0])
        if index >= config.n_columns:
            return None, np.zeros(0, dtype=np.int64)
        return index, values[1:]

    def correct_matrix(
        self,
        received: ReceivedUnit,
        extra_erasure_columns: Sequence[int] = (),
    ) -> Tuple[np.ndarray, DecodeReport]:
        """RS-correct a received matrix; no bit extraction yet.

        A one-unit wrapper around :meth:`correct_matrix_many` (pinned
        byte-identical to the frozen per-codeword loop,
        :meth:`correct_matrix_loop_reference`).

        Args:
            received: output of :meth:`receive`.
            extra_erasure_columns: columns to treat as erased on top of the
                genuinely missing ones — the knob the paper uses to model
                *effective redundancy* reduction (its Figure 13).

        Returns:
            The corrected matrix (failed codewords keep their received
            symbols) and the decode report.
        """
        return self.correct_matrix_many([received], extra_erasure_columns)[0]

    def correct_matrix_many(
        self,
        received_units: Sequence[ReceivedUnit],
        extra_erasure_columns: Sequence[int] = (),
    ) -> List[Tuple[np.ndarray, DecodeReport]]:
        """RS-correct every unit's matrix through one batched errata pass.

        The store-plane correction boundary: every codeword of every unit
        is gathered into one ``(U * K, n)`` word stack and decoded in two
        batched waves of :meth:`~repro.ecc.reed_solomon.ReedSolomon.
        decode_many`. Wave one decodes each codeword with its hard
        (column) erasures plus as many advisory soft (confidence) cell
        erasures as the ``nsym`` budget admits — low-confidence flags are
        *hints*, so wave two retries exactly the rows wave one failed,
        with the hard erasures alone: a wrong confidence flag must never
        lose a codeword that plain decoding would have saved. Codewords
        with no soft flags get their full verdict in wave one (a retry
        would repeat the identical call). Per-unit output is
        byte-identical to the frozen per-codeword loop
        (:meth:`correct_matrix_loop_reference`).

        Args:
            received_units: outputs of :meth:`receive` /
                :meth:`receive_many`.
            extra_erasure_columns: applied to every unit (see
                :meth:`correct_matrix`).

        Returns:
            One ``(corrected_matrix, DecodeReport)`` pair per unit.
        """
        with get_tracer().span(
            "pipeline.correct", n_units=len(received_units)
        ):
            return self._correct_matrix_many_impl(
                received_units, extra_erasure_columns
            )

    def _correct_matrix_many_impl(
        self,
        received_units: Sequence[ReceivedUnit],
        extra_erasure_columns: Sequence[int] = (),
    ) -> List[Tuple[np.ndarray, DecodeReport]]:
        config = self.matrix_config
        n_units = len(received_units)
        extra = [int(c) for c in extra_erasure_columns]
        erased_lists: List[List[int]] = []
        erased_col_mask = np.zeros((n_units, config.n_columns), dtype=bool)
        for u, unit in enumerate(received_units):
            erased = sorted(set(unit.erased_columns) | set(extra))
            for column in erased:
                if not (0 <= column < config.n_columns):
                    raise ValueError(f"erasure column {column} out of range")
            erased_lists.append(erased)
            erased_col_mask[u, erased] = True
        matrices = (
            np.stack([unit.matrix for unit in received_units])
            if n_units
            else np.zeros(
                (0, config.payload_rows, config.n_columns), dtype=np.int64
            )
        ).copy()
        if self._rs is None or n_units == 0:
            return [
                (matrices[u], DecodeReport(
                    erased_columns=erased_lists[u],
                    failed_codewords=[],
                    corrected_symbols=0,
                ))
                for u in range(n_units)
            ]

        rs = self._rs
        n_codewords = self.layout.n_codewords
        data_columns = config.data_columns
        # Per-unit boolean cell-erasure matrices (one scatter per unit
        # instead of per-codeword tuple-set membership); soft flags on
        # hard-erased columns are redundant and drop out here.
        soft_cells = np.zeros(
            (n_units, config.payload_rows, config.n_columns), dtype=bool
        )
        for u, unit in enumerate(received_units):
            for row, column in unit.cell_erasures:
                soft_cells[u, int(row), int(column)] = True
        soft_cells &= ~erased_col_mask[:, None, :]

        # Gather every unit's every codeword: (U, K, n) -> (U*K, n).
        words = matrices[
            :, self._codeword_rows, self._codeword_cols
        ].reshape(-1, rs.n)
        hard_mask = erased_col_mask[:, self._codeword_cols].reshape(-1, rs.n)
        soft_mask = soft_cells[
            np.arange(n_units)[:, None, None],
            self._codeword_rows, self._codeword_cols,
        ].reshape(-1, rs.n)

        # Wave 1: hard erasures plus the soft flags that fit the budget,
        # lowest position first (the loop reference truncates
        # ``soft_positions[:nsym - n_hard]`` in ascending order).
        budget = np.maximum(rs.nsym - hard_mask.sum(axis=1), 0)
        kept_soft = soft_mask & (
            np.cumsum(soft_mask, axis=1) <= budget[:, None]
        )
        result = rs.decode_many(words, hard_mask | kept_soft)
        ok = result.ok.copy()
        messages = result.messages
        n_fixed = result.n_corrected.copy()

        # Wave 2: hard-only retry for the rows whose soft hints lost the
        # decode. Rows whose wave-1 mask already was hard-only would just
        # repeat the identical call, so they keep their verdict.
        retry = np.flatnonzero(~ok & kept_soft.any(axis=1))
        second = None
        if retry.size:
            second = rs.decode_many(words[retry], hard_mask[retry])
            ok[retry] = second.ok
            messages[retry] = second.messages
            n_fixed[retry] = second.n_corrected

        tracer = get_tracer()
        if tracer.is_recording:
            metrics = tracer.metrics
            metrics.counter("rs.codewords").add(words.shape[0])
            metrics.counter("rs.hard_erasures").add(int(hard_mask.sum()))
            metrics.counter("rs.soft_flags").add(int(soft_mask.sum()))
            metrics.counter("rs.soft_kept").add(int(kept_soft.sum()))
            metrics.counter("rs.erasure_budget").add(int(budget.sum()))
            metrics.counter("rs.corrected_symbols").add(
                int(np.where(ok, n_fixed, 0).sum())
            )
            metrics.counter("rs.retry_rows").add(int(retry.size))
            if second is not None:
                metrics.counter("rs.retry_recovered").add(
                    int(second.ok.sum())
                )
            # Final per-row verdicts: wave-1 reasons with the retried
            # rows overwritten by their hard-only wave-2 verdict.
            final_reasons = result.reasons.copy()
            if second is not None:
                final_reasons[retry] = second.reasons
            tracer.metrics.histogram("rs.failure_reasons").observe_counts(
                reason_counts(final_reasons)
            )

        # Scatter corrected data symbols back; failed codewords keep
        # their received symbols.
        ok_grid = ok.reshape(n_units, n_codewords)
        message_grid = messages.reshape(n_units, n_codewords, rs.k)
        unit_ids, codeword_ids = np.nonzero(ok_grid)
        matrices[
            unit_ids[:, None],
            self._codeword_rows[codeword_ids, :data_columns],
            self._codeword_cols[codeword_ids, :data_columns],
        ] = message_grid[unit_ids, codeword_ids]
        fixed_grid = np.where(ok_grid, n_fixed.reshape(ok_grid.shape), 0)

        return [
            (matrices[u], DecodeReport(
                erased_columns=erased_lists[u],
                failed_codewords=[int(k) for k in
                                  np.flatnonzero(~ok_grid[u])],
                corrected_symbols=int(fixed_grid[u].sum()),
            ))
            for u in range(n_units)
        ]

    def correct_matrix_loop_reference(
        self,
        received: ReceivedUnit,
        extra_erasure_columns: Sequence[int] = (),
    ) -> Tuple[np.ndarray, DecodeReport]:
        """The frozen per-codeword correction loop (differential reference).

        Mirrors :meth:`encode_loop_reference`: this is the original
        implementation — one scalar
        :meth:`~repro.ecc.reference.ReferenceReedSolomon.decode` try/
        except per dirty codeword, soft-erasure fallback per codeword —
        kept so the batched :meth:`correct_matrix_many` stays pinned
        byte-identical to it (``tests/ecc/test_batched_vs_reference.py``,
        ``tests/integration/test_perf_budget.py``).
        """
        config = self.matrix_config
        matrix = received.matrix.copy()
        erased = sorted(set(received.erased_columns) | set(
            int(c) for c in extra_erasure_columns
        ))
        for column in erased:
            if not (0 <= column < config.n_columns):
                raise ValueError(f"erasure column {column} out of range")
        failed: List[int] = []
        corrected = 0
        if self._rs is not None:
            rs = self._reference_codec()
            data_columns = config.data_columns
            words = matrix[self._codeword_rows, self._codeword_cols]
            erased_mask = np.zeros(config.n_columns, dtype=bool)
            erased_mask[erased] = True
            # Boolean cell-erasure matrix, built once per unit: soft
            # flags gather per codeword by fancy indexing below instead
            # of per-cell tuple-set membership tests.
            soft_cells = np.zeros(
                (config.payload_rows, config.n_columns), dtype=bool
            )
            for row, column in received.cell_erasures:
                soft_cells[int(row), int(column)] = True
            soft_cells &= ~erased_mask[None, :]
            zero_mask = erased_mask[self._codeword_cols]
            zeroed = np.where(zero_mask, 0, words)
            clean = ~np.any(rs.syndromes_many(zeroed) != 0, axis=1)
            n_erasures = zero_mask.sum(axis=1)
            for k in range(self.layout.n_codewords):
                erasure_positions = [
                    int(j) for j in np.flatnonzero(zero_mask[k])
                ]
                # Low-confidence cells are *advisory* erasures: include
                # them while they fit the budget, and fall back to the
                # hard (column) erasures alone if decoding then fails —
                # a wrong confidence flag must never lose a codeword that
                # plain decoding would have saved.
                soft_positions = [
                    int(j) for j in np.flatnonzero(
                        soft_cells[self._codeword_rows[k],
                                   self._codeword_cols[k]]
                    )
                ]
                if not soft_positions:
                    if n_erasures[k] > rs.nsym:
                        failed.append(k)
                        continue
                    if clean[k]:
                        corrected += int(n_erasures[k])
                        matrix[self._codeword_rows[k, :data_columns],
                               self._codeword_cols[k, :data_columns]] = \
                            zeroed[k, : rs.k]
                        continue
                budget = rs.nsym - len(erasure_positions)
                augmented = erasure_positions + soft_positions[:max(budget, 0)]
                try:
                    message, n_fixed = rs.decode(words[k], augmented)
                except DecodeFailure:
                    try:
                        message, n_fixed = rs.decode(
                            words[k], erasure_positions
                        )
                    except DecodeFailure:
                        failed.append(k)
                        continue
                corrected += n_fixed
                matrix[self._codeword_rows[k, :data_columns],
                       self._codeword_cols[k, :data_columns]] = message
        report = DecodeReport(
            erased_columns=erased,
            failed_codewords=failed,
            corrected_symbols=corrected,
        )
        return matrix, report

    def _reference_codec(self) -> ReferenceReedSolomon:
        """The lazily-built frozen scalar codec for the reference path."""
        if self._rs_reference is None:
            config = self.matrix_config
            self._rs_reference = ReferenceReedSolomon(
                config.m, nsym=config.nsym, n=config.n_columns
            )
        return self._rs_reference

    def correct(
        self,
        received: ReceivedUnit,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        extra_erasure_columns: Sequence[int] = (),
    ) -> Tuple[np.ndarray, DecodeReport]:
        """RS-correct a received matrix and recover the original bits.

        Args:
            received: output of :meth:`receive`.
            n_data_bits: payload length the caller stored.
            ranking: the priority permutation used at encode time.
            extra_erasure_columns: see :meth:`correct_matrix`.
        """
        matrix, report = self.correct_matrix(received, extra_erasure_columns)
        prioritized = self._symbols_to_bits(
            matrix[self._placement_rows, self._placement_cols]
        )
        bits = self._unrank(prioritized, n_data_bits, ranking)
        return bits, report

    def correct_many(
        self,
        received_units: Sequence[ReceivedUnit],
        n_data_bits: Sequence[int],
        ranking: Optional[np.ndarray] = None,
        extra_erasure_columns: Sequence[int] = (),
    ) -> List[Tuple[np.ndarray, DecodeReport]]:
        """RS-correct and bit-extract several units in one batched pass.

        The multi-unit counterpart of :meth:`correct`: all units' dirty
        codewords decode through one :meth:`correct_matrix_many` call
        (one batched errata wave plus at most one soft-erasure retry
        wave), then each unit's bits extract as in :meth:`correct`.
        ``n_data_bits[u]`` is unit ``u``'s payload size; ``ranking`` and
        ``extra_erasure_columns`` apply per unit.
        """
        if len(n_data_bits) != len(received_units):
            raise ValueError(
                f"expected {len(received_units)} payload sizes, "
                f"got {len(n_data_bits)}"
            )
        results = self.correct_matrix_many(
            received_units, extra_erasure_columns
        )
        out = []
        for (matrix, report), size in zip(results, n_data_bits):
            prioritized = self._symbols_to_bits(
                matrix[self._placement_rows, self._placement_cols]
            )
            out.append((self._unrank(prioritized, int(size), ranking),
                        report))
        return out

    def decode(
        self,
        clusters: Union[Sequence[ReadCluster], ReadBatch],
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
        extra_erasure_columns: Sequence[int] = (),
    ) -> Tuple[np.ndarray, DecodeReport]:
        """Full decode: :meth:`receive` followed by :meth:`correct`."""
        received = self.receive(clusters)
        return self.correct(
            received, n_data_bits, ranking, extra_erasure_columns
        )

    def decode_pool(
        self,
        pool: ReadBatch,
        n_data_bits: int,
        clusterer=None,
        ranking: Optional[np.ndarray] = None,
        extra_erasure_columns: Sequence[int] = (),
    ) -> Tuple[np.ndarray, DecodeReport]:
        """Decode one unit from an *unlabeled* read pool.

        The realistic retrieval entry point: ``pool`` carries reads with
        no ground-truth cluster labels (its own cluster structure is
        ignored — e.g. a one-cluster batch from
        :meth:`~repro.channel.readbatch.ReadBatch.pooled`). The
        clusterer — the batched greedy scan by default, or any drop-in
        with the same surface such as
        :class:`~repro.cluster.LSHClusterer` — recovers the clusters on
        the columnar plane, and the re-labeled batch decodes through the
        ordinary
        :meth:`decode` — each recovered cluster's consensus strand names
        its own column via the embedded index field, first claim wins,
        and RS absorbs residual clustering mistakes.
        """
        if clusterer is None:
            clusterer = BatchedGreedyClusterer.for_strand_length(
                self.matrix_config.strand_length
            )
        labeled = clusterer.cluster_batch(pool)
        return self.decode(labeled, n_data_bits, ranking,
                           extra_erasure_columns)

    def prioritized_bits(self, received_or_matrix) -> np.ndarray:
        """Data bits in placement (priority) order, without un-ranking.

        Accepts a :class:`ReceivedUnit` or a raw matrix. Used by staged
        decodes that must parse a directory before the ranking is known.
        """
        matrix = getattr(received_or_matrix, "matrix", received_or_matrix)
        return self._symbols_to_bits(
            np.asarray(matrix)[self._placement_rows, self._placement_cols]
        )

    def unrank_bits(
        self,
        prioritized: np.ndarray,
        n_data_bits: int,
        ranking: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Invert the priority permutation over already-extracted bits."""
        return self._unrank(prioritized, n_data_bits, ranking)

    # -- bit/symbol plumbing ----------------------------------------------------

    def _unrank(
        self,
        prioritized: np.ndarray,
        n_data_bits: int,
        ranking: Optional[np.ndarray],
    ) -> np.ndarray:
        if not (0 <= n_data_bits <= self.capacity_bits):
            raise ValueError(f"n_data_bits {n_data_bits} out of range")
        if ranking is None:
            return prioritized[:n_data_bits].copy()
        ranking = np.asarray(ranking, dtype=np.int64)
        if ranking.shape != (n_data_bits,):
            raise ValueError("ranking length must equal n_data_bits")
        bits = np.zeros(n_data_bits, dtype=np.uint8)
        bits[ranking] = prioritized[:n_data_bits]
        return bits

    def _bits_to_symbols(self, bits: np.ndarray) -> np.ndarray:
        m = self.matrix_config.m
        grouped = bits.reshape(-1, m).astype(np.int64)
        weights = 1 << np.arange(m - 1, -1, -1, dtype=np.int64)
        return grouped @ weights

    def _symbols_to_bits(self, symbols: np.ndarray) -> np.ndarray:
        m = self.matrix_config.m
        shifts = np.arange(m - 1, -1, -1, dtype=np.int64)
        bits = (symbols[:, None] >> shifts) & 1
        return bits.reshape(-1).astype(np.uint8)
