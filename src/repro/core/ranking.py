"""Bit-priority rankings for DnaMapper (the paper's Section 5.3).

A *ranking* is a permutation ``rank`` of bit indices: ``rank[q]`` is the
index (in the packed input stream) of the bit with priority ``q`` (0 =
most important). The encoder stores bit ``rank[q]`` at the ``q``-th most
reliable location; the decoder inverts the permutation.

Provided heuristics:

* :func:`identity_ranking` — the baseline (no prioritization).
* :func:`positional_ranking` — the paper's zero-metadata heuristic for a
  single file: earlier bits are more important (JPEG entropy coding makes
  later bits depend on earlier ones).
* :func:`proportional_share_ranking` — the paper's multi-file heuristic
  (Section 6.1.1): every file receives a share of each reliability class
  proportional to its size, so all files degrade in step; designated
  top-priority regions (the directory) come first.
* :func:`oracle_ranking` — the brute-force PSNR ranking of Section 7.3,
  used only to benchmark the heuristic (Figure 16): flip every bit,
  measure the quality loss, sort.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.media.jpeg import JpegCodec
from repro.media.psnr import quality_loss_db
from repro.utils.bitio import bits_to_bytes, bytes_to_bits


def identity_ranking(n_bits: int) -> np.ndarray:
    """No prioritization: priority order equals stream order."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return np.arange(n_bits, dtype=np.int64)


def positional_ranking(n_bits: int) -> np.ndarray:
    """Single-file heuristic: bit priority equals file position.

    For one file this coincides with the identity permutation — the whole
    point of the heuristic is that the *placement*, not the ranking
    computation, does the work, and no metadata is needed.
    """
    return identity_ranking(n_bits)


def proportional_share_ranking(
    segment_bits: Sequence[int],
    top_priority_segments: Sequence[int] = (),
) -> np.ndarray:
    """Interleave several files so each gets its proportional share.

    Args:
        segment_bits: bit length of each file (segment) in stream order.
        top_priority_segments: indices of segments whose *entire* content
            outranks everything else (the paper gives the directory file
            the highest priority for all of its bits), in the given order.

    Returns:
        The permutation ``rank`` over the concatenated stream: within each
        file bits keep their order; across files, bit ``j`` of file ``f``
        is ranked by its fractional position ``j / n_f``, so the high-order
        bits of all files land in the strongest reliability classes
        together and every file degrades proportionally.
    """
    segment_bits = [int(n) for n in segment_bits]
    if any(n < 0 for n in segment_bits):
        raise ValueError("segment sizes must be non-negative")
    top_set = list(dict.fromkeys(int(i) for i in top_priority_segments))
    for index in top_set:
        if not (0 <= index < len(segment_bits)):
            raise ValueError(f"top-priority segment {index} out of range")
    offsets = np.concatenate([[0], np.cumsum(segment_bits)])[:-1]

    pieces = []
    for index in top_set:
        pieces.append(offsets[index] + np.arange(segment_bits[index]))
    ordinary = [
        i for i in range(len(segment_bits)) if i not in top_set and segment_bits[i] > 0
    ]
    if ordinary:
        keys = np.concatenate([
            (np.arange(segment_bits[i]) + 0.5) / segment_bits[i] for i in ordinary
        ])
        indices = np.concatenate([
            offsets[i] + np.arange(segment_bits[i]) for i in ordinary
        ])
        # Stable sort by fractional position keeps within-file order and
        # breaks cross-file ties by stream order.
        pieces.append(indices[np.argsort(keys, kind="stable")])
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces).astype(np.int64)


def oracle_ranking(
    compressed: bytes,
    codec: Optional[JpegCodec] = None,
    original: Optional[np.ndarray] = None,
    loss_for_failure: float = 60.0,
    progress: Optional[Callable[[int, int], None]] = None,
) -> np.ndarray:
    """Brute-force ranking: flip each bit, measure PSNR loss, sort.

    This is the paper's "oracle" of Section 7.3: computationally expensive
    (one decode per bit) and requiring the ranking itself to be stored as
    metadata — evaluated only to show the positional heuristic is close.

    Args:
        compressed: the compressed image file.
        codec: decoder (defaults to a fresh :class:`JpegCodec`).
        original: reference image; defaults to the clean decode.
        loss_for_failure: loss assigned when a flip makes the file
            undecodable (shape change or header loss).
        progress: optional callback ``(done, total)``.

    Returns:
        Permutation with the most damaging bit first. Ties (zero-loss
        bits) keep file order, which matches the positional heuristic.
    """
    codec = codec or JpegCodec()
    clean, _ = codec.decode_robust(compressed)
    reference = clean if original is None else np.asarray(original)
    bits = bytes_to_bits(compressed)
    n = len(bits)
    losses = np.zeros(n, dtype=np.float64)
    for i in range(n):
        flipped = bits.copy()
        flipped[i] ^= 1
        image, _ = codec.decode_robust(bits_to_bytes(flipped))
        if image.shape != clean.shape:
            losses[i] = loss_for_failure
        else:
            losses[i] = quality_loss_db(reference, clean, image)
        if progress is not None:
            progress(i + 1, n)
    return np.argsort(-losses, kind="stable").astype(np.int64)


def invert_ranking(rank: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inverse[bit_index] = priority``."""
    rank = np.asarray(rank, dtype=np.int64)
    inverse = np.empty_like(rank)
    inverse[rank] = np.arange(len(rank), dtype=np.int64)
    return inverse
