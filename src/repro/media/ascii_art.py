"""ASCII rendering of grayscale images for terminal examples.

Stands in for the paper's Figure 15 (side-by-side decoded photos): the
examples print retrieved images at different quality-loss levels so the
degradation is visible without any imaging dependency.
"""

from __future__ import annotations

import numpy as np

# Dark -> bright luminance ramp.
_RAMP = " .:-=+*#%@"


def ascii_render(
    image: np.ndarray,
    width: int = 64,
    invert: bool = False,
) -> str:
    """Render a grayscale image as ASCII art.

    Args:
        image: (H, W) array, any numeric dtype.
        width: output width in characters; height follows the aspect ratio
            (halved, since terminal cells are roughly twice as tall as wide).
        invert: swap dark and bright (for light terminal themes).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got {image.shape}")
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    height = max(1, int(round(image.shape[0] / image.shape[1] * width / 2)))
    resized = _resize(image, height, width)
    low, high = resized.min(), resized.max()
    if high == low:
        normalized = np.zeros_like(resized)
    else:
        normalized = (resized - low) / (high - low)
    ramp = _RAMP[::-1] if invert else _RAMP
    indices = np.clip(
        (normalized * (len(ramp) - 1)).round().astype(int), 0, len(ramp) - 1
    )
    return "\n".join("".join(ramp[i] for i in row) for row in indices)


def side_by_side(panels: dict, width: int = 40, gap: int = 3) -> str:
    """Render several images next to each other with captions.

    Args:
        panels: caption -> grayscale image.
        width: per-panel character width.
        gap: spaces between panels.
    """
    if not panels:
        raise ValueError("panels must not be empty")
    rendered = {
        caption: ascii_render(image, width=width).splitlines()
        for caption, image in panels.items()
    }
    height = max(len(lines) for lines in rendered.values())
    for lines in rendered.values():
        lines.extend([" " * width] * (height - len(lines)))
    spacer = " " * gap
    captions = spacer.join(caption[:width].center(width) for caption in rendered)
    body = "\n".join(
        spacer.join(lines[row].ljust(width) for lines in rendered.values())
        for row in range(height)
    )
    return captions + "\n" + body


def _resize(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Box-ish resample via index mapping (no scipy dependency needed)."""
    rows = np.clip(
        (np.arange(height) + 0.5) * image.shape[0] / height, 0, image.shape[0] - 1
    ).astype(int)
    cols = np.clip(
        (np.arange(width) + 0.5) * image.shape[1] / width, 0, image.shape[1] - 1
    ).astype(int)
    return image[np.ix_(rows, cols)]
