"""Synthetic grayscale photographs.

The paper's workload is ten private JPEG photos of 5 KB-1.5 MB; this
generator stands in for them (see DESIGN.md's substitution table). Images
combine the structures that drive JPEG behaviour on natural photos: smooth
illumination gradients (low-frequency energy), geometric objects with hard
edges (localized high frequency), and band-limited texture noise
(mid-frequency energy). Sizes and object counts are parameterized so a
compressed-size mix like the paper's can be produced.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.utils.rng import RngLike, ensure_rng


def synth_image(
    height: int = 256,
    width: int = 256,
    n_shapes: int = 12,
    texture_strength: float = 12.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Generate a (height, width) uint8 grayscale image.

    Args:
        height / width: image dimensions (>= 16 each).
        n_shapes: number of random ellipses and rectangles to draw.
        texture_strength: amplitude of the band-limited texture component.
        rng: random source.
    """
    if height < 16 or width < 16:
        raise ValueError("image must be at least 16x16")
    generator = ensure_rng(rng)
    ys, xs = np.mgrid[0:height, 0:width]

    # Smooth illumination: a tilted plane plus two broad Gaussian blobs.
    angle = generator.uniform(0, 2 * np.pi)
    gradient = (
        np.cos(angle) * xs / width + np.sin(angle) * ys / height
    ) * generator.uniform(40, 90)
    image = np.full((height, width), generator.uniform(80, 160)) + gradient
    for _ in range(2):
        cy, cx = generator.uniform(0, height), generator.uniform(0, width)
        sigma = generator.uniform(0.25, 0.6) * min(height, width)
        blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma**2)))
        image += generator.uniform(-50, 50) * blob

    # Geometric objects: filled ellipses and axis-aligned rectangles.
    for _ in range(n_shapes):
        shade = generator.uniform(0, 255)
        if generator.random() < 0.5:
            cy, cx = generator.uniform(0, height), generator.uniform(0, width)
            ry = generator.uniform(0.03, 0.2) * height
            rx = generator.uniform(0.03, 0.2) * width
            mask = ((ys - cy) / ry) ** 2 + ((xs - cx) / rx) ** 2 <= 1.0
        else:
            y0 = int(generator.uniform(0, height * 0.9))
            x0 = int(generator.uniform(0, width * 0.9))
            y1 = min(height, y0 + int(generator.uniform(4, height * 0.3)))
            x1 = min(width, x0 + int(generator.uniform(4, width * 0.3)))
            mask = np.zeros((height, width), dtype=bool)
            mask[y0:y1, x0:x1] = True
        alpha = generator.uniform(0.5, 1.0)
        image[mask] = (1 - alpha) * image[mask] + alpha * shade

    # Band-limited texture: blurred white noise.
    noise = generator.normal(0.0, 1.0, size=(height, width))
    texture = ndimage.gaussian_filter(noise, sigma=1.5)
    scale = texture.std()
    if scale > 0:
        image += texture_strength * texture / scale

    return np.clip(np.round(image), 0, 255).astype(np.uint8)


def synth_image_rgb(
    height: int = 256,
    width: int = 256,
    n_shapes: int = 12,
    texture_strength: float = 12.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Generate an (height, width, 3) uint8 RGB photograph stand-in.

    The three channels share one luminance structure (so the image looks
    like a tinted photo, not channel noise) with channel-specific casts
    and a couple of colored objects on top.
    """
    generator = ensure_rng(rng)
    luminance = synth_image(height, width, n_shapes=n_shapes,
                            texture_strength=texture_strength,
                            rng=generator).astype(np.float64)
    casts = generator.uniform(0.75, 1.25, size=3)
    image = np.stack([luminance * cast for cast in casts], axis=-1)

    ys, xs = np.mgrid[0:height, 0:width]
    for _ in range(max(2, n_shapes // 4)):
        cy, cx = generator.uniform(0, height), generator.uniform(0, width)
        ry = generator.uniform(0.05, 0.25) * height
        rx = generator.uniform(0.05, 0.25) * width
        mask = ((ys - cy) / ry) ** 2 + ((xs - cx) / rx) ** 2 <= 1.0
        color = generator.uniform(0, 255, size=3)
        alpha = generator.uniform(0.4, 0.8)
        image[mask] = (1 - alpha) * image[mask] + alpha * color

    return np.clip(np.round(image), 0, 255).astype(np.uint8)
