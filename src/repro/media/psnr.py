"""Peak signal-to-noise ratio — the paper's image quality metric.

The paper reports quality *loss* in dB (its Figures 10, 14, 16): how much
PSNR the retrieved image lost compared to the error-free decode, both
measured against the same original. Up to 1 dB of loss is considered
unnoticeable (Section 7.2).
"""

from __future__ import annotations

import numpy as np


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB between two images; ``inf`` for identical inputs."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def quality_loss_db(
    original: np.ndarray,
    clean_decode: np.ndarray,
    corrupted_decode: np.ndarray,
    peak: float = 255.0,
) -> float:
    """Quality loss in dB of a corrupted retrieval, the paper's metric.

    ``psnr(original, clean_decode) - psnr(original, corrupted_decode)``,
    floored at zero. ``original`` is the uncompressed image; the clean
    decode is what a lossless retrieval would reproduce, so an error-free
    retrieval scores exactly 0 dB of loss.

    When the corrupted decode equals the clean decode bit-for-bit the loss
    is 0 even if both PSNR values are infinite (lossless compression).
    """
    if np.array_equal(clean_decode, corrupted_decode):
        return 0.0
    clean_psnr = psnr(original, clean_decode, peak)
    corrupted_psnr = psnr(original, corrupted_decode, peak)
    if clean_psnr == float("inf"):
        # Lossless reference: report the corrupted PSNR deficit from a
        # practical ceiling of the 8-bit scale.
        clean_psnr = 10.0 * np.log10(peak * peak / (1.0 / 12.0))
    return max(0.0, clean_psnr - corrupted_psnr)
