"""Huffman entropy coding for the JPEG codec.

Implements the baseline JPEG entropy layer: Huffman-coded DC categories
with DPCM differences and AC (run, size) pairs with magnitude bits, using
the Annex K tables from :mod:`repro.media.jpeg.tables`.

The decoder is *defensive by design*: any invalid code, impossible
category, or truncated stream raises :class:`EntropyDecodeError` rather
than returning garbage silently — the robust image decoder catches it and
degrades gracefully, which is the behaviour the paper's Figure 10 profile
measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.media.jpeg.tables import (
    AC_LUMA_BITS,
    AC_LUMA_VALUES,
    DC_LUMA_BITS,
    DC_LUMA_VALUES,
    build_huffman_codes,
    build_huffman_decoder,
)
from repro.utils.bitio import BitReader, BitWriter

EOB = 0x00  # end of block
ZRL = 0xF0  # run of 16 zeros

_DC_CODES = build_huffman_codes(DC_LUMA_BITS, DC_LUMA_VALUES)
_AC_CODES = build_huffman_codes(AC_LUMA_BITS, AC_LUMA_VALUES)
_DC_DECODER = build_huffman_decoder(DC_LUMA_BITS, DC_LUMA_VALUES)
_AC_DECODER = build_huffman_decoder(AC_LUMA_BITS, AC_LUMA_VALUES)
_MAX_CODE_LENGTH = 16


class EntropyDecodeError(Exception):
    """Raised when the entropy-coded stream is invalid or exhausted."""


def magnitude_category(value: int) -> int:
    """JPEG 'size' of a value: number of bits of |value| (0 for 0)."""
    return abs(value).bit_length()


def encode_magnitude(writer: BitWriter, value: int, category: int) -> None:
    """Append the ``category`` magnitude bits of ``value``.

    Negative values use the JPEG one's-complement convention:
    ``value + 2^category - 1``.
    """
    if category == 0:
        return
    if value < 0:
        value += (1 << category) - 1
    writer.write_bits(value, category)


def decode_magnitude(reader: BitReader, category: int) -> int:
    """Read ``category`` magnitude bits and undo the sign convention."""
    if category == 0:
        return 0
    try:
        raw = reader.read_bits(category)
    except EOFError as exc:
        raise EntropyDecodeError("stream exhausted inside magnitude bits") from exc
    if raw < (1 << (category - 1)):  # high bit clear => negative value
        return raw - (1 << category) + 1
    return raw


def _write_symbol(writer: BitWriter, symbol: int, codes: Dict[int, Tuple[int, int]]) -> None:
    code, length = codes[symbol]
    writer.write_bits(code, length)


def _read_symbol(reader: BitReader, decoder: Dict[Tuple[int, int], int]) -> int:
    code = 0
    for length in range(1, _MAX_CODE_LENGTH + 1):
        try:
            code = (code << 1) | reader.read_bit()
        except EOFError as exc:
            raise EntropyDecodeError("stream exhausted inside a Huffman code") from exc
        symbol = decoder.get((code, length))
        if symbol is not None:
            return symbol
    raise EntropyDecodeError("no Huffman code matched within 16 bits")


def encode_block(
    writer: BitWriter, zigzag_coefficients: List[int], previous_dc: int
) -> int:
    """Entropy-encode one block (64 zigzagged quantized coefficients).

    Returns the block's DC value (the caller threads it as the next
    block's DPCM predictor).
    """
    if len(zigzag_coefficients) != 64:
        raise ValueError(f"expected 64 coefficients, got {len(zigzag_coefficients)}")
    dc = int(zigzag_coefficients[0])
    diff = dc - previous_dc
    category = magnitude_category(diff)
    if category > 11:
        raise ValueError(f"DC difference {diff} out of baseline range")
    _write_symbol(writer, category, _DC_CODES)
    encode_magnitude(writer, diff, category)

    run = 0
    for coefficient in zigzag_coefficients[1:]:
        value = int(coefficient)
        if value == 0:
            run += 1
            continue
        while run >= 16:
            _write_symbol(writer, ZRL, _AC_CODES)
            run -= 16
        category = magnitude_category(value)
        if category > 10:
            raise ValueError(f"AC coefficient {value} out of baseline range")
        _write_symbol(writer, (run << 4) | category, _AC_CODES)
        encode_magnitude(writer, value, category)
        run = 0
    if run > 0:
        _write_symbol(writer, EOB, _AC_CODES)
    return dc


def decode_block(reader: BitReader, previous_dc: int) -> List[int]:
    """Decode one block into 64 zigzagged coefficients.

    Raises:
        EntropyDecodeError: on any malformed or truncated content.
    """
    category = _read_symbol(reader, _DC_DECODER)
    if category > 11:
        raise EntropyDecodeError(f"invalid DC category {category}")
    dc = previous_dc + decode_magnitude(reader, category)
    if not (-2048 <= dc <= 2047):
        # Baseline JPEG DC values fit in 11 bits plus sign; a wandering DC
        # is the signature of a desynchronized stream.
        raise EntropyDecodeError(f"DC value {dc} outside the baseline range")
    coefficients = [0] * 64
    coefficients[0] = dc
    index = 1
    while index < 64:
        symbol = _read_symbol(reader, _AC_DECODER)
        if symbol == EOB:
            break
        if symbol == ZRL:
            index += 16
            if index > 64:
                raise EntropyDecodeError("ZRL ran past the end of the block")
            continue
        run = symbol >> 4
        category = symbol & 0x0F
        if category == 0 or category > 10:
            raise EntropyDecodeError(f"invalid AC symbol 0x{symbol:02X}")
        index += run
        if index >= 64:
            raise EntropyDecodeError("AC run ran past the end of the block")
        coefficients[index] = decode_magnitude(reader, category)
        index += 1
    return coefficients
