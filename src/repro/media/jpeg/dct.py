"""Blockwise 8x8 DCT used by the JPEG codec.

The orthonormal 2-D DCT-II over an 8x8 block equals the JPEG FDCT exactly
(the 1/4 * C(u) * C(v) scaling of T.81 is the product of the two 1-D
orthonormal factors), so :func:`scipy.fft.dctn` with ``norm='ortho'`` is
the textbook-correct transform. All blocks of an image are transformed in
one vectorized call.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn


def blockify(image: np.ndarray, block: int = 8) -> tuple:
    """Split an image into (n_blocks, block, block), padding by edge-replication.

    Returns (blocks, padded_shape, grid) where grid is (rows, cols) of the
    block layout — everything :func:`unblockify` needs.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    height, width = image.shape
    pad_h = (-height) % block
    pad_w = (-width) % block
    padded = np.pad(image, ((0, pad_h), (0, pad_w)), mode="edge")
    rows = padded.shape[0] // block
    cols = padded.shape[1] // block
    blocks = (
        padded.reshape(rows, block, cols, block)
        .transpose(0, 2, 1, 3)
        .reshape(rows * cols, block, block)
    )
    return blocks, padded.shape, (rows, cols)


def unblockify(
    blocks: np.ndarray, padded_shape: tuple, grid: tuple, original_shape: tuple,
    block: int = 8,
) -> np.ndarray:
    """Reassemble blocks into an image and crop away the padding."""
    rows, cols = grid
    image = (
        blocks.reshape(rows, cols, block, block)
        .transpose(0, 2, 1, 3)
        .reshape(padded_shape)
    )
    height, width = original_shape
    return image[:height, :width]


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """JPEG FDCT of every block (level shift is the caller's job)."""
    return dctn(blocks.astype(np.float64), axes=(-2, -1), norm="ortho")


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    return idctn(np.asarray(coefficients, dtype=np.float64),
                 axes=(-2, -1), norm="ortho")
