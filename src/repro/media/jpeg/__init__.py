"""Baseline JPEG-style grayscale codec built from scratch.

See :mod:`repro.media.jpeg.codec` for the container format and the
robust-decoding behaviour the evaluation relies on.
"""

from repro.media.jpeg.codec import JpegCodec, JpegDecodeStats
from repro.media.jpeg.color import ColorJpegCodec

__all__ = ["JpegCodec", "ColorJpegCodec", "JpegDecodeStats"]
