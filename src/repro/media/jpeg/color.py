"""Color support: YCbCr conversion, 4:2:0 subsampling, color codec.

Real JPEG photographs — the paper's workload — are color images coded as
a luma plane plus two chroma planes subsampled 2x in both directions
(4:2:0). :class:`ColorJpegCodec` reproduces that structure over the same
blockwise DCT + Huffman machinery as the grayscale codec: the three
planes are entropy-coded back-to-back (Y, then Cb, then Cr), so the luma
plane — which dominates perceived quality — sits *earlier in the file*
and inherits more protection under DnaMapper's positional ranking,
exactly like real JPEG scans.

Container format: ``RC`` magic, u16 width, u16 height, u8 quality, then
the concatenated entropy stream.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

import numpy as np

from repro.media.jpeg import huffman
from repro.media.jpeg.codec import JpegDecodeStats
from repro.media.jpeg.dct import blockify, forward_dct, inverse_dct, unblockify
from repro.media.jpeg.huffman import EntropyDecodeError
from repro.media.jpeg.tables import INVERSE_ZIGZAG, ZIGZAG, quant_table
from repro.utils.bitio import BitReader, BitWriter

_MAGIC = b"RC"
_HEADER = struct.Struct(">2sHHB")
_MAX_DIMENSION = 1 << 14

# ITU-T T.81 Annex K.1 — example chrominance quantization table.
BASE_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int64,
)


def chroma_quant_table(quality: int) -> np.ndarray:
    """Quality-scaled chrominance table (same scaling law as luma)."""
    if not (1 <= quality <= 100):
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    table = (BASE_CHROMA_QUANT * scale + 50) // 100
    return np.clip(table, 1, 255)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """BT.601 full-range RGB -> YCbCr (both float64, shape (H, W, 3))."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB, got {rgb.shape}")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`, clipped to [0, 255] uint8."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    if ycbcr.ndim != 3 or ycbcr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) YCbCr, got {ycbcr.shape}")
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.clip(np.round(np.stack([r, g, b], axis=-1)), 0, 255).astype(np.uint8)


def subsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average downsample (edge-padded to even dimensions)."""
    plane = np.asarray(plane, dtype=np.float64)
    pad_h = plane.shape[0] % 2
    pad_w = plane.shape[1] % 2
    if pad_h or pad_w:
        plane = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    return (
        plane[0::2, 0::2] + plane[1::2, 0::2]
        + plane[0::2, 1::2] + plane[1::2, 1::2]
    ) / 4.0


def upsample_420(plane: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour 2x upsample, cropped to ``shape``."""
    plane = np.asarray(plane, dtype=np.float64)
    doubled = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return doubled[: shape[0], : shape[1]]


class ColorJpegCodec:
    """Baseline color JPEG-style codec (YCbCr, 4:2:0).

    Args:
        quality: quality factor 1..100 (scales both quantization tables).
    """

    def __init__(self, quality: int = 75) -> None:
        self.quality = quality
        self._luma_quant = quant_table(quality)
        self._chroma_quant = chroma_quant_table(quality)

    # -- encoding -------------------------------------------------------------

    def encode(self, rgb: np.ndarray) -> bytes:
        """Compress an (H, W, 3) uint8 RGB image."""
        rgb = np.asarray(rgb)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB image, got {rgb.shape}")
        height, width = rgb.shape[:2]
        if height == 0 or width == 0:
            raise ValueError("image must be non-empty")
        if height > _MAX_DIMENSION or width > _MAX_DIMENSION:
            raise ValueError(f"image dimensions exceed {_MAX_DIMENSION}")
        ycbcr = rgb_to_ycbcr(rgb)
        planes = [
            (ycbcr[..., 0], self._luma_quant),
            (subsample_420(ycbcr[..., 1]), self._chroma_quant),
            (subsample_420(ycbcr[..., 2]), self._chroma_quant),
        ]
        writer = BitWriter()
        for plane, quant in planes:
            self._encode_plane(writer, plane, quant)
        header = _HEADER.pack(_MAGIC, width, height, self.quality)
        return header + writer.to_bytes()

    def _encode_plane(self, writer: BitWriter, plane: np.ndarray,
                      quant: np.ndarray) -> None:
        blocks, _, _ = blockify(plane - 128.0)
        coefficients = forward_dct(blocks)
        quantized = np.round(coefficients / quant).astype(np.int64)
        zigzagged = quantized.reshape(len(quantized), 64)[:, ZIGZAG]
        previous_dc = 0
        for block in zigzagged:
            previous_dc = huffman.encode_block(writer, block.tolist(), previous_dc)

    # -- decoding -------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Strict decode; raises ValueError on corruption."""
        image, stats = self.decode_robust(data)
        if stats.failed:
            raise ValueError(
                f"corrupt stream: {stats.blocks_decoded}/{stats.blocks_total}"
                " blocks decoded"
            )
        return image

    def decode_robust(self, data: bytes) -> Tuple[np.ndarray, JpegDecodeStats]:
        """Best-effort decode; never raises for corruption."""
        header = self._parse_header(data)
        if header is None:
            fallback = np.full((8, 8, 3), 128, dtype=np.uint8)
            return fallback, JpegDecodeStats(blocks_total=1, blocks_decoded=0)
        width, height, quality = header
        luma_quant = quant_table(quality)
        chroma_quant = chroma_quant_table(quality)
        chroma_shape = ((height + 1) // 2, (width + 1) // 2)

        reader = BitReader(data[_HEADER.size:])
        plane_specs = [
            ((height, width), luma_quant),
            (chroma_shape, chroma_quant),
            (chroma_shape, chroma_quant),
        ]
        planes = []
        decoded_total = 0
        blocks_total = 0
        for shape, quant in plane_specs:
            plane, decoded, total = self._decode_plane(reader, shape, quant)
            planes.append(plane)
            decoded_total += decoded
            blocks_total += total
        y = planes[0]
        cb = upsample_420(planes[1], (height, width))
        cr = upsample_420(planes[2], (height, width))
        image = ycbcr_to_rgb(np.stack([y, cb, cr], axis=-1))
        return image, JpegDecodeStats(
            blocks_total=blocks_total, blocks_decoded=decoded_total
        )

    def _decode_plane(self, reader: BitReader, shape: Tuple[int, int],
                      quant: np.ndarray):
        rows = (shape[0] + 7) // 8
        cols = (shape[1] + 7) // 8
        total = rows * cols
        zigzagged = np.zeros((total, 64), dtype=np.int64)
        previous_dc = 0
        decoded = 0
        for index in range(total):
            try:
                block = huffman.decode_block(reader, previous_dc)
            except EntropyDecodeError:
                break
            zigzagged[index] = block
            previous_dc = block[0]
            decoded += 1
        if decoded < total:
            zigzagged[decoded:, 0] = previous_dc
        np.clip(zigzagged, -(1 << 15), (1 << 15) - 1, out=zigzagged)
        quantized = zigzagged[:, INVERSE_ZIGZAG].reshape(total, 8, 8)
        blocks = inverse_dct(quantized * quant) + 128.0
        plane = unblockify(blocks, (rows * 8, cols * 8), (rows, cols), shape)
        return plane, decoded, total

    def _parse_header(self, data: bytes) -> Optional[Tuple[int, int, int]]:
        if len(data) < _HEADER.size:
            return None
        magic, width, height, quality = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            return None
        if not (1 <= quality <= 100):
            return None
        if not (1 <= width <= _MAX_DIMENSION and 1 <= height <= _MAX_DIMENSION):
            return None
        return width, height, quality
