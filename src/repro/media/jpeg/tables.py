"""JPEG constants: quantization tables, zigzag order, Annex K Huffman specs.

Everything here is taken from the JPEG standard (ITU-T T.81): the example
luminance quantization table, the libjpeg-style quality scaling, the 8x8
zigzag scan, and the "typical" (Annex K) DC/AC luminance Huffman tables
used by virtually every baseline encoder.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

# ITU-T T.81 Annex K.1 — example luminance quantization table.
BASE_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)


def quant_table(quality: int) -> np.ndarray:
    """Scale the base table by a quality factor 1..100 (libjpeg convention)."""
    if not (1 <= quality <= 100):
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    table = (BASE_LUMA_QUANT * scale + 50) // 100
    return np.clip(table, 1, 255)


def _build_zigzag() -> np.ndarray:
    """Generate the 8x8 zigzag scan order as 64 flat indices."""
    order = []
    for diagonal in range(15):
        cells = [
            (i, diagonal - i)
            for i in range(8)
            if 0 <= diagonal - i < 8
        ]
        if diagonal % 2 == 0:
            cells.reverse()  # even diagonals run bottom-left to top-right
        order.extend(row * 8 + col for row, col in cells)
    return np.array(order, dtype=np.int64)


ZIGZAG = _build_zigzag()
INVERSE_ZIGZAG = np.argsort(ZIGZAG)

# ITU-T T.81 Annex K.3.1 — DC luminance: counts of codes per length 1..16,
# then the symbol values in code order.
DC_LUMA_BITS = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
DC_LUMA_VALUES = list(range(12))

# ITU-T T.81 Annex K.3.2 — AC luminance.
AC_LUMA_BITS = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
AC_LUMA_VALUES = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]


def build_huffman_codes(
    bits: List[int], values: List[int]
) -> Dict[int, Tuple[int, int]]:
    """Canonical Huffman codes from a (bits, values) table spec.

    Returns symbol -> (code, code_length), the standard's C.2 procedure:
    codes of each length are consecutive, and the first code of length
    ``l+1`` is twice the next code after the last of length ``l``.
    """
    if len(bits) != 16:
        raise ValueError(f"bits must have 16 entries, got {len(bits)}")
    if sum(bits) != len(values):
        raise ValueError("bits counts do not match the number of values")
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    index = 0
    for length in range(1, 17):
        for _ in range(bits[length - 1]):
            codes[values[index]] = (code, length)
            code += 1
            index += 1
        code <<= 1
    return codes


def build_huffman_decoder(
    bits: List[int], values: List[int]
) -> Dict[Tuple[int, int], int]:
    """Inverse mapping (code, length) -> symbol for the bit-serial decoder."""
    return {
        (code, length): symbol
        for symbol, (code, length) in build_huffman_codes(bits, values).items()
    }
