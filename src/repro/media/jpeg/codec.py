"""The grayscale baseline JPEG-style codec with a corruption-robust decoder.

Container format (all multi-byte fields big-endian):

======  =====  ==============================================
offset  bytes  field
======  =====  ==============================================
0       2      magic ``RJ``
2       2      image width
4       2      image height
6       1      quality (1..100)
7..     --     entropy-coded segment (Huffman bitstream)
======  =====  ==============================================

The header mirrors real JPEG structure minimally: corrupting it is
catastrophic (dimension/quality confusion), matching the paper's
observation that the earliest file bits need the most reliability. The
decoder validates the header defensively (clamped dimensions, quality
range) and, from the first malformed entropy symbol onward, stops decoding
and *repeats the last good DC level* for every remaining block — the
graceful-degradation behaviour that lets quality loss be measured instead
of crashing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.media.jpeg import huffman
from repro.media.jpeg.dct import blockify, forward_dct, inverse_dct, unblockify
from repro.media.jpeg.huffman import EntropyDecodeError
from repro.media.jpeg.tables import INVERSE_ZIGZAG, ZIGZAG, quant_table
from repro.utils.bitio import BitReader, BitWriter

_MAGIC = b"RJ"
_HEADER = struct.Struct(">2sHHB")
_MAX_DIMENSION = 1 << 14


@dataclass
class JpegDecodeStats:
    """Diagnostics from a (possibly corrupted) decode.

    Attributes:
        blocks_total: number of 8x8 blocks in the image.
        blocks_decoded: blocks recovered before the first fatal stream error.
        failed: True when decoding aborted before the last block.
    """

    blocks_total: int
    blocks_decoded: int

    @property
    def failed(self) -> bool:
        return self.blocks_decoded < self.blocks_total


class JpegCodec:
    """Encode/decode 8-bit grayscale images.

    Args:
        quality: JPEG quality factor 1..100 (scales the quantization table).
    """

    def __init__(self, quality: int = 75) -> None:
        self.quality = quality
        self._quant = quant_table(quality)

    # -- encoding -------------------------------------------------------------

    def encode(self, image: np.ndarray) -> bytes:
        """Compress a (H, W) uint8 image into the container format."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError(f"expected 2-D grayscale image, got shape {image.shape}")
        height, width = image.shape
        if height == 0 or width == 0:
            raise ValueError("image must be non-empty")
        if height > _MAX_DIMENSION or width > _MAX_DIMENSION:
            raise ValueError(f"image dimensions exceed {_MAX_DIMENSION}")
        blocks, padded_shape, grid = blockify(image.astype(np.float64) - 128.0)
        coefficients = forward_dct(blocks)
        quantized = np.round(coefficients / self._quant).astype(np.int64)
        zigzagged = quantized.reshape(len(quantized), 64)[:, ZIGZAG]

        writer = BitWriter()
        previous_dc = 0
        for block in zigzagged:
            previous_dc = huffman.encode_block(writer, block.tolist(), previous_dc)
        header = _HEADER.pack(_MAGIC, width, height, self.quality)
        return header + writer.to_bytes()

    # -- decoding -------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Strict decode; raises ValueError on any corruption."""
        image, stats = self.decode_robust(data)
        if stats.failed:
            raise ValueError(
                f"corrupt stream: only {stats.blocks_decoded}/{stats.blocks_total}"
                " blocks decoded"
            )
        return image

    def decode_robust(self, data: bytes) -> Tuple[np.ndarray, JpegDecodeStats]:
        """Best-effort decode of possibly-corrupted data.

        Never raises for corruption: an unusable header yields a mid-gray
        image, and a mid-stream error freezes the remaining blocks at the
        last good DC level. Returns the image and decode statistics.
        """
        header = self._parse_header(data)
        if header is None:
            # Header unusable: nothing about the geometry can be trusted.
            fallback = np.full((8, 8), 128, dtype=np.uint8)
            return fallback, JpegDecodeStats(blocks_total=1, blocks_decoded=0)
        width, height, quality = header
        quant = quant_table(quality)
        rows = (height + 7) // 8
        cols = (width + 7) // 8
        total = rows * cols

        reader = BitReader(data[_HEADER.size:])
        zigzagged = np.zeros((total, 64), dtype=np.int64)
        previous_dc = 0
        decoded = 0
        for index in range(total):
            try:
                block = huffman.decode_block(reader, previous_dc)
            except EntropyDecodeError:
                break
            zigzagged[index] = block
            previous_dc = block[0]
            decoded += 1
        if decoded < total:
            # Freeze the remainder at the last DC level (flat blocks).
            zigzagged[decoded:, 0] = previous_dc
        # Clamp DC drift so corrupted magnitudes cannot explode the IDCT.
        np.clip(zigzagged, -(1 << 15), (1 << 15) - 1, out=zigzagged)

        quantized = zigzagged[:, INVERSE_ZIGZAG].reshape(total, 8, 8)
        coefficients = quantized * quant
        blocks = inverse_dct(coefficients) + 128.0
        padded_shape = (rows * 8, cols * 8)
        image = unblockify(blocks, padded_shape, (rows, cols), (height, width))
        image = np.clip(np.round(image), 0, 255).astype(np.uint8)
        return image, JpegDecodeStats(blocks_total=total, blocks_decoded=decoded)

    def _parse_header(self, data: bytes) -> Optional[Tuple[int, int, int]]:
        """Validate the header; None when it cannot be trusted at all."""
        if len(data) < _HEADER.size:
            return None
        magic, width, height, quality = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            return None
        if not (1 <= quality <= 100):
            return None
        if not (1 <= width <= _MAX_DIMENSION and 1 <= height <= _MAX_DIMENSION):
            return None
        return width, height, quality
