"""Media substrate: JPEG codec, synthetic images, and quality metrics.

The paper's workload is a set of (private) JPEG photographs; its DnaMapper
evaluation depends on two structural properties of baseline JPEG:

1. encoding units depend only on *previously* encoded units, and
2. entropy coding is error-prone — a corrupted bit can desynchronize the
   Huffman decoder and destroy everything after it,

so earlier file bits need more reliable storage (the paper's Figure 10).
This subpackage implements a baseline JPEG-style codec from scratch (8x8
DCT, quantization, zigzag, DC-DPCM + AC-RLE with the standard JPEG Annex K
Huffman tables) with a corruption-robust decoder, plus a synthetic image
generator standing in for the paper's private photos and the PSNR metric
used throughout the evaluation.
"""

from repro.media.jpeg import ColorJpegCodec, JpegCodec, JpegDecodeStats
from repro.media.psnr import psnr, quality_loss_db
from repro.media.synth import synth_image, synth_image_rgb

__all__ = [
    "JpegCodec",
    "ColorJpegCodec",
    "JpegDecodeStats",
    "psnr",
    "quality_loss_db",
    "synth_image",
    "synth_image_rgb",
]
