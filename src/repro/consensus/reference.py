"""Frozen reference implementations of the batched reconstructors.

These are the original per-cluster implementations, kept verbatim as the
production engines were rewritten to advance *every read of every
cluster* simultaneously — first the pointer scans
(:mod:`repro.consensus.bma`), then the refinement layers (the iterative
realign-and-vote and the posterior IDS lattice). They process exactly one
cluster per call and loop read-by-read (and position-by-position) over
that single cluster, which makes them easy to audit against the paper's
walk-throughs — and deliberately slow.

They exist so correctness of the batched engines is checkable by
construction: ``tests/consensus/test_vectorized_vs_reference.py`` asserts
byte-identical output between each production reconstructor and its
reference twin across randomized clusters (the posterior's soft
confidences are pinned to float round-off, as the batched lattice sums
the same terms in a different association order). Do not optimize this
module; its value is that it never changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro.channel.errors import ErrorModel
from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor

_TINY = 1e-300


class ReferenceOneWayReconstructor(Reconstructor):
    """The original single-cluster left-to-right pointer scan.

    Args:
        lookahead: how many upcoming consensus characters to estimate when
            classifying a disagreeing read's error type.
        n_alphabet: alphabet size (4 for DNA, 2 for the binary analyses).
        fill_symbol: symbol emitted when every read is exhausted.
    """

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4,
                 fill_symbol: int = 0) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if not (0 <= fill_symbol < n_alphabet):
            raise ValueError("fill_symbol outside alphabet")
        self.lookahead = lookahead
        self.n_alphabet = n_alphabet
        self.fill_symbol = fill_symbol

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        output = np.full(length, self.fill_symbol, dtype=np.int64)
        if not reads or length == 0:
            return output

        window = self.lookahead
        n_reads = len(reads)
        lengths = np.array([len(r) for r in reads], dtype=np.int64)
        # One padded matrix: sentinel -1 marks positions past a read's end.
        # The extra window+2 columns let every lookahead gather stay in
        # bounds without per-step clipping.
        padded = np.full((n_reads, int(lengths.max()) + window + 2), -1,
                         dtype=np.int64)
        for i, read in enumerate(reads):
            padded[i, : len(read)] = read
        pointers = np.zeros(n_reads, dtype=np.int64)
        rows = np.arange(n_reads)
        offsets = np.arange(1, window + 1)

        for position in range(length):
            active = pointers < lengths
            if not np.any(active):
                break  # every read exhausted; the rest stays at fill_symbol
            current = padded[rows, pointers]
            votes = np.bincount(current[active], minlength=self.n_alphabet)
            consensus = int(np.argmax(votes))
            output[position] = consensus

            agree = active & (current == consensus)
            lookahead = self._estimate_lookahead(padded, pointers, agree, offsets)
            disagree = active & ~agree
            pointers[agree] += 1
            if np.any(disagree):
                pointers[disagree] += self._classify_errors(
                    padded, pointers[disagree], rows[disagree], consensus, lookahead
                )
        return output

    def _estimate_lookahead(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        agree: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Majority-vote the next ``window`` characters of the agreeing reads."""
        window = np.full(len(offsets), -1, dtype=np.int64)
        if not np.any(agree):
            return window
        # ahead[i, o] = agreeing read i's character at pointer + 1 + o.
        ahead = padded[np.flatnonzero(agree)[:, None],
                       pointers[agree][:, None] + offsets[None, :]]
        for o in range(len(offsets)):
            column = ahead[:, o]
            valid = column >= 0
            if np.any(valid):
                counts = np.bincount(column[valid], minlength=self.n_alphabet)
                window[o] = int(np.argmax(counts))
        return window

    def _classify_errors(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        read_rows: np.ndarray,
        consensus: int,
        lookahead: np.ndarray,
    ) -> np.ndarray:
        """Pointer advances for the disagreeing reads.

        Ties resolve substitution > deletion > insertion (strict
        improvements only), keeping the scan deterministic.
        """
        window = len(lookahead)
        valid_la = lookahead >= 0
        gather = np.arange(window)

        def score(start_offset: int) -> np.ndarray:
            chars = padded[read_rows[:, None],
                           pointers[:, None] + start_offset + gather[None, :]]
            return ((chars == lookahead[None, :]) & valid_la[None, :]).sum(axis=1)

        substitution = score(1)
        deletion = score(0)
        next_char = padded[read_rows, pointers + 1]
        insertion = np.where(next_char == consensus, 1 + score(2), -1)

        advance = np.ones(len(read_rows), dtype=np.int64)
        best = substitution.copy()
        better_deletion = deletion > best
        advance[better_deletion] = 0
        np.maximum(best, deletion, out=best)
        advance[insertion > best] = 2
        return advance


class ReferenceTwoWayReconstructor(Reconstructor):
    """The original two-way wrapper over the single-cluster scan."""

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4) -> None:
        self._one_way = ReferenceOneWayReconstructor(
            lookahead=lookahead, n_alphabet=n_alphabet
        )

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        forward = self._one_way.reconstruct_indices(reads, length)
        reversed_reads = [np.asarray(r)[::-1] for r in reads]
        backward = self._one_way.reconstruct_indices(reversed_reads, length)[::-1]
        midpoint = length // 2
        return np.concatenate([forward[:midpoint], backward[midpoint:]])


class ReferenceIterativeReconstructor(Reconstructor):
    """The original realign-and-vote refinement, seeded per cluster."""

    def __init__(self, max_iterations: int = 4, n_alphabet: int = 4) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = ReferenceTwoWayReconstructor(n_alphabet=n_alphabet)

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        estimate = self._seed.reconstruct_indices(reads, length)
        if not reads or length == 0:
            return estimate
        for _ in range(self.max_iterations):
            votes = np.zeros((length, self.n_alphabet), dtype=np.int64)
            for read in reads:
                self._vote_alignment(estimate, read, votes)
            refined = estimate.copy()
            voted = votes.sum(axis=1) > 0
            refined[voted] = np.argmax(votes[voted], axis=1)
            if np.array_equal(refined, estimate):
                break
            estimate = refined
        majority = self._positional_majority(reads, length)
        if self._total_distance(majority, reads) < self._total_distance(
            estimate, reads
        ):
            return majority
        return estimate

    def _positional_majority(
        self, reads: List[np.ndarray], length: int
    ) -> np.ndarray:
        """Column-wise plurality vote, ignoring alignment entirely."""
        votes = np.zeros((length, self.n_alphabet), dtype=np.int64)
        for read in reads:
            upto = min(length, len(read))
            votes[np.arange(upto), read[:upto]] += 1
        estimate = np.zeros(length, dtype=np.int64)
        voted = votes.sum(axis=1) > 0
        estimate[voted] = np.argmax(votes[voted], axis=1)
        return estimate

    def _total_distance(
        self, candidate: np.ndarray, reads: List[np.ndarray]
    ) -> int:
        return sum(
            int(self._edit_matrix(candidate, read)[-1, -1]) for read in reads
        )

    def _vote_alignment(
        self, estimate: np.ndarray, read: np.ndarray, votes: np.ndarray
    ) -> None:
        """Align ``read`` to ``estimate`` and add its votes per position."""
        matrix = self._edit_matrix(estimate, read)
        i, j = len(estimate), len(read)
        while i > 0 and j > 0:
            sub_cost = 0 if estimate[i - 1] == read[j - 1] else 1
            if matrix[i, j] == matrix[i - 1, j - 1] + sub_cost:
                votes[i - 1, read[j - 1]] += 1
                i -= 1
                j -= 1
            elif matrix[i, j] == matrix[i - 1, j] + 1:
                i -= 1  # deletion in read relative to estimate: no vote
            else:
                j -= 1  # insertion in read: skip the extra character

    @staticmethod
    def _edit_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full unit-cost DP matrix between sequences ``a`` and ``b``."""
        n, m = len(a), len(b)
        matrix = np.zeros((n + 1, m + 1), dtype=np.int32)
        matrix[0] = np.arange(m + 1)
        matrix[:, 0] = np.arange(n + 1)
        offsets = np.arange(m + 1)
        for i in range(1, n + 1):
            previous = matrix[i - 1]
            substitution = (b != a[i - 1]).astype(np.int32)
            candidates = np.empty(m + 1, dtype=np.int32)
            candidates[0] = previous[0] + 1
            candidates[1:] = np.minimum(
                previous[:-1] + substitution, previous[1:] + 1
            )
            matrix[i] = np.minimum.accumulate(candidates - offsets) + offsets
        return matrix


class ReferencePosteriorReconstructor(Reconstructor):
    """The original per-read IDS-lattice posterior reconstructor.

    One cluster per call; every read runs its own forward-backward pass
    over the insertion/deletion/substitution lattice (a Python loop of
    per-row ``lfilter`` recurrences), votes are accumulated read by read,
    and the estimate is re-voted to a fixed point. Seeded by the frozen
    two-way scan. The production twin in
    :mod:`repro.consensus.posterior` lifts the same recursions to a
    ``(reads, positions)`` formulation; the differential suite pins its
    estimates byte-identical to this class (confidences to float
    round-off, as the batched path reorders the reductions) — except for
    reads that are *impossible* under the channel model (longer than the
    estimate with ``p_insertion=0``), where this class's log-space
    rescaling emits NaN and the batched path's finite zero-vote handling
    is pinned instead.
    """

    def __init__(
        self,
        channel: Optional[ErrorModel] = None,
        max_iterations: int = 3,
        n_alphabet: int = 4,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.channel = channel or ErrorModel.uniform(0.05)
        if self.channel.total_rate >= 1.0:
            raise ValueError("channel error rate must be below 1")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = ReferenceTwoWayReconstructor(n_alphabet=n_alphabet)

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        estimate, _ = self.reconstruct_with_confidence(reads, length)
        return estimate

    def positional_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        """Winning posterior mass per position (1.0 = certain)."""
        _, confidence = self.reconstruct_with_confidence(reads, length)
        return confidence

    def reconstruct_with_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        estimate = self._seed.reconstruct_indices(reads, length)
        confidence = np.ones(length, dtype=np.float64)
        if not reads or length == 0:
            return estimate, confidence
        for _ in range(self.max_iterations):
            votes = np.full((length, self.n_alphabet), _TINY, dtype=np.float64)
            for read in reads:
                votes += self._posterior_votes(estimate, read)
            refined = np.argmax(votes, axis=1).astype(np.int64)
            confidence = votes.max(axis=1) / votes.sum(axis=1)
            if np.array_equal(refined, estimate):
                break
            estimate = refined
        return estimate, confidence

    def _posterior_votes(
        self, estimate: np.ndarray, read: np.ndarray
    ) -> np.ndarray:
        """Accumulate P(read char j emitted at position i) * [char == s]."""
        length, m = len(estimate), len(read)
        p_ins = self.channel.p_insertion
        p_del = self.channel.p_deletion
        p_sub = self.channel.p_substitution
        p_copy = 1.0 - p_ins - p_del - p_sub
        insertion_step = p_ins / self.n_alphabet

        # Emission probability of read char j from estimate position i.
        match = read[None, :] == estimate[:, None]  # (L, m)
        emit = np.where(
            match, p_copy + _TINY, p_sub / max(self.n_alphabet - 1, 1) + _TINY
        )

        log_forward, forward = self._forward(emit, insertion_step, p_del,
                                             length, m)
        log_backward, backward = self._backward(emit, insertion_step, p_del,
                                                length, m)

        # Posterior of the emission edge (i, j) -> (i+1, j+1):
        # F[i, j] * emit[i, j] * B[i+1, j+1], in log space for scaling.
        with np.errstate(divide="ignore"):
            log_f = np.log(forward[:-1, :-1]) + log_forward[:-1, None]
            log_b = np.log(backward[1:, 1:]) + log_backward[1:, None]
        log_edge = log_f + np.log(emit) + log_b
        log_edge -= log_edge.max()  # scale-free: weights are relative
        edge = np.exp(log_edge)  # (L, m)

        votes = np.zeros((length, self.n_alphabet), dtype=np.float64)
        for symbol in range(self.n_alphabet):
            mask = read == symbol
            if mask.any():
                votes[:, symbol] += edge[:, mask].sum(axis=1)
        # Normalize per position so each read contributes one soft vote.
        totals = votes.sum(axis=1, keepdims=True)
        np.divide(votes, np.maximum(totals, _TINY), out=votes)
        return votes

    def _forward(self, emit, insertion_step, p_del, length, m):
        """Row-normalized forward lattice with per-row log scales."""
        forward = np.zeros((length + 1, m + 1), dtype=np.float64)
        log_scale = np.zeros(length + 1, dtype=np.float64)
        # Row 0: only insertions from (0, 0).
        row = insertion_step ** np.arange(m + 1, dtype=np.float64)
        scale = row.sum()
        forward[0] = row / scale
        log_scale[0] = np.log(scale)
        for i in range(1, length + 1):
            base = np.empty(m + 1, dtype=np.float64)
            base[0] = forward[i - 1, 0] * p_del
            base[1:] = (forward[i - 1, :-1] * emit[i - 1]
                        + forward[i - 1, 1:] * p_del)
            # Within-row insertion chain: row[j] = base[j] + a * row[j-1].
            row = lfilter([1.0], [1.0, -insertion_step], base)
            scale = row.sum()
            if scale <= 0:
                scale = _TINY
            forward[i] = row / scale
            log_scale[i] = log_scale[i - 1] + np.log(scale)
        return log_scale, forward

    def _backward(self, emit, insertion_step, p_del, length, m):
        """Row-normalized backward lattice with per-row log scales."""
        backward = np.zeros((length + 1, m + 1), dtype=np.float64)
        log_scale = np.zeros(length + 1, dtype=np.float64)
        row = insertion_step ** np.arange(m, -1, -1, dtype=np.float64)
        scale = row.sum()
        backward[length] = row / scale
        log_scale[length] = np.log(scale)
        for i in range(length - 1, -1, -1):
            base = np.empty(m + 1, dtype=np.float64)
            base[m] = backward[i + 1, m] * p_del
            base[:-1] = (backward[i + 1, 1:] * emit[i]
                         + backward[i + 1, :-1] * p_del)
            # Backward insertion chain: row[j] = base[j] + a * row[j+1].
            row = lfilter([1.0], [1.0, -insertion_step], base[::-1])[::-1]
            scale = row.sum()
            if scale <= 0:
                scale = _TINY
            backward[i] = row / scale
            log_scale[i] = log_scale[i + 1] + np.log(scale)
        return log_scale, backward
