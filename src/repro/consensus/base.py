"""Shared reconstruction interface and voting helpers.

All reconstructors implement :class:`Reconstructor`: given a cluster of
noisy reads and the original length L, return a best-estimate string of
exactly length L. Working with a fixed output length is what the paper
calls the *constrained* edit-distance median problem, and it is what the
storage pipeline needs (every molecule in an encoding unit has the same
length by construction).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases


class Reconstructor:
    """Interface for consensus-finding algorithms.

    Besides the one-cluster entry points, every reconstructor exposes a
    *batch* API (:meth:`reconstruct_many` / :meth:`reconstruct_many_indices`)
    taking a whole unit's worth of clusters at once. The default
    implementations simply loop; engines that can advance many clusters
    simultaneously (the pointer scans in :mod:`repro.consensus.bma`)
    override the index variant with a genuinely batched computation, which
    is where the pipeline's decode speed comes from.
    """

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        """Return a length-``length`` estimate of the cluster's original strand.

        Implementations must return *some* string of exactly the requested
        length even for degenerate inputs (empty cluster, all-empty reads);
        the pipeline treats obviously-degenerate output as erasures upstream.
        """
        raise NotImplementedError

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        """Index-array variant; default converts through strings."""
        strands = [indices_to_bases(r) for r in reads]
        return bases_to_indices(self.reconstruct(strands, length))

    def reconstruct_many(
        self, clusters: Sequence[Sequence[str]], length: int
    ) -> List[str]:
        """Reconstruct every cluster of a unit; one estimate per cluster.

        ``clusters[i]`` is the read list of cluster ``i``; the result keeps
        cluster order. Batched engines produce output identical to calling
        :meth:`reconstruct` per cluster — only faster.
        """
        index_clusters = [
            [bases_to_indices(read) for read in reads] for reads in clusters
        ]
        return [
            indices_to_bases(estimate)
            for estimate in self.reconstruct_many_indices(index_clusters, length)
        ]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        """Index-array batch variant; default loops over the clusters."""
        return [self.reconstruct_indices(reads, length) for reads in clusters]

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        """Columnar batch variant: estimates for a whole
        :class:`~repro.channel.readbatch.ReadBatch` as one
        ``(n_clusters, length)`` array.

        This is the string-free decode hot path: the batch's flat buffer
        feeds the engine directly. The default unpacks the batch into
        per-cluster index lists (zero-copy views); the pointer-scan
        engines override it to consume the batch's padded matrix whole.
        Lost clusters receive the engine's degenerate (fill) estimate —
        callers that must not see them drop them first
        (:meth:`~repro.channel.readbatch.ReadBatch.drop_lost`).
        """
        estimates = self.reconstruct_many_indices(
            batch.clusters_as_indices(), length
        )
        if not estimates:
            return np.zeros((0, length), dtype=np.int64)
        return np.stack([np.asarray(e, dtype=np.int64) for e in estimates])

    def reconstruct_batch_with_confidence(self, batch, length: int):
        """Columnar confidence variant: ``(estimate, confidence)`` pairs
        for a whole :class:`~repro.channel.readbatch.ReadBatch`.

        Only meaningful for reconstructors that expose per-position
        confidence (``reconstruct_with_confidence``, see
        :class:`repro.consensus.posterior.PosteriorReconstructor`, which
        overrides this with a genuinely batched lattice sweep); the
        default unpacks the batch into zero-copy index lists and rides
        the best per-cluster confidence entry point available. Calling it
        on a reconstructor without confidence output raises
        ``AttributeError``.
        """
        index_clusters = batch.clusters_as_indices()
        if hasattr(self, "reconstruct_many_with_confidence"):
            return self.reconstruct_many_with_confidence(
                index_clusters, length
            )
        return [
            self.reconstruct_with_confidence(reads, length)
            for reads in index_clusters
        ]


def pack_index_clusters(
    clusters: Sequence[Sequence[np.ndarray]],
    pad: int = 0,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Pack per-cluster index lists into one padded read stack.

    The shared on-ramp of the batched engines (the pointer scans in
    :mod:`repro.consensus.bma`, the refinement layers in
    :mod:`repro.consensus.iterative` / :mod:`repro.consensus.posterior`):
    all non-empty reads of all clusters as one ``(n_reads, max_len + pad)``
    ``int64`` matrix with sentinel ``-1`` past each read's end, plus
    per-read lengths and (non-decreasing) cluster ids. ``pad`` appends
    extra sentinel columns (the scans use them for bounds-free lookahead
    gathers). Empty reads are dropped — they can neither vote nor shift
    a distance comparison.
    """
    reads: List[np.ndarray] = []
    cluster_ids: List[int] = []
    for c, cluster in enumerate(clusters):
        for read in cluster:
            read = np.asarray(read, dtype=np.int64)
            if read.size:
                reads.append(read)
                cluster_ids.append(c)
    if not reads:
        return (np.zeros((0, 0), dtype=np.int64),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    lengths = np.array([r.size for r in reads], dtype=np.int64)
    padded = np.full((len(reads), int(lengths.max()) + pad), -1,
                     dtype=np.int64)
    for i, read in enumerate(reads):
        padded[i, : read.size] = read
    return padded, lengths, np.array(cluster_ids, dtype=np.int64)


def majority_vote(
    symbols: Sequence[int],
    n_alphabet: int = 4,
    tie_break: str = "lowest",
) -> Optional[int]:
    """Plurality vote over symbols; None for an empty ballot.

    Args:
        symbols: candidate symbols in ``[0, n_alphabet)``.
        n_alphabet: alphabet size.
        tie_break: "lowest" picks the smallest symbol among ties, which
            keeps reconstruction deterministic.
    """
    if len(symbols) == 0:
        return None
    counts = np.bincount(np.asarray(symbols, dtype=np.int64), minlength=n_alphabet)
    if tie_break != "lowest":
        raise ValueError(f"unknown tie_break {tie_break!r}")
    return int(np.argmax(counts))


def column_votes(
    reads: List[np.ndarray], pointers: np.ndarray, n_alphabet: int = 4
) -> np.ndarray:
    """Count votes for each symbol among reads' current characters.

    Reads whose pointer has run past their end do not vote.
    """
    counts = np.zeros(n_alphabet, dtype=np.int64)
    for read, pointer in zip(reads, pointers):
        if 0 <= pointer < len(read):
            counts[read[pointer]] += 1
    return counts
