"""Shared reconstruction interface and voting helpers.

All reconstructors implement :class:`Reconstructor`: given a cluster of
noisy reads and the original length L, return a best-estimate string of
exactly length L. Working with a fixed output length is what the paper
calls the *constrained* edit-distance median problem, and it is what the
storage pipeline needs (every molecule in an encoding unit has the same
length by construction).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases


class Reconstructor:
    """Interface for consensus-finding algorithms."""

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        """Return a length-``length`` estimate of the cluster's original strand.

        Implementations must return *some* string of exactly the requested
        length even for degenerate inputs (empty cluster, all-empty reads);
        the pipeline treats obviously-degenerate output as erasures upstream.
        """
        raise NotImplementedError

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        """Index-array variant; default converts through strings."""
        strands = [indices_to_bases(r) for r in reads]
        return bases_to_indices(self.reconstruct(strands, length))


def majority_vote(
    symbols: Sequence[int],
    n_alphabet: int = 4,
    tie_break: str = "lowest",
) -> Optional[int]:
    """Plurality vote over symbols; None for an empty ballot.

    Args:
        symbols: candidate symbols in ``[0, n_alphabet)``.
        n_alphabet: alphabet size.
        tie_break: "lowest" picks the smallest symbol among ties, which
            keeps reconstruction deterministic.
    """
    if len(symbols) == 0:
        return None
    counts = np.bincount(np.asarray(symbols, dtype=np.int64), minlength=n_alphabet)
    if tie_break != "lowest":
        raise ValueError(f"unknown tie_break {tie_break!r}")
    return int(np.argmax(counts))


def column_votes(
    reads: List[np.ndarray], pointers: np.ndarray, n_alphabet: int = 4
) -> np.ndarray:
    """Count votes for each symbol among reads' current characters.

    Reads whose pointer has run past their end do not vote.
    """
    counts = np.zeros(n_alphabet, dtype=np.int64)
    for read, pointer in zip(reads, pointers):
        if 0 <= pointer < len(read):
            counts[read[pointer]] += 1
    return counts
