"""Symbolwise posterior reconstruction over the IDS edit lattice.

A probabilistic counterpart of the heuristic scans: each read is aligned
against the current estimate by a forward-backward pass over the
insertion/deletion/substitution lattice, producing for every original
position a *posterior-weighted* vote distribution rather than a hard
aligned character. Votes are accumulated across reads and the estimate is
re-voted; the procedure repeats to a fixed point (soft-EM flavour of
:class:`repro.consensus.iterative.IterativeReconstructor`).

Besides reconstruction, the lattice exposes the paper's skew from a new
angle: :meth:`PosteriorReconstructor.positional_confidence` returns each
position's winning posterior mass, which dips exactly where the paper's
error curves peak — alignment ambiguity *is* the reliability skew.

Model: a read is generated from the estimate left to right; at estimate
position ``i`` the channel deletes (``p_del``), inserts a uniform base
(``p_ins``), substitutes (``p_sub``, uniform over the other three), or
copies. The forward/backward recursions run in the probability domain
with per-row renormalization (the within-row insertion chain is a linear
recurrence solved by ``scipy.signal.lfilter``), so strands of hundreds of
bases are handled without underflow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro.channel.errors import ErrorModel
from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.two_way import TwoWayReconstructor

_TINY = 1e-300


class PosteriorReconstructor(Reconstructor):
    """Posterior-vote reconstruction with an explicit channel model.

    Args:
        channel: assumed IDS rates (defaults to 5% split uniformly; the
            estimator in :mod:`repro.analysis.channel_estimation` can
            supply measured rates).
        max_iterations: re-voting rounds.
        n_alphabet: alphabet size.
    """

    def __init__(
        self,
        channel: Optional[ErrorModel] = None,
        max_iterations: int = 3,
        n_alphabet: int = 4,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.channel = channel or ErrorModel.uniform(0.05)
        if self.channel.total_rate >= 1.0:
            raise ValueError("channel error rate must be below 1")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = TwoWayReconstructor(n_alphabet=n_alphabet)

    # -- public API -----------------------------------------------------------

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        estimate, _ = self._run(reads, length)
        return estimate

    def positional_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        """Winning posterior mass per position (1.0 = certain).

        Low confidence marks positions where alignment ambiguity leaves
        the vote split — the positional signature of the reliability skew.
        """
        _, confidence = self._run(reads, length)
        return confidence

    def reconstruct_with_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One pass returning both the estimate and its per-position
        confidence — what confidence-assisted decoding consumes."""
        return self._run(reads, length)

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        return [e for e, _ in self.reconstruct_many_with_confidence(
            clusters, length)]

    def reconstruct_many_with_confidence(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch variant: the two-way seeds for every cluster come from one
        batched scan; the lattice refinement itself is per-cluster (each
        forward/backward pass is already whole-array over one read)."""
        normalized = [
            [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
            for reads in clusters
        ]
        seeds = self._seed.reconstruct_many_indices(normalized, length)
        return [
            self._run(reads, length, initial=seed)
            for reads, seed in zip(normalized, seeds)
        ]

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        results = self.reconstruct_batch_with_confidence(batch, length)
        if not results:
            return np.zeros((0, length), dtype=np.int64)
        return np.stack([estimate for estimate, _ in results])

    def reconstruct_batch_with_confidence(
        self, batch, length: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Columnar variant of :meth:`reconstruct_many_with_confidence`:
        the two-way seeds come from one scan over the batch's buffer, and
        the lattice refinement reads zero-copy per-read views."""
        seeds = self._seed.reconstruct_batch(batch, length)
        return [
            self._run(
                [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0],
                length, initial=np.asarray(seed, dtype=np.int64),
            )
            for reads, seed in zip(batch.clusters_as_indices(), seeds)
        ]

    # -- internals --------------------------------------------------------------

    def _run(
        self,
        reads: Sequence[np.ndarray],
        length: int,
        initial: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        estimate = (
            initial
            if initial is not None
            else self._seed.reconstruct_indices(reads, length)
        )
        confidence = np.ones(length, dtype=np.float64)
        if not reads or length == 0:
            return estimate, confidence
        for _ in range(self.max_iterations):
            votes = np.full((length, self.n_alphabet), _TINY, dtype=np.float64)
            for read in reads:
                votes += self._posterior_votes(estimate, read)
            refined = np.argmax(votes, axis=1).astype(np.int64)
            confidence = votes.max(axis=1) / votes.sum(axis=1)
            if np.array_equal(refined, estimate):
                break
            estimate = refined
        return estimate, confidence

    def _posterior_votes(
        self, estimate: np.ndarray, read: np.ndarray
    ) -> np.ndarray:
        """Accumulate P(read char j emitted at position i) * [char == s]."""
        length, m = len(estimate), len(read)
        p_ins = self.channel.p_insertion
        p_del = self.channel.p_deletion
        p_sub = self.channel.p_substitution
        p_copy = 1.0 - p_ins - p_del - p_sub
        insertion_step = p_ins / self.n_alphabet

        # Emission probability of read char j from estimate position i.
        match = read[None, :] == estimate[:, None]  # (L, m)
        emit = np.where(
            match, p_copy + _TINY, p_sub / max(self.n_alphabet - 1, 1) + _TINY
        )

        log_forward, forward = self._forward(emit, insertion_step, p_del,
                                             length, m)
        log_backward, backward = self._backward(emit, insertion_step, p_del,
                                                length, m)

        # Posterior of the emission edge (i, j) -> (i+1, j+1):
        # F[i, j] * emit[i, j] * B[i+1, j+1], in log space for scaling.
        with np.errstate(divide="ignore"):
            log_f = np.log(forward[:-1, :-1]) + log_forward[:-1, None]
            log_b = np.log(backward[1:, 1:]) + log_backward[1:, None]
        log_edge = log_f + np.log(emit) + log_b
        log_edge -= log_edge.max()  # scale-free: weights are relative
        edge = np.exp(log_edge)  # (L, m)

        votes = np.zeros((length, self.n_alphabet), dtype=np.float64)
        for symbol in range(self.n_alphabet):
            mask = read == symbol
            if mask.any():
                votes[:, symbol] += edge[:, mask].sum(axis=1)
        # Normalize per position so each read contributes one soft vote.
        totals = votes.sum(axis=1, keepdims=True)
        np.divide(votes, np.maximum(totals, _TINY), out=votes)
        return votes

    def _forward(self, emit, insertion_step, p_del, length, m):
        """Row-normalized forward lattice with per-row log scales."""
        forward = np.zeros((length + 1, m + 1), dtype=np.float64)
        log_scale = np.zeros(length + 1, dtype=np.float64)
        # Row 0: only insertions from (0, 0).
        row = insertion_step ** np.arange(m + 1, dtype=np.float64)
        scale = row.sum()
        forward[0] = row / scale
        log_scale[0] = np.log(scale)
        for i in range(1, length + 1):
            base = np.empty(m + 1, dtype=np.float64)
            base[0] = forward[i - 1, 0] * p_del
            base[1:] = (forward[i - 1, :-1] * emit[i - 1]
                        + forward[i - 1, 1:] * p_del)
            # Within-row insertion chain: row[j] = base[j] + a * row[j-1].
            row = lfilter([1.0], [1.0, -insertion_step], base)
            scale = row.sum()
            if scale <= 0:
                scale = _TINY
            forward[i] = row / scale
            log_scale[i] = log_scale[i - 1] + np.log(scale)
        return log_scale, forward

    def _backward(self, emit, insertion_step, p_del, length, m):
        """Row-normalized backward lattice with per-row log scales."""
        backward = np.zeros((length + 1, m + 1), dtype=np.float64)
        log_scale = np.zeros(length + 1, dtype=np.float64)
        row = insertion_step ** np.arange(m, -1, -1, dtype=np.float64)
        scale = row.sum()
        backward[length] = row / scale
        log_scale[length] = np.log(scale)
        for i in range(length - 1, -1, -1):
            base = np.empty(m + 1, dtype=np.float64)
            base[m] = backward[i + 1, m] * p_del
            base[:-1] = (backward[i + 1, 1:] * emit[i]
                         + backward[i + 1, :-1] * p_del)
            # Backward insertion chain: row[j] = base[j] + a * row[j+1].
            row = lfilter([1.0], [1.0, -insertion_step], base[::-1])[::-1]
            scale = row.sum()
            if scale <= 0:
                scale = _TINY
            backward[i] = row / scale
            log_scale[i] = log_scale[i + 1] + np.log(scale)
        return log_scale, backward
