"""Symbolwise posterior reconstruction over the IDS edit lattice, batched.

A probabilistic counterpart of the heuristic scans: each read is aligned
against the current estimate by a forward-backward pass over the
insertion/deletion/substitution lattice, producing for every original
position a *posterior-weighted* vote distribution rather than a hard
aligned character. Votes are accumulated across reads and the estimate is
re-voted; the procedure repeats to a fixed point (soft-EM flavour of
:class:`repro.consensus.iterative.IterativeReconstructor`).

Besides reconstruction, the lattice exposes the paper's skew from a new
angle: :meth:`PosteriorReconstructor.positional_confidence` returns each
position's winning posterior mass, which dips exactly where the paper's
error curves peak — alignment ambiguity *is* the reliability skew.

Model: a read is generated from the estimate left to right; at estimate
position ``i`` the channel deletes (``p_del``), inserts a uniform base
(``p_ins``), substitutes (``p_sub``, uniform over the other three), or
copies. The forward/backward recursions run in the probability domain
with per-row renormalization (the within-row insertion chain is a linear
recurrence solved by ``scipy.signal.lfilter``), so strands of hundreds of
bases are handled without underflow.

The lattice is *batched*: the recursions run over a ``(reads,
positions)`` stack — every read of every cluster advances one lattice row
per step, the insertion-chain ``lfilter`` vectorizing over the leading
read axis — and posterior votes are accumulated per cluster with
segmented reductions, clusters dropping out of the active set at their
fixed point. Reads of different lengths share the stack via sentinel
padding; padded columns are masked to exact zeros after every row, so
they never leak probability mass into real columns. The frozen per-read
original lives in :mod:`repro.consensus.reference`
(``ReferencePosteriorReconstructor``); the differential suite pins the
batched estimates byte-identical to it (confidences agree to float
round-off — the batched reductions sum the same terms in a different
association order). One deliberate exception: when a read is *impossible*
under the channel model (e.g. longer than the estimate with
``p_insertion=0``), the reference's log-space rescaling turns the
all-zero lattice into NaN votes; the batched probability-domain path
keeps such a read's votes at exact zero and stays finite, which the
suite pins as the defined behavior.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro.channel.errors import ErrorModel
from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor, pack_index_clusters
from repro.consensus.two_way import TwoWayReconstructor
from repro.observability.trace import get_tracer

_TINY = 1e-300


class PosteriorReconstructor(Reconstructor):
    """Posterior-vote reconstruction with an explicit channel model.

    Args:
        channel: assumed IDS rates (defaults to 5% split uniformly; the
            estimator in :mod:`repro.analysis.channel_estimation` can
            supply measured rates).
        max_iterations: re-voting rounds.
        n_alphabet: alphabet size.
    """

    #: Ceiling on the bytes of lattice state (forward/backward stacks,
    #: emission and edge matrices) materialized at once; larger read
    #: stacks are processed in chunks. Chunking preserves the per-cluster
    #: read accumulation order, so results do not depend on it.
    lattice_budget_bytes = 256 * 2 ** 20

    def __init__(
        self,
        channel: Optional[ErrorModel] = None,
        max_iterations: int = 3,
        n_alphabet: int = 4,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.channel = channel or ErrorModel.uniform(0.05)
        if self.channel.total_rate >= 1.0:
            raise ValueError("channel error rate must be below 1")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = TwoWayReconstructor(n_alphabet=n_alphabet)

    # -- public API -----------------------------------------------------------

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        return self.reconstruct_many_indices([reads], length)[0]

    def positional_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        """Winning posterior mass per position (1.0 = certain).

        Low confidence marks positions where alignment ambiguity leaves
        the vote split — the positional signature of the reliability skew.
        """
        _, confidence = self.reconstruct_with_confidence(reads, length)
        return confidence

    def reconstruct_with_confidence(
        self, reads: Sequence[np.ndarray], length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One pass returning both the estimate and its per-position
        confidence — what confidence-assisted decoding consumes."""
        return self.reconstruct_many_with_confidence([reads], length)[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        return [e for e, _ in self.reconstruct_many_with_confidence(
            clusters, length)]

    def reconstruct_many_with_confidence(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch variant: the two-way seeds for every cluster come from
        one batched scan and the lattice refinement advances all clusters'
        reads together (see :meth:`_run_batched`)."""
        seeds = self._seed.reconstruct_many_indices(clusters, length)
        if not seeds:
            return []
        estimates = np.stack([np.asarray(s, dtype=np.int64) for s in seeds])
        padded, lengths, cluster_of = pack_index_clusters(clusters)
        estimates, confidences = self._run_batched(
            padded, lengths, cluster_of, estimates
        )
        return list(zip(estimates, confidences))

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        if batch.n_clusters == 0:
            return np.zeros((0, length), dtype=np.int64)
        results = self.reconstruct_batch_with_confidence(batch, length)
        return np.stack([estimate for estimate, _ in results])

    def reconstruct_batch_with_confidence(
        self, batch, length: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Columnar variant of :meth:`reconstruct_many_with_confidence`:
        seeds from one scan over the batch's flat buffer, lattice
        refinement over its padded read stack — end to end without
        per-read Python objects."""
        if batch.n_clusters == 0:
            return []
        seeds = np.asarray(self._seed.reconstruct_batch(batch, length),
                           dtype=np.int64)
        if batch.n_reads == 0 or length == 0:
            return [(seed, np.ones(length, dtype=np.float64))
                    for seed in seeds]
        padded, lengths = batch.padded_matrix()
        estimates, confidences = self._run_batched(
            padded, lengths, batch.cluster_ids, seeds
        )
        return list(zip(estimates, confidences))

    # -- the batched lattice engine -------------------------------------------

    def _run_batched(
        self,
        padded: np.ndarray,
        lengths: np.ndarray,
        cluster_of: np.ndarray,
        seeds: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Refine every cluster's seed by batched posterior re-voting.

        ``padded`` is the ``(n_reads, width)`` sentinel read stack (``-1``
        past each read's end), rows tagged by the non-decreasing
        ``cluster_of``; ``seeds`` is ``(n_clusters, length)``. Returns the
        ``(n_clusters, length)`` estimates and confidences; clusters
        without (non-empty) reads keep their seed with confidence 1.0,
        matching the reference's early return.
        """
        n_clusters, length = seeds.shape
        estimates = seeds.copy()
        confidence = np.ones((n_clusters, length), dtype=np.float64)
        keep = lengths > 0
        if not keep.all():
            padded = padded[keep]
            lengths = lengths[keep]
            cluster_of = cluster_of[keep]
        if length == 0 or lengths.size == 0:
            return estimates, confidence
        width = int(lengths.max())
        padded = np.ascontiguousarray(padded[:, :width])

        active = np.unique(cluster_of)
        n_live = int(active.size)
        # Iteration counters accumulate locally (one add per lattice
        # sweep, never per cluster) and emit once after the loop.
        iterations = 0
        active_cluster_sweeps = 0
        for _ in range(self.max_iterations):
            iterations += 1
            active_cluster_sweeps += int(active.size)
            sub = np.isin(cluster_of, active)
            if sub.all():
                reads_a, lengths_a, clusters_a = padded, lengths, cluster_of
            else:
                reads_a, lengths_a = padded[sub], lengths[sub]
                clusters_a = cluster_of[sub]
            local = np.searchsorted(active, clusters_a)
            current = estimates[active]
            votes = self._posterior_vote_ballots(
                reads_a, lengths_a, local, current
            )
            refined = votes.argmax(axis=2).astype(np.int64)
            cluster_confidence = votes.max(axis=2) / votes.sum(axis=2)
            changed = (refined != current).any(axis=1)
            estimates[active] = refined
            confidence[active] = cluster_confidence
            active = active[changed]
            if active.size == 0:
                break
        tracer = get_tracer()
        if tracer.is_recording:
            metrics = tracer.metrics
            metrics.counter("consensus.refined_clusters").add(n_live)
            metrics.counter("consensus.iterations").add(iterations)
            metrics.counter("consensus.active_cluster_sweeps").add(
                active_cluster_sweeps
            )
        return estimates, confidence

    def _posterior_vote_ballots(
        self,
        reads: np.ndarray,
        lengths: np.ndarray,
        local_cluster: np.ndarray,
        estimates: np.ndarray,
    ) -> np.ndarray:
        """Per-cluster soft ballots ``(n_clusters, length, alphabet)``.

        One chunked sweep over the read stack; each chunk's per-read vote
        matrices are summed into their clusters with a segmented
        ``reduceat`` (reads are grouped by cluster, so segments are
        contiguous and accumulate in read order).
        """
        n_clusters, length = estimates.shape
        n_reads, width = reads.shape
        votes = np.full((n_clusters, length, self.n_alphabet), _TINY,
                        dtype=np.float64)
        est_rows = estimates[local_cluster]
        per_read = 8 * 6 * (length + 2) * (width + 2)
        chunk = max(1, self.lattice_budget_bytes // per_read)
        for start in range(0, n_reads, chunk):
            stop = min(start + chunk, n_reads)
            read_votes = self._read_vote_matrices(
                est_rows[start:stop], reads[start:stop], lengths[start:stop]
            )
            segment_ids, firsts = np.unique(
                local_cluster[start:stop], return_index=True
            )
            votes[segment_ids] += np.add.reduceat(read_votes, firsts, axis=0)
        return votes

    def _read_vote_matrices(
        self, estimates: np.ndarray, reads: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """P(read char j emitted at position i) * [char == s], per read.

        The batched form of the reference's ``_posterior_votes``: one
        ``(n_reads, length, width)`` lattice per quantity, padded columns
        (``j >= len(read)``) forced to exact zero mass.
        """
        n_reads, width = reads.shape
        length = estimates.shape[1]
        alphabet = self.n_alphabet
        p_ins = self.channel.p_insertion
        p_del = self.channel.p_deletion
        p_sub = self.channel.p_substitution
        p_copy = 1.0 - p_ins - p_del - p_sub
        insertion_step = p_ins / alphabet

        # Emission probability of read char j from estimate position i;
        # sentinel columns take the mismatch branch but never reach the
        # votes (the backward lattice is exactly zero there).
        match = reads[:, None, :] == estimates[:, :, None]  # (R, L, m)
        emit = np.where(
            match, p_copy + _TINY, p_sub / max(alphabet - 1, 1) + _TINY
        )

        forward = self._forward_batched(emit, insertion_step, p_del, lengths)
        backward = self._backward_batched(emit, insertion_step, p_del, lengths)

        # Posterior of the emission edge (i, j) -> (i+1, j+1):
        # F[i, j] * emit[i, j] * B[i+1, j+1]. The reference carries per-row
        # log scales and a global peak shift through this product, but all
        # of those are constant over j within a row — and the votes below
        # are normalized per (read, row) — so they cancel and the batched
        # lattice can stay in the probability domain with no 3-D log/exp
        # passes at all. (Rows whose entire relative mass sits below the
        # float underflow floor lose it; the reference's exp underflows in
        # the same regime, a few hundred nats further out.) Padded columns
        # (j >= len(read)) carry an exact zero in the backward slice, so
        # they vanish from the votes.
        edge = forward[:, :-1, :-1] * emit
        edge *= backward[:, 1:, 1:]

        # votes[r, i, s] = sum_j edge[r, i, j] * [read[r, j] == s]: one
        # batched matmul against the reads' one-hot expansion (sentinel
        # columns are all-zero rows there).
        one_hot = (
            reads[:, :, None] == np.arange(alphabet)[None, None, :]
        ).astype(np.float64)
        votes = edge @ one_hot
        # Normalize per position so each read contributes one soft vote.
        totals = votes.sum(axis=2, keepdims=True)
        np.divide(votes, np.maximum(totals, _TINY), out=votes)
        return votes

    #: Rows between renormalizations of the batched lattices. The scales
    #: cancel in the vote normalization, so normalizing is purely an
    #: underflow guard; row mass shrinks by at most ~p_del per row, so a
    #: handful of rows cannot come near the float64 floor.
    _NORMALIZE_EVERY = 8

    def _forward_batched(self, emit, insertion_step, p_del, lengths):
        """Forward lattices, one per read, row-normalized periodically.

        Column ``j`` of read ``r`` is real only for ``j <= len(read)``.
        The within-row ``lfilter`` chain runs left to right, so padded-
        column garbage never flows *into* real columns; it is masked out
        only on normalization rows (where it would pollute the row sum).
        Garbage in the stored lattice is harmless downstream: the edge
        product multiplies it by the backward lattice's exact zeros.
        """
        n_reads, length, width = emit.shape
        columns = np.arange(width + 1)
        valid = columns[None, :] <= lengths[:, None]  # (R, m + 1)
        forward = np.zeros((n_reads, length + 1, width + 1), dtype=np.float64)
        # Row 0: only insertions from (0, 0).
        row = np.where(
            valid, np.power(insertion_step, columns, dtype=np.float64), 0.0
        )
        forward[:, 0, :] = row / row.sum(axis=1)[:, None]
        base = np.empty((n_reads, width + 1), dtype=np.float64)
        scratch = np.empty((n_reads, width), dtype=np.float64)
        for i in range(1, length + 1):
            previous = forward[:, i - 1, :]
            base[:, 0] = previous[:, 0] * p_del
            np.multiply(previous[:, :-1], emit[:, i - 1, :], out=base[:, 1:])
            np.multiply(previous[:, 1:], p_del, out=scratch)
            base[:, 1:] += scratch
            # Within-row insertion chain: row[j] = base[j] + a * row[j-1].
            row = lfilter([1.0], [1.0, -insertion_step], base, axis=1)
            if i % self._NORMALIZE_EVERY == 0:
                np.multiply(row, valid, out=row)
                scale = row.sum(axis=1)
                scale = np.where(scale > 0, scale, _TINY)
                np.divide(row, scale[:, None], out=forward[:, i, :])
            else:
                forward[:, i, :] = row
        return forward

    def _backward_batched(self, emit, insertion_step, p_del, lengths):
        """Backward lattices, one per read, row-normalized periodically.

        The backward chain runs right to left, so here the padded columns
        sit *upstream* of the real ones: ``base`` is masked to zero before
        the reversed ``lfilter`` so no phantom mass flows into column
        ``len(read)``, which is exactly the reference's boundary cell.
        (With the base masked, the chain output is already exactly zero in
        every padded column — the edge product relies on that.)
        """
        n_reads, length, width = emit.shape
        columns = np.arange(width + 1)
        exponents = lengths[:, None] - columns[None, :]
        valid = exponents >= 0  # (R, m + 1)
        backward = np.zeros((n_reads, length + 1, width + 1), dtype=np.float64)
        row = np.where(
            valid,
            np.power(insertion_step, np.maximum(exponents, 0),
                     dtype=np.float64),
            0.0,
        )
        backward[:, length, :] = row / row.sum(axis=1)[:, None]
        base = np.empty((n_reads, width + 1), dtype=np.float64)
        scratch = np.empty((n_reads, width), dtype=np.float64)
        for i in range(length - 1, -1, -1):
            nxt = backward[:, i + 1, :]
            base[:, width] = nxt[:, width] * p_del
            np.multiply(nxt[:, 1:], emit[:, i, :], out=base[:, :-1])
            np.multiply(nxt[:, :-1], p_del, out=scratch)
            base[:, :-1] += scratch
            np.multiply(base, valid, out=base)
            # Backward insertion chain: row[j] = base[j] + a * row[j+1].
            row = lfilter(
                [1.0], [1.0, -insertion_step], base[:, ::-1], axis=1
            )[:, ::-1]
            if i % self._NORMALIZE_EVERY == 0:
                scale = row.sum(axis=1)
                scale = np.where(scale > 0, scale, _TINY)
                np.divide(row, scale[:, None], out=backward[:, i, :])
            else:
                backward[:, i, :] = row
        return backward
