"""Two-way (bidirectional) reconstruction — the paper's pipeline consensus.

The consensus problem is symmetric (Section 3.1): running the one-way scan
on the reversed reads reconstructs the strand right-to-left, so its
*early* (right-end) positions are the reliable ones. The two-way
reconstructor therefore keeps the first half of the forward scan and the
second half of the backward scan — "the best of both worlds" — which moves
the error peak from the far end (Fig 3) to the middle (Fig 4).

Both directions ride the batched one-way engine: a whole unit's clusters
are reconstructed with two batched scans (one forward, one over the
reversed reads) instead of two scans per cluster.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.bma import OneWayReconstructor


class TwoWayReconstructor(Reconstructor):
    """Forward + backward one-way scans, best half of each.

    Args:
        lookahead: lookahead window of the underlying one-way scans.
        n_alphabet: alphabet size.
    """

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4) -> None:
        self._one_way = OneWayReconstructor(
            lookahead=lookahead, n_alphabet=n_alphabet
        )

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        return self.reconstruct_many_indices([reads], length)[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        forward = self._one_way.reconstruct_many_indices(clusters, length)
        reversed_clusters = [
            [np.asarray(read)[::-1] for read in reads] for reads in clusters
        ]
        backward = self._one_way.reconstruct_many_indices(
            reversed_clusters, length
        )
        midpoint = length // 2
        return [
            np.concatenate([fwd[:midpoint], bwd[::-1][midpoint:]])
            for fwd, bwd in zip(forward, backward)
        ]
