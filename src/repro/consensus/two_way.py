"""Two-way (bidirectional) reconstruction — the paper's pipeline consensus.

The consensus problem is symmetric (Section 3.1): running the one-way scan
on the reversed reads reconstructs the strand right-to-left, so its
*early* (right-end) positions are the reliable ones. The two-way
reconstructor therefore keeps the first half of the forward scan and the
second half of the backward scan — "the best of both worlds" — which moves
the error peak from the far end (Fig 3) to the middle (Fig 4).

Both directions ride the batched one-way engine: a whole unit's clusters
are reconstructed with two batched scans (one forward, one over the
reversed reads) instead of two scans per cluster.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.bma import OneWayReconstructor


class TwoWayReconstructor(Reconstructor):
    """Forward + backward one-way scans, best half of each.

    Args:
        lookahead: lookahead window of the underlying one-way scans.
        n_alphabet: alphabet size.
    """

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4) -> None:
        self._one_way = OneWayReconstructor(
            lookahead=lookahead, n_alphabet=n_alphabet
        )

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        return self.reconstruct_many_indices([reads], length)[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        forward = self._one_way.reconstruct_many_indices(clusters, length)
        reversed_clusters = [
            [np.asarray(read)[::-1] for read in reads] for reads in clusters
        ]
        backward = self._one_way.reconstruct_many_indices(
            reversed_clusters, length
        )
        midpoint = length // 2
        return [
            np.concatenate([fwd[:midpoint], bwd[::-1][midpoint:]])
            for fwd, bwd in zip(forward, backward)
        ]

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        """Columnar entry point: both scans straight off the batch.

        The padded read matrix is gathered from the batch's flat buffer
        once; the backward scan runs over a row-wise reversal of the same
        matrix (reversing each read in place of the per-read ``[::-1]``
        copies of the list path). Output equals
        :meth:`reconstruct_many_indices` row for row.
        """
        one_way = self._one_way
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if batch.n_reads == 0 or length == 0:
            return np.full((batch.n_clusters, length), one_way.fill_symbol,
                           dtype=np.int64)
        padded, lengths = batch.padded_matrix(pad=one_way.lookahead + 2)
        forward = one_way.scan_padded(
            padded, lengths, batch.cluster_ids, batch.n_clusters, length
        )
        columns = np.arange(padded.shape[1], dtype=np.int64)
        src = lengths[:, None] - 1 - columns[None, :]
        valid = src >= 0
        reversed_padded = np.where(
            valid, np.take_along_axis(padded, np.where(valid, src, 0), axis=1),
            -1,
        )
        backward = one_way.scan_padded(
            reversed_padded, lengths, batch.cluster_ids, batch.n_clusters,
            length,
        )
        midpoint = length // 2
        return np.concatenate(
            [forward[:, :midpoint], backward[:, ::-1][:, midpoint:]], axis=1
        )
