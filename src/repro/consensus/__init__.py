"""Trace reconstruction (consensus finding) algorithms.

Given noisy copies of an unknown strand (a read cluster), reconstruct the
most likely original of a known length L. The paper's key observation —
reliability skew — is a property of this step: positional error probability
rises with the number of indel mis-corrections accumulated while scanning,
so one-way reconstruction degrades towards the far end and two-way
reconstruction peaks in the middle.

Algorithms provided:

* :class:`repro.consensus.bma.OneWayReconstructor` — Bitwise-Majority-
  Alignment-style left-to-right scan (Fig 3's shape).
* :class:`repro.consensus.two_way.TwoWayReconstructor` — the paper's
  pipeline consensus: forward + backward scans, best half of each (Fig 4).
* :class:`repro.consensus.iterative.IterativeReconstructor` — a stronger
  realign-and-vote refinement loop standing in for Sabary et al. (Fig 5).
* :class:`repro.consensus.median.OptimalMedianReconstructor` — exact
  constrained edit-distance median via branch and bound, with the paper's
  adversarial tie-breaking (Fig 6).

The production engines are *batched end to end*: every reconstructor
accepts a whole unit's clusters through ``reconstruct_many`` /
``reconstruct_many_indices`` (or a columnar ``ReadBatch`` through
``reconstruct_batch``), the one-way/two-way scans advance all clusters
simultaneously, and the refinement layers (iterative realign-and-vote,
posterior lattice) sweep all reads of all clusters as one padded stack
with per-cluster fixed-point dropout. The frozen single-cluster originals
live in :mod:`repro.consensus.reference` (``Reference*Reconstructor``)
and are pinned against the batched engines by the differential tests —
byte-identical for the integer-domain scans and the iterative refinement,
and to float round-off for the posterior's soft confidences.
"""

from repro.consensus.base import Reconstructor, majority_vote, pack_index_clusters
from repro.consensus.bma import OneWayReconstructor
from repro.consensus.iterative import IterativeReconstructor
from repro.consensus.median import OptimalMedianReconstructor
from repro.consensus.posterior import PosteriorReconstructor
from repro.consensus.reference import (
    ReferenceIterativeReconstructor,
    ReferenceOneWayReconstructor,
    ReferencePosteriorReconstructor,
    ReferenceTwoWayReconstructor,
)
from repro.consensus.two_way import TwoWayReconstructor

__all__ = [
    "Reconstructor",
    "majority_vote",
    "pack_index_clusters",
    "OneWayReconstructor",
    "TwoWayReconstructor",
    "IterativeReconstructor",
    "OptimalMedianReconstructor",
    "PosteriorReconstructor",
    "ReferenceOneWayReconstructor",
    "ReferenceTwoWayReconstructor",
    "ReferenceIterativeReconstructor",
    "ReferencePosteriorReconstructor",
]
