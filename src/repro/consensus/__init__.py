"""Trace reconstruction (consensus finding) algorithms.

Given noisy copies of an unknown strand (a read cluster), reconstruct the
most likely original of a known length L. The paper's key observation —
reliability skew — is a property of this step: positional error probability
rises with the number of indel mis-corrections accumulated while scanning,
so one-way reconstruction degrades towards the far end and two-way
reconstruction peaks in the middle.

Algorithms provided:

* :class:`repro.consensus.bma.OneWayReconstructor` — Bitwise-Majority-
  Alignment-style left-to-right scan (Fig 3's shape).
* :class:`repro.consensus.two_way.TwoWayReconstructor` — the paper's
  pipeline consensus: forward + backward scans, best half of each (Fig 4).
* :class:`repro.consensus.iterative.IterativeReconstructor` — a stronger
  realign-and-vote refinement loop standing in for Sabary et al. (Fig 5).
* :class:`repro.consensus.median.OptimalMedianReconstructor` — exact
  constrained edit-distance median via branch and bound, with the paper's
  adversarial tie-breaking (Fig 6).

The production pointer scans are *batched*: every reconstructor accepts a
whole unit's clusters through ``reconstruct_many`` /
``reconstruct_many_indices`` and the one-way/two-way engines advance all
clusters simultaneously. The frozen single-cluster originals live in
:mod:`repro.consensus.reference` (``Reference*Reconstructor``) and are
pinned byte-identical to the batched engine by the differential tests.
"""

from repro.consensus.base import Reconstructor, majority_vote
from repro.consensus.bma import OneWayReconstructor
from repro.consensus.iterative import IterativeReconstructor
from repro.consensus.median import OptimalMedianReconstructor
from repro.consensus.posterior import PosteriorReconstructor
from repro.consensus.reference import (
    ReferenceIterativeReconstructor,
    ReferenceOneWayReconstructor,
    ReferenceTwoWayReconstructor,
)
from repro.consensus.two_way import TwoWayReconstructor

__all__ = [
    "Reconstructor",
    "majority_vote",
    "OneWayReconstructor",
    "TwoWayReconstructor",
    "IterativeReconstructor",
    "OptimalMedianReconstructor",
    "PosteriorReconstructor",
    "ReferenceOneWayReconstructor",
    "ReferenceTwoWayReconstructor",
    "ReferenceIterativeReconstructor",
]
