"""Exact constrained edit-distance median via branch and bound.

The paper's Section 3.2 asks whether the reliability skew is an artifact of
practical algorithms or fundamental to trace reconstruction. It answers by
computing, for short binary strings, the *optimal* reconstruction — a
string of the original length L minimizing the sum of edit distances to all
reads — and selecting among ties *adversarially* (preferring candidates
more accurate in the middle than at the ends, i.e. trying to create the
opposite skew). The skew survives even then (its Figure 6).

Finding the (unconstrained) edit-distance median is NP-complete, and so is
this constrained variant, so exhaustive search is unavoidable. The search
here is a depth-first walk of the length-L prefix tree with:

* incremental edit-distance DP rows per read (O(sum read lengths) per node);
* a lower bound per read of ``min_j (row[j] + |remaining_prefix -
  remaining_read|)``, pruning subtrees that cannot beat the best sum;
* an initial bound seeded by the two-way heuristic so pruning bites early;
* collection of *all* optimal strings (up to a cap) for tie analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.two_way import TwoWayReconstructor


@dataclass
class MedianResult:
    """Outcome of an exact median search.

    Attributes:
        cost: minimal sum of edit distances across all length-L strings.
        candidates: all optimal strings found (index arrays), possibly
            truncated to the collection cap.
        truncated: True when more optima existed than the cap allowed.
    """

    cost: int
    candidates: List[np.ndarray]
    truncated: bool


class OptimalMedianReconstructor(Reconstructor):
    """Brute-force optimal reconstruction for short strings.

    Args:
        n_alphabet: alphabet size (2 for the paper's Figure 6, 4 for DNA).
        max_candidates: cap on how many tied optima to collect.
    """

    def __init__(self, n_alphabet: int = 2, max_candidates: int = 4096) -> None:
        if n_alphabet < 2:
            raise ValueError(f"n_alphabet must be >= 2, got {n_alphabet}")
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self.n_alphabet = n_alphabet
        self.max_candidates = max_candidates

    # -- public API -----------------------------------------------------------

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        result = self.search(reads, length)
        return result.candidates[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        """Batch variant: the heuristic bound seeds for every cluster come
        from one batched two-way scan; the branch-and-bound searches
        themselves remain per-cluster (they share no state)."""
        seeds = TwoWayReconstructor(
            n_alphabet=self.n_alphabet
        ).reconstruct_many_indices(clusters, length)
        return [
            self.search(reads, length, seed=seed).candidates[0]
            for reads, seed in zip(clusters, seeds)
        ]

    def search(
        self,
        reads: Sequence[np.ndarray],
        length: int,
        seed: Optional[np.ndarray] = None,
    ) -> MedianResult:
        """Run the exact search and return cost plus all tied optima.

        Args:
            reads: the cluster's reads as index arrays.
            length: the constrained output length L.
            seed: optional heuristic solution used only to initialize the
                pruning bound (a precomputed two-way estimate); computed
                internally when omitted.
        """
        reads = [np.asarray(r, dtype=np.int64) for r in reads]
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if not reads:
            return MedianResult(
                cost=0,
                candidates=[np.zeros(length, dtype=np.int64)],
                truncated=False,
            )
        search = _BranchAndBound(
            reads, length, self.n_alphabet, self.max_candidates, seed=seed
        )
        return search.run()

    def reconstruct_adversarial(
        self,
        reads: Sequence[np.ndarray],
        length: int,
        original: np.ndarray,
    ) -> np.ndarray:
        """Pick the tied optimum that *opposes* the expected skew.

        Among all optimal strings, select the one most accurate towards the
        middle and least accurate towards the ends relative to ``original``
        — the paper's adversarial selection for its Figure 6. If the skew
        still shows up under this selection, it cannot be an artifact of
        tie-breaking.
        """
        original = np.asarray(original, dtype=np.int64)
        if original.shape != (length,):
            raise ValueError(f"original must have length {length}")
        result = self.search(reads, length)
        center = (length - 1) / 2.0
        # Weight grows towards the middle; maximizing the weighted match
        # count prefers candidates correct in the middle / wrong at the ends.
        weights = (length / 2.0) - np.abs(np.arange(length) - center)
        best_candidate = None
        best_score = -np.inf
        for candidate in result.candidates:
            score = float(np.sum((candidate == original) * weights))
            if score > best_score:
                best_score = score
                best_candidate = candidate
        return best_candidate


class _BranchAndBound:
    """DFS over the length-L prefix tree with per-read DP rows."""

    def __init__(
        self,
        reads: List[np.ndarray],
        length: int,
        n_alphabet: int,
        max_candidates: int,
        seed: Optional[np.ndarray] = None,
    ) -> None:
        self.reads = reads
        self.length = length
        self.n_alphabet = n_alphabet
        self.max_candidates = max_candidates
        self.read_lengths = [len(r) for r in reads]
        self.best_cost: Optional[int] = None
        self.candidates: List[np.ndarray] = []
        self.truncated = False
        self._prefix = np.zeros(length, dtype=np.int64)
        # Seed the bound with a good heuristic solution so pruning starts hot.
        if seed is None:
            seed = TwoWayReconstructor(n_alphabet=n_alphabet).reconstruct_indices(
                reads, length
            )
        self.best_cost = int(sum(self._edit_distance(seed, r) for r in reads))

    def run(self) -> MedianResult:
        initial_rows = [
            np.arange(n + 1, dtype=np.int64) for n in self.read_lengths
        ]
        self._descend(0, initial_rows)
        return MedianResult(
            cost=int(self.best_cost),
            candidates=self.candidates,
            truncated=self.truncated,
        )

    def _descend(self, depth: int, rows: List[np.ndarray]) -> None:
        if depth == self.length:
            cost = int(sum(row[-1] for row in rows))
            self._record(cost, self._prefix.copy())
            return
        remaining = self.length - depth - 1
        children = []
        for symbol in range(self.n_alphabet):
            new_rows = [
                self._advance_row(rows[i], self.reads[i], symbol)
                for i in range(len(self.reads))
            ]
            bound = self._lower_bound(new_rows, remaining)
            children.append((bound, symbol, new_rows))
        children.sort(key=lambda item: (item[0], item[1]))
        for bound, symbol, new_rows in children:
            if self.best_cost is not None and bound > self.best_cost:
                continue
            if (
                self.best_cost is not None
                and bound == self.best_cost
                and len(self.candidates) >= self.max_candidates
            ):
                self.truncated = True
                continue
            self._prefix[depth] = symbol
            self._descend(depth + 1, new_rows)

    def _record(self, cost: int, candidate: np.ndarray) -> None:
        if self.best_cost is None or cost < self.best_cost:
            self.best_cost = cost
            self.candidates = [candidate]
            self.truncated = False
        elif cost == self.best_cost:
            if len(self.candidates) < self.max_candidates:
                if not any(np.array_equal(candidate, c) for c in self.candidates):
                    self.candidates.append(candidate)
            else:
                self.truncated = True

    @staticmethod
    def _advance_row(row: np.ndarray, read: np.ndarray, symbol: int) -> np.ndarray:
        """Extend the prefix by ``symbol``: one edit-distance DP row step."""
        m = len(read)
        offsets = np.arange(m + 1, dtype=np.int64)
        candidates = np.empty(m + 1, dtype=np.int64)
        candidates[0] = row[0] + 1
        substitution = (read != symbol).astype(np.int64)
        candidates[1:] = np.minimum(row[:-1] + substitution, row[1:] + 1)
        return np.minimum.accumulate(candidates - offsets) + offsets

    def _lower_bound(self, rows: List[np.ndarray], remaining: int) -> int:
        """Sum over reads of the cheapest possible completion cost.

        From DP state j the remaining prefix must still consume the last
        ``len(read) - j`` read characters using ``remaining`` appended
        symbols, which costs at least their length difference.
        """
        total = 0
        for row, n in zip(rows, self.read_lengths):
            tails = np.abs((n - np.arange(n + 1)) - remaining)
            total += int(np.min(row + tails))
        return total

    def _edit_distance(self, a: np.ndarray, b: np.ndarray) -> int:
        row = np.arange(len(b) + 1, dtype=np.int64)
        for symbol in a:
            row = self._advance_row(row, b, int(symbol))
        return int(row[-1])
