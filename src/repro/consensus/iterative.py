"""Iterative realign-and-vote reconstruction.

A stronger consensus algorithm standing in for the iterative reconstructor
of Sabary et al. that the paper uses for its Figure 5 ("Reconstruction
Algorithms for DNA Storage Systems"): starting from the two-way estimate,
repeatedly

1. globally align every read against the current estimate (unit-cost
   Needleman-Wunsch, i.e. edit-distance alignment), and
2. re-vote every position of the estimate from the aligned read characters,

until a fixed point or an iteration cap. Unlike the one-way scan, votes at
position i come from characters aligned to i from *both* directions, so the
algorithm is considerably more accurate — yet, as the paper's Figure 5
demonstrates (and the Fig-5 benchmark here reproduces), the positional
reliability skew persists: alignment ambiguity still concentrates in the
middle of the strand whenever indels are present.

The output length is held at L throughout, matching the constrained-median
formulation (the paper notes the original Sabary et al. code does not
always return the desired length; ours does by construction).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor
from repro.consensus.two_way import TwoWayReconstructor


class IterativeReconstructor(Reconstructor):
    """Realign-and-vote refinement around an initial two-way estimate.

    Args:
        max_iterations: refinement cap (fixed points usually occur in 2-3).
        n_alphabet: alphabet size.
    """

    def __init__(self, max_iterations: int = 4, n_alphabet: int = 4) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = TwoWayReconstructor(n_alphabet=n_alphabet)

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        estimate = self._seed.reconstruct_indices(reads, length)
        return self._refine(reads, length, estimate)

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        """Batch variant: all two-way seeds in one batched scan, then the
        per-cluster alignment refinement (the refinement is read-local, so
        only the seed benefits from cross-cluster batching)."""
        normalized = [
            [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
            for reads in clusters
        ]
        seeds = self._seed.reconstruct_many_indices(normalized, length)
        return [
            self._refine(reads, length, seed)
            for reads, seed in zip(normalized, seeds)
        ]

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        """Columnar variant: the two-way seeds come straight off the
        batch's flat buffer; the read-local refinement then works on
        zero-copy per-read views."""
        seeds = self._seed.reconstruct_batch(batch, length)
        return np.stack([
            self._refine(
                [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0],
                length, seed,
            )
            for reads, seed in zip(batch.clusters_as_indices(), seeds)
        ]) if batch.n_clusters else np.zeros((0, length), dtype=np.int64)

    def _refine(
        self, reads: List[np.ndarray], length: int, estimate: np.ndarray
    ) -> np.ndarray:
        if not reads or length == 0:
            return estimate
        for _ in range(self.max_iterations):
            votes = np.zeros((length, self.n_alphabet), dtype=np.int64)
            for read in reads:
                self._vote_alignment(estimate, read, votes)
            refined = estimate.copy()
            voted = votes.sum(axis=1) > 0
            refined[voted] = np.argmax(votes[voted], axis=1)
            if np.array_equal(refined, estimate):
                break
            estimate = refined
        # The pointer-scan seed can suffer rare desynchronization cascades
        # that positional re-voting cannot undo (it refines symbols, not
        # coordinates). A plain per-position majority is immune to those
        # cascades whenever indels are absent or rare, so evaluate both
        # candidates under the true objective — the sum of edit distances —
        # and return the better one.
        majority = self._positional_majority(reads, length)
        if self._total_distance(majority, reads) < self._total_distance(
            estimate, reads
        ):
            return majority
        return estimate

    def _positional_majority(
        self, reads: List[np.ndarray], length: int
    ) -> np.ndarray:
        """Column-wise plurality vote, ignoring alignment entirely."""
        votes = np.zeros((length, self.n_alphabet), dtype=np.int64)
        for read in reads:
            upto = min(length, len(read))
            votes[np.arange(upto), read[:upto]] += 1
        estimate = np.zeros(length, dtype=np.int64)
        voted = votes.sum(axis=1) > 0
        estimate[voted] = np.argmax(votes[voted], axis=1)
        return estimate

    def _total_distance(
        self, candidate: np.ndarray, reads: List[np.ndarray]
    ) -> int:
        return sum(
            int(self._edit_matrix(candidate, read)[-1, -1]) for read in reads
        )

    def _vote_alignment(
        self, estimate: np.ndarray, read: np.ndarray, votes: np.ndarray
    ) -> None:
        """Align ``read`` to ``estimate`` and add its votes per position.

        Positions of the estimate that the alignment maps to a read
        character (match or substitution) receive that character's vote;
        positions the alignment skips (a deletion in the read) cast no vote.
        """
        matrix = self._edit_matrix(estimate, read)
        i, j = len(estimate), len(read)
        while i > 0 and j > 0:
            sub_cost = 0 if estimate[i - 1] == read[j - 1] else 1
            if matrix[i, j] == matrix[i - 1, j - 1] + sub_cost:
                votes[i - 1, read[j - 1]] += 1
                i -= 1
                j -= 1
            elif matrix[i, j] == matrix[i - 1, j] + 1:
                i -= 1  # deletion in read relative to estimate: no vote
            else:
                j -= 1  # insertion in read: skip the extra character

    @staticmethod
    def _edit_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full unit-cost DP matrix between sequences ``a`` and ``b``.

        Rows are vectorized with the min-accumulate trick: with unit gap
        costs, ``row[j] = min_k<=j (tmp[k] + (j - k))`` where ``tmp`` holds
        the vertical/diagonal candidates, computable in O(len(b)) per row.
        """
        n, m = len(a), len(b)
        matrix = np.zeros((n + 1, m + 1), dtype=np.int32)
        matrix[0] = np.arange(m + 1)
        matrix[:, 0] = np.arange(n + 1)
        offsets = np.arange(m + 1)
        for i in range(1, n + 1):
            previous = matrix[i - 1]
            substitution = (b != a[i - 1]).astype(np.int32)
            candidates = np.empty(m + 1, dtype=np.int32)
            candidates[0] = previous[0] + 1
            candidates[1:] = np.minimum(
                previous[:-1] + substitution, previous[1:] + 1
            )
            matrix[i] = np.minimum.accumulate(candidates - offsets) + offsets
        return matrix
