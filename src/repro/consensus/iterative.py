"""Iterative realign-and-vote reconstruction, batched across clusters.

A stronger consensus algorithm standing in for the iterative reconstructor
of Sabary et al. that the paper uses for its Figure 5 ("Reconstruction
Algorithms for DNA Storage Systems"): starting from the two-way estimate,
repeatedly

1. globally align every read against the current estimate (unit-cost
   Needleman-Wunsch, i.e. edit-distance alignment), and
2. re-vote every position of the estimate from the aligned read characters,

until a fixed point or an iteration cap. Unlike the one-way scan, votes at
position i come from characters aligned to i from *both* directions, so the
algorithm is considerably more accurate — yet, as the paper's Figure 5
demonstrates (and the Fig-5 benchmark here reproduces), the positional
reliability skew persists: alignment ambiguity still concentrates in the
middle of the strand whenever indels are present.

Like the pointer scans in :mod:`repro.consensus.bma`, the refinement here
advances *every read of every cluster* simultaneously: the unit-cost edit
DP runs as one vectorized row-sweep over the whole padded read stack (one
``(n_reads, max_len + 1)`` row per DP step instead of a Python-level
matrix per read), tracebacks walk all alignments in lockstep, and both the
per-position voting and the closing positional-majority/edit-distance
arbitration are segmented reductions keyed by cluster id. Clusters that
reach their alignment fixed point drop out of the active set between
iterations. The frozen per-cluster original lives in
:mod:`repro.consensus.reference` and is pinned byte-identical by
``tests/consensus/test_vectorized_vs_reference.py``.

The output length is held at L throughout, matching the constrained-median
formulation (the paper notes the original Sabary et al. code does not
always return the desired length; ours does by construction).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor, pack_index_clusters
from repro.consensus.two_way import TwoWayReconstructor
from repro.observability.trace import get_tracer


class IterativeReconstructor(Reconstructor):
    """Realign-and-vote refinement around an initial two-way estimate.

    Args:
        max_iterations: refinement cap (fixed points usually occur in 2-3).
        n_alphabet: alphabet size.
    """

    #: Ceiling on the bytes of edit-DP state materialized at once. The
    #: traceback needs the full ``(reads, L + 1, max_len + 1)`` matrix
    #: stack, so read stacks that would exceed this are swept in chunks
    #: (votes are additive, so chunking cannot change the result).
    dp_budget_bytes = 96 * 2 ** 20

    def __init__(self, max_iterations: int = 4, n_alphabet: int = 4) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations
        self.n_alphabet = n_alphabet
        self._seed = TwoWayReconstructor(n_alphabet=n_alphabet)

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        return self.reconstruct_many_indices([reads], length)[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        """Batch variant: the two-way seeds come from one batched scan and
        the realign-and-vote refinement sweeps all clusters' reads as one
        padded stack (see :meth:`_refine_batched`)."""
        seeds = self._seed.reconstruct_many_indices(clusters, length)
        if not seeds:
            return []
        estimates = np.stack([np.asarray(s, dtype=np.int64) for s in seeds])
        padded, lengths, cluster_of = pack_index_clusters(clusters)
        return list(self._refine_batched(padded, lengths, cluster_of,
                                         estimates))

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        """Columnar variant: seeds and refinement both run straight off
        the batch's flat buffer — no per-read Python objects anywhere."""
        if batch.n_clusters == 0:
            return np.zeros((0, length), dtype=np.int64)
        seeds = np.asarray(self._seed.reconstruct_batch(batch, length),
                           dtype=np.int64)
        if batch.n_reads == 0 or length == 0:
            return seeds
        padded, lengths = batch.padded_matrix()
        return self._refine_batched(padded, lengths, batch.cluster_ids, seeds)

    # -- the batched refinement engine ----------------------------------------

    def _refine_batched(
        self,
        padded: np.ndarray,
        lengths: np.ndarray,
        cluster_of: np.ndarray,
        estimates: np.ndarray,
    ) -> np.ndarray:
        """Refine every cluster's estimate against its reads, batched.

        ``padded`` is the ``(n_reads, width)`` sentinel read stack (``-1``
        past each read's end), rows tagged by the non-decreasing
        ``cluster_of``; ``estimates`` is the ``(n_clusters, length)`` seed
        matrix. Returns a new ``(n_clusters, length)`` matrix; clusters
        without (non-empty) reads keep their seed untouched, matching the
        reference's early return.
        """
        n_clusters, length = estimates.shape
        estimates = estimates.copy()
        keep = lengths > 0
        if not keep.all():
            padded = padded[keep]
            lengths = lengths[keep]
            cluster_of = cluster_of[keep]
        if length == 0 or lengths.size == 0:
            return estimates
        width = int(lengths.max())
        padded = np.ascontiguousarray(padded[:, :width])

        live = np.unique(cluster_of)
        active = live
        # Iteration counters accumulate locally (one add per sweep, never
        # per cluster) and emit once after the loop.
        iterations = 0
        active_cluster_sweeps = 0
        for _ in range(self.max_iterations):
            iterations += 1
            active_cluster_sweeps += int(active.size)
            if active.size < live.size:
                sub = np.isin(cluster_of, active)
                reads_a, lengths_a = padded[sub], lengths[sub]
                clusters_a = cluster_of[sub]
            else:
                reads_a, lengths_a, clusters_a = padded, lengths, cluster_of
            local = np.searchsorted(active, clusters_a)
            current = estimates[active]
            votes = self._alignment_votes(reads_a, lengths_a, local, current)
            voted = votes.sum(axis=2) > 0
            refined = np.where(voted, votes.argmax(axis=2), current)
            changed = (refined != current).any(axis=1)
            estimates[active] = refined
            active = active[changed]
            if active.size == 0:
                break
        tracer = get_tracer()
        if tracer.is_recording:
            metrics = tracer.metrics
            metrics.counter("consensus.refined_clusters").add(int(live.size))
            metrics.counter("consensus.iterations").add(iterations)
            metrics.counter("consensus.active_cluster_sweeps").add(
                active_cluster_sweeps
            )

        # The pointer-scan seed can suffer rare desynchronization cascades
        # that positional re-voting cannot undo (it refines symbols, not
        # coordinates). A plain per-position majority is immune to those
        # cascades whenever indels are absent or rare, so evaluate both
        # candidates under the true objective — the sum of edit distances —
        # and return the better one, per cluster.
        local_live = np.searchsorted(live, cluster_of)
        majority = self._positional_majority_batched(
            padded, lengths, local_live, live.size, length
        )
        distance_estimate = self._edit_distances(
            padded, lengths, estimates[cluster_of]
        )
        distance_majority = self._edit_distances(
            padded, lengths, majority[local_live]
        )
        total_estimate = np.bincount(
            local_live, weights=distance_estimate, minlength=live.size
        )
        total_majority = np.bincount(
            local_live, weights=distance_majority, minlength=live.size
        )
        better = total_majority < total_estimate
        if tracer.is_recording:
            tracer.metrics.counter("consensus.majority_arbitrations").add(
                int(better.sum())
            )
        estimates[live[better]] = majority[better]
        return estimates

    def _alignment_votes(
        self,
        reads: np.ndarray,
        lengths: np.ndarray,
        local_cluster: np.ndarray,
        estimates: np.ndarray,
    ) -> np.ndarray:
        """Aligned per-position ballots: ``votes[c, i, s]`` counts reads of
        (local) cluster ``c`` whose alignment put symbol ``s`` at position
        ``i``. DP and traceback run over the whole stack; the read axis is
        chunked to honor :attr:`dp_budget_bytes`."""
        n_clusters, length = estimates.shape
        n_reads, width = reads.shape
        alphabet = self.n_alphabet
        est_rows = estimates[local_cluster]
        votes_flat = np.zeros(n_clusters * length * alphabet, dtype=np.int64)
        chunk = max(1, self.dp_budget_bytes // (4 * (length + 1) * (width + 1)))
        for start in range(0, n_reads, chunk):
            stop = min(start + chunk, n_reads)
            matrices = self._edit_matrix_stack(
                est_rows[start:stop], reads[start:stop]
            )
            keys = self._traceback_vote_keys(
                matrices, est_rows[start:stop], reads[start:stop],
                lengths[start:stop], local_cluster[start:stop],
                length, alphabet,
            )
            if keys.size:
                votes_flat += np.bincount(keys, minlength=votes_flat.size)
        return votes_flat.reshape(n_clusters, length, alphabet)

    @staticmethod
    def _edit_matrix_stack(
        estimates: np.ndarray, reads: np.ndarray
    ) -> np.ndarray:
        """Full unit-cost DP matrices for every (estimate, read) pair.

        The row-vectorized min-accumulate trick of :meth:`_edit_matrix`,
        swept over the whole ``(n_reads, width)`` stack at once: each DP
        step updates one ``(n_reads, width + 1)`` row. Columns past a
        read's end hold sentinel ``-1`` (which matches nothing), so those
        entries are garbage-but-harmless: every entry at column
        ``j <= len(read)`` depends only on real read characters and equals
        the reference's per-read matrix.
        """
        n_reads, width = reads.shape
        length = estimates.shape[1]
        offsets = np.arange(width + 1, dtype=np.int32)
        matrices = np.empty((n_reads, length + 1, width + 1), dtype=np.int32)
        matrices[:, 0, :] = offsets
        matrices[:, :, 0] = np.arange(length + 1, dtype=np.int32)
        candidates = np.empty((n_reads, width + 1), dtype=np.int32)
        for i in range(1, length + 1):
            previous = matrices[:, i - 1, :]
            substitution = (reads != estimates[:, i - 1, None]).astype(np.int32)
            candidates[:, 0] = previous[:, 0] + 1
            np.minimum(
                previous[:, :-1] + substitution, previous[:, 1:] + 1,
                out=candidates[:, 1:],
            )
            matrices[:, i, :] = (
                np.minimum.accumulate(candidates - offsets, axis=1) + offsets
            )
        return matrices

    @staticmethod
    def _traceback_vote_keys(
        matrices: np.ndarray,
        estimates: np.ndarray,
        reads: np.ndarray,
        lengths: np.ndarray,
        local_cluster: np.ndarray,
        length: int,
        alphabet: int,
    ) -> np.ndarray:
        """Walk every alignment back in lockstep, emitting vote keys.

        Each surviving read holds a DP cursor ``(i, j)``; one step settles
        the move for all of them (diagonal = vote, up = deletion, left =
        insertion — the same tie order as the reference's ``if/elif``).
        Votes are flat ``(cluster, position, symbol)`` keys, counted by one
        ``bincount`` in the caller; counts are order-free, so the lockstep
        walk is exactly the reference's sequential walk.
        """
        rows = np.arange(matrices.shape[0])
        i = np.full(rows.size, length, dtype=np.int64)
        j = lengths.astype(np.int64).copy()
        alive = (i > 0) & (j > 0)
        rows, i, j = rows[alive], i[alive], j[alive]
        parts: List[np.ndarray] = []
        while rows.size:
            estimate_char = estimates[rows, i - 1]
            read_char = reads[rows, j - 1]
            substitution = (estimate_char != read_char).astype(np.int32)
            current = matrices[rows, i, j]
            diagonal = current == matrices[rows, i - 1, j - 1] + substitution
            up = ~diagonal & (current == matrices[rows, i - 1, j] + 1)
            if diagonal.any():
                parts.append(
                    (local_cluster[rows[diagonal]] * length
                     + (i[diagonal] - 1)) * alphabet + read_char[diagonal]
                )
            i -= diagonal | up
            j -= diagonal | ~(diagonal | up)
            alive = (i > 0) & (j > 0)
            rows, i, j = rows[alive], i[alive], j[alive]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def _positional_majority_batched(
        self,
        reads: np.ndarray,
        lengths: np.ndarray,
        local_cluster: np.ndarray,
        n_clusters: int,
        length: int,
    ) -> np.ndarray:
        """Column-wise plurality per cluster, ignoring alignment entirely."""
        effective = min(reads.shape[1], length)
        columns = np.arange(effective, dtype=np.int64)
        mask = columns[None, :] < np.minimum(lengths, length)[:, None]
        rows, positions = np.nonzero(mask)
        symbols = reads[rows, positions]
        keys = (local_cluster[rows] * length + positions) * self.n_alphabet \
            + symbols
        counts = np.bincount(
            keys, minlength=n_clusters * length * self.n_alphabet
        ).reshape(n_clusters, length, self.n_alphabet)
        voted = counts.sum(axis=2) > 0
        return np.where(voted, counts.argmax(axis=2), 0).astype(np.int64)

    @staticmethod
    def _edit_distances(
        reads: np.ndarray, lengths: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Edit distance of every read to its candidate row, batched.

        Same row-sweep as :meth:`_edit_matrix_stack` but with a rolling
        row (no traceback needed), so memory stays ``(n_reads, width+1)``.
        """
        n_reads, width = reads.shape
        length = candidates.shape[1]
        offsets = np.arange(width + 1, dtype=np.int32)
        row = np.tile(offsets, (n_reads, 1))
        candidates_row = np.empty_like(row)
        for i in range(1, length + 1):
            substitution = (reads != candidates[:, i - 1, None]).astype(np.int32)
            candidates_row[:, 0] = row[:, 0] + 1
            np.minimum(
                row[:, :-1] + substitution, row[:, 1:] + 1,
                out=candidates_row[:, 1:],
            )
            row = np.minimum.accumulate(candidates_row - offsets, axis=1) \
                + offsets
        return row[np.arange(n_reads), lengths]

    @staticmethod
    def _edit_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full unit-cost DP matrix between sequences ``a`` and ``b``.

        The single-pair form of :meth:`_edit_matrix_stack`, kept as the
        readable statement of the row recurrence: with unit gap costs,
        ``row[j] = min_k<=j (tmp[k] + (j - k))`` where ``tmp`` holds the
        vertical/diagonal candidates, computable in O(len(b)) per row.
        """
        n, m = len(a), len(b)
        matrix = np.zeros((n + 1, m + 1), dtype=np.int32)
        matrix[0] = np.arange(m + 1)
        matrix[:, 0] = np.arange(n + 1)
        offsets = np.arange(m + 1)
        for i in range(1, n + 1):
            previous = matrix[i - 1]
            substitution = (b != a[i - 1]).astype(np.int32)
            candidates = np.empty(m + 1, dtype=np.int32)
            candidates[0] = previous[0] + 1
            candidates[1:] = np.minimum(
                previous[:-1] + substitution, previous[1:] + 1
            )
            matrix[i] = np.minimum.accumulate(candidates - offsets) + offsets
        return matrix
