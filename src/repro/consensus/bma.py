"""One-way Bitwise-Majority-Alignment-style reconstruction.

This is the left-to-right scan the paper walks through in its Figure 2:
maintain one pointer per read; at every output position take a plurality
vote over the reads' current characters; for each read that disagrees with
the consensus, *guess* which error it suffered (substitution, insertion, or
deletion) by comparing its upcoming characters against an estimated
lookahead of the consensus, and adjust its pointer accordingly.

Wrong guesses propagate — which is exactly the mechanism behind the
reliability skew of the paper's Figure 3: positional error grows with the
distance scanned, so the far end of a strand is reconstructed much less
reliably than the near end.

The scan is vectorized across reads: all reads live in one padded matrix
(sentinel -1 past each read's end) and every per-position step — voting,
lookahead estimation, error classification — is a handful of numpy
operations over the read axis. The storage pipeline runs this scan for
every cluster, so it is the hottest loop in the repository.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor


class OneWayReconstructor(Reconstructor):
    """Left-to-right pointer-based majority reconstruction.

    Args:
        lookahead: how many upcoming consensus characters to estimate when
            classifying a disagreeing read's error type. The paper's worked
            example uses 2; 3 is slightly more robust and is the default.
        n_alphabet: alphabet size (4 for DNA, 2 for the binary analyses).
        fill_symbol: symbol emitted when every read is exhausted.
    """

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4,
                 fill_symbol: int = 0) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if not (0 <= fill_symbol < n_alphabet):
            raise ValueError("fill_symbol outside alphabet")
        self.lookahead = lookahead
        self.n_alphabet = n_alphabet
        self.fill_symbol = fill_symbol

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
        output = np.full(length, self.fill_symbol, dtype=np.int64)
        if not reads or length == 0:
            return output

        window = self.lookahead
        n_reads = len(reads)
        lengths = np.array([len(r) for r in reads], dtype=np.int64)
        # One padded matrix: sentinel -1 marks positions past a read's end.
        # The extra window+2 columns let every lookahead gather stay in
        # bounds without per-step clipping.
        padded = np.full((n_reads, int(lengths.max()) + window + 2), -1,
                         dtype=np.int64)
        for i, read in enumerate(reads):
            padded[i, : len(read)] = read
        pointers = np.zeros(n_reads, dtype=np.int64)
        rows = np.arange(n_reads)
        offsets = np.arange(1, window + 1)

        for position in range(length):
            active = pointers < lengths
            if not np.any(active):
                break  # every read exhausted; the rest stays at fill_symbol
            current = padded[rows, pointers]
            votes = np.bincount(current[active], minlength=self.n_alphabet)
            consensus = int(np.argmax(votes))
            output[position] = consensus

            agree = active & (current == consensus)
            lookahead = self._estimate_lookahead(padded, pointers, agree, offsets)
            disagree = active & ~agree
            pointers[agree] += 1
            if np.any(disagree):
                pointers[disagree] += self._classify_errors(
                    padded, pointers[disagree], rows[disagree], consensus, lookahead
                )
        return output

    def _estimate_lookahead(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        agree: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Majority-vote the next ``window`` characters of the agreeing reads.

        Reads whose current character matches the consensus are presumed
        synchronized, so their upcoming characters are the best available
        estimate of the upcoming consensus. Positions with no votes carry
        the sentinel -1 (they match nothing during scoring).
        """
        window = np.full(len(offsets), -1, dtype=np.int64)
        if not np.any(agree):
            return window
        # ahead[i, o] = agreeing read i's character at pointer + 1 + o.
        ahead = padded[np.flatnonzero(agree)[:, None],
                       pointers[agree][:, None] + offsets[None, :]]
        for o in range(len(offsets)):
            column = ahead[:, o]
            valid = column >= 0
            if np.any(valid):
                counts = np.bincount(column[valid], minlength=self.n_alphabet)
                window[o] = int(np.argmax(counts))
        return window

    def _classify_errors(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        read_rows: np.ndarray,
        consensus: int,
        lookahead: np.ndarray,
    ) -> np.ndarray:
        """Pointer advances for the disagreeing reads (vectorized).

        Three hypotheses are scored by how well the read's characters after
        the hypothesized correction line up with the estimated lookahead:

        * substitution — current character wrong; advance by 1;
        * deletion — the read lost the consensus character, so its current
          character belongs to the next position; advance by 0;
        * insertion — current character spurious and the *next* one should
          match the consensus; advance by 2.

        Ties resolve substitution > deletion > insertion (strict
        improvements only), keeping the scan deterministic.
        """
        window = len(lookahead)
        valid_la = lookahead >= 0
        gather = np.arange(window)

        def score(start_offset: int) -> np.ndarray:
            chars = padded[read_rows[:, None],
                           pointers[:, None] + start_offset + gather[None, :]]
            return ((chars == lookahead[None, :]) & valid_la[None, :]).sum(axis=1)

        substitution = score(1)
        deletion = score(0)
        next_char = padded[read_rows, pointers + 1]
        insertion = np.where(next_char == consensus, 1 + score(2), -1)

        advance = np.ones(len(read_rows), dtype=np.int64)
        best = substitution.copy()
        better_deletion = deletion > best
        advance[better_deletion] = 0
        np.maximum(best, deletion, out=best)
        advance[insertion > best] = 2
        return advance
