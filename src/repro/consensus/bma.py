"""One-way Bitwise-Majority-Alignment-style reconstruction, batched.

This is the left-to-right scan the paper walks through in its Figure 2:
maintain one pointer per read; at every output position take a plurality
vote over the reads' current characters; for each read that disagrees with
the consensus, *guess* which error it suffered (substitution, insertion, or
deletion) by comparing its upcoming characters against an estimated
lookahead of the consensus, and adjust its pointer accordingly.

Wrong guesses propagate — which is exactly the mechanism behind the
reliability skew of the paper's Figure 3: positional error grows with the
distance scanned, so the far end of a strand is reconstructed much less
reliably than the near end.

The scan here is batched across *clusters* as well as reads: the reads of
every cluster in a unit live in one padded matrix (sentinel -1 past each
read's end) tagged with a per-read cluster id, and each per-position step —
per-cluster voting, lookahead estimation, error classification — is a
handful of numpy operations over the whole read axis. Per-cluster ballots
are segmented bincounts over ``cluster_id * n_alphabet + symbol``, so one
pass over the positions advances all 120+ clusters of an encoding unit at
once. The storage pipeline runs this scan for every unit, making it the
hottest loop in the repository; the frozen single-cluster original is
retained in :mod:`repro.consensus.reference` and pinned byte-identical by
the differential test suite.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.consensus.base import Reconstructor, pack_index_clusters


class OneWayReconstructor(Reconstructor):
    """Left-to-right pointer-based majority reconstruction.

    Args:
        lookahead: how many upcoming consensus characters to estimate when
            classifying a disagreeing read's error type. The paper's worked
            example uses 2; 3 is slightly more robust and is the default.
        n_alphabet: alphabet size (4 for DNA, 2 for the binary analyses).
        fill_symbol: symbol emitted when every read is exhausted.
    """

    def __init__(self, lookahead: int = 3, n_alphabet: int = 4,
                 fill_symbol: int = 0) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if not (0 <= fill_symbol < n_alphabet):
            raise ValueError("fill_symbol outside alphabet")
        self.lookahead = lookahead
        self.n_alphabet = n_alphabet
        self.fill_symbol = fill_symbol

    def reconstruct(self, reads: Sequence[str], length: int) -> str:
        arrays = [bases_to_indices(read) for read in reads]
        return indices_to_bases(self.reconstruct_indices(arrays, length))

    def reconstruct_indices(
        self, reads: Sequence[np.ndarray], length: int
    ) -> np.ndarray:
        return self.reconstruct_many_indices([reads], length)[0]

    def reconstruct_many_indices(
        self, clusters: Sequence[Sequence[np.ndarray]], length: int
    ) -> List[np.ndarray]:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        n_clusters = len(clusters)
        # One padded matrix over every read of every cluster: sentinel -1
        # marks positions past a read's end. The extra window+2 columns let
        # every lookahead gather stay in bounds without per-step clipping.
        padded, lengths, cluster_of = pack_index_clusters(
            clusters, pad=self.lookahead + 2
        )
        if lengths.size == 0 or length == 0:
            return list(np.full((n_clusters, length), self.fill_symbol,
                                dtype=np.int64))
        return list(self.scan_padded(padded, lengths, cluster_of,
                                     n_clusters, length))

    def reconstruct_batch(self, batch, length: int) -> np.ndarray:
        """Columnar entry point: scan a whole
        :class:`~repro.channel.readbatch.ReadBatch` without touching
        per-read Python objects. The batch's flat buffer becomes the
        padded read matrix via one vectorized gather; empty reads are
        harmless (they are never active)."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if batch.n_reads == 0 or length == 0:
            return np.full((batch.n_clusters, length), self.fill_symbol,
                           dtype=np.int64)
        padded, lengths = batch.padded_matrix(pad=self.lookahead + 2)
        return self.scan_padded(padded, lengths, batch.cluster_ids,
                                batch.n_clusters, length)

    def scan_padded(
        self,
        padded: np.ndarray,
        lengths: np.ndarray,
        cluster_of: np.ndarray,
        n_clusters: int,
        length: int,
    ) -> np.ndarray:
        """The batched scan over an already-padded read matrix.

        ``padded`` must be int64 with sentinel -1 and at least
        ``lookahead + 2`` sentinel columns past the longest read; rows are
        reads, tagged by ``cluster_of``. Returns ``(n_clusters, length)``.
        """
        output = np.full((n_clusters, length), self.fill_symbol,
                         dtype=np.int64)
        window = self.lookahead
        n_reads = padded.shape[0]
        pointers = np.zeros(n_reads, dtype=np.int64)
        rows = np.arange(n_reads)
        offsets = np.arange(1, window + 1)

        for position in range(length):
            active = pointers < lengths
            if not np.any(active):
                break  # every read of every cluster exhausted
            current = padded[rows, pointers]
            votes = self._segmented_counts(
                cluster_of[active], current[active], n_clusters
            )
            consensus = np.argmax(votes, axis=1)
            # Clusters whose reads are all exhausted cast no votes; their
            # output stays at fill_symbol from here on (the single-cluster
            # scan breaks out of its loop at this point).
            voted = votes.sum(axis=1) > 0
            output[voted, position] = consensus[voted]

            consensus_per_read = consensus[cluster_of]
            agree = active & (current == consensus_per_read)
            lookahead = self._estimate_lookahead(
                padded, pointers, agree, cluster_of, n_clusters, offsets
            )
            disagree_rows = np.flatnonzero(active & ~agree)
            pointers[agree] += 1
            if disagree_rows.size:
                pointers[disagree_rows] += self._classify_errors(
                    padded,
                    pointers[disagree_rows],
                    disagree_rows,
                    consensus_per_read[disagree_rows],
                    lookahead[cluster_of[disagree_rows]],
                )
        return output

    def _segmented_counts(
        self, segments: np.ndarray, symbols: np.ndarray, n_segments: int
    ) -> np.ndarray:
        """Per-cluster ballot: counts[c, s] = votes for symbol s in cluster c."""
        flat = np.bincount(
            segments * self.n_alphabet + symbols,
            minlength=n_segments * self.n_alphabet,
        )
        return flat.reshape(n_segments, self.n_alphabet)

    def _estimate_lookahead(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        agree: np.ndarray,
        cluster_of: np.ndarray,
        n_clusters: int,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Majority-vote the next ``window`` characters per cluster.

        Reads whose current character matches their cluster's consensus are
        presumed synchronized, so their upcoming characters are the best
        available estimate of the upcoming consensus. Cluster/offset slots
        with no votes carry the sentinel -1 (they match nothing during
        scoring).
        """
        window = np.full((n_clusters, len(offsets)), -1, dtype=np.int64)
        agree_rows = np.flatnonzero(agree)
        if agree_rows.size == 0:
            return window
        # ahead[i, o] = agreeing read i's character at pointer + 1 + o.
        ahead = padded[agree_rows[:, None],
                       pointers[agree_rows][:, None] + offsets[None, :]]
        clusters = cluster_of[agree_rows]
        for o in range(len(offsets)):
            column = ahead[:, o]
            valid = column >= 0
            if np.any(valid):
                counts = self._segmented_counts(
                    clusters[valid], column[valid], n_clusters
                )
                has_votes = counts.sum(axis=1) > 0
                window[has_votes, o] = np.argmax(counts, axis=1)[has_votes]
        return window

    def _classify_errors(
        self,
        padded: np.ndarray,
        pointers: np.ndarray,
        read_rows: np.ndarray,
        consensus: np.ndarray,
        lookahead: np.ndarray,
    ) -> np.ndarray:
        """Pointer advances for the disagreeing reads (vectorized).

        Three hypotheses are scored by how well the read's characters after
        the hypothesized correction line up with its cluster's estimated
        lookahead:

        * substitution — current character wrong; advance by 1;
        * deletion — the read lost the consensus character, so its current
          character belongs to the next position; advance by 0;
        * insertion — current character spurious and the *next* one should
          match the consensus; advance by 2.

        Ties resolve substitution > deletion > insertion (strict
        improvements only), keeping the scan deterministic. ``consensus``
        and ``lookahead`` are per-read here (each read carries its own
        cluster's values).
        """
        valid_la = lookahead >= 0
        gather = np.arange(lookahead.shape[1])

        def score(start_offset: int) -> np.ndarray:
            chars = padded[read_rows[:, None],
                           pointers[:, None] + start_offset + gather[None, :]]
            return ((chars == lookahead) & valid_la).sum(axis=1)

        substitution = score(1)
        deletion = score(0)
        next_char = padded[read_rows, pointers + 1]
        insertion = np.where(next_char == consensus, 1 + score(2), -1)

        advance = np.ones(len(read_rows), dtype=np.int64)
        best = substitution.copy()
        better_deletion = deletion > best
        advance[better_deletion] = 0
        np.maximum(best, deletion, out=best)
        advance[insertion > best] = 2
        return advance
