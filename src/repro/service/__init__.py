"""The random-access serving plane (the paper's Section 2.1 workload).

Many users each pull one object out of a shared pool; the plane turns
that traffic into amortized pipeline work:

* :class:`~repro.service.plane.StoreService` — a request queue whose
  :meth:`~repro.service.plane.StoreService.tick` coalesces every drained
  ticket into one spanning consensus pass and one batched RS errata
  pass (the :meth:`~repro.core.store.DnaStore.read_many` engine);
* :class:`~repro.service.cache.DecodedUnitCache` — the decoded-unit
  LRU in front of the pipeline, invalidated by epoch on re-encode, so
  repeat reads never touch consensus or RS at all.

Quick start::

    service = StoreService(store, cache_capacity=256, batch_window=16)
    service.put("fileA", reads_a, bits_a.size)
    service.put("fileB", pool_b, bits_b.size, pool=True)
    service.submit("fileA"); service.submit("fileB")
    for result in service.tick():       # ONE coalesced decode
        assert result.clean

``ReadRequest``/``ReadResult`` (re-exported here) are the request-shaped
read surface on :class:`~repro.core.store.DnaStore` itself.
"""

from repro.core.store import ReadRequest, ReadResult
from repro.service.cache import DecodedUnitCache
from repro.service.plane import StoreService

__all__ = [
    "DecodedUnitCache",
    "ReadRequest",
    "ReadResult",
    "StoreService",
]
