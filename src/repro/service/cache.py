"""The decoded-unit LRU cache fronting the serving plane.

Entries are corrected unit stripes — the ``(stripe, DecodeReport)``
pairs ``correct_many`` emits, *before* ranking reassembly — keyed by
``(object_id, unit_index, epoch)``. Caching below the ranking step
keeps entries valid for any per-request ranking; caching per unit keeps
the cache granular under LRU pressure (a huge object evicts many small
entries, not one giant one).

The epoch is the invalidation handle: :meth:`~repro.service.plane.
StoreService.put` bumps an object's epoch when its reads are replaced
(a store re-encode), so stale entries become unreachable immediately
and age out of the LRU naturally — :meth:`DecodedUnitCache.invalidate`
drops them eagerly as well.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class DecodedUnitCache:
    """A capacity-bounded LRU of corrected unit stripes.

    ``capacity`` counts *unit* entries, not objects; ``capacity=0``
    disables caching entirely (every :meth:`get` misses, :meth:`put`
    stores nothing) — the throughput benchmark runs the plane this way
    so it measures coalescing, not cache hits.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, object_id, unit_index: int, epoch: int) -> Optional[tuple]:
        """The cached ``(stripe, DecodeReport)``, or ``None`` on miss."""
        key = (object_id, unit_index, epoch)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, object_id, unit_index: int, epoch: int,
            entry: tuple) -> None:
        """Store one corrected unit, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        key = (object_id, unit_index, epoch)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """Always-on cache statistics as a plain dict.

        Lifetime ``hits``/``misses``/``evictions`` totals, the current
        ``size``/``capacity``, and the derived ``hit_rate`` (0.0 before
        any lookup). No tracer required — these counters are maintained
        on every :meth:`get`/:meth:`put` regardless of observability
        state, and :meth:`~repro.service.plane.StoreService.health`
        folds them into its snapshot.
        """
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def invalidate(self, object_id) -> int:
        """Eagerly drop every entry of ``object_id`` (any epoch).

        The epoch bump already makes stale entries unreachable; eager
        removal frees their capacity immediately. Returns the number of
        entries dropped.
        """
        stale = [key for key in self._entries if key[0] == object_id]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
