"""The request-queue serving plane: coalesce, decode once, answer many.

:class:`StoreService` models the paper's random-access workload (many
users each pulling one object out of a shared pool) as a queue in front
of one :class:`~repro.core.store.DnaStore`. Readable objects are
registered once with :meth:`StoreService.put`; users enqueue tickets
with :meth:`StoreService.submit`; each :meth:`StoreService.tick` drains
up to ``batch_window`` tickets and serves them all through **one**
coalesced decode — duplicate requests for the same object collapse to
one decode, all distinct objects' units merge into one spanning
consensus pass and one batched RS errata pass (the
:meth:`~repro.core.store.DnaStore.read_many` engine), and objects whose
units are resident in the :class:`~repro.service.cache.DecodedUnitCache`
skip the pipeline entirely.

The tick loop is traced (``service.tick`` spans, ``service.*``
counters, a run manifest per tick when a recording tracer is active),
so serving runs leave the same machine-checkable evidence as decode
runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.store import DnaStore, ReadRequest, ReadResult
from repro.observability.trace import get_tracer
from repro.service.cache import DecodedUnitCache


@dataclass
class _CatalogEntry:
    """One readable object: its read material and decode options."""

    reads: object
    n_data_bits: int
    pool: bool
    ranking: object
    confidence_threshold: Optional[float]
    clusterer: object
    epoch: int


class StoreService:
    """A coalescing read queue + decoded-unit cache over one store.

    Args:
        store: the :class:`~repro.core.store.DnaStore` to serve from.
        cache_capacity: decoded-unit LRU capacity (unit entries;
            ``0`` disables caching).
        batch_window: max tickets drained per :meth:`tick`
            (``None`` = drain everything). The throughput benchmark
            sweeps this knob: window 1 degenerates to one decode per
            request, larger windows amortize the consensus and errata
            passes across more requests.
    """

    def __init__(
        self,
        store: DnaStore,
        cache_capacity: int = 1024,
        batch_window: Optional[int] = None,
    ) -> None:
        if batch_window is not None and batch_window < 1:
            raise ValueError(
                f"batch_window must be positive, got {batch_window}"
            )
        self.store = store
        self.cache = DecodedUnitCache(cache_capacity)
        self.batch_window = batch_window
        self._catalog: Dict[object, _CatalogEntry] = {}
        self._queue: List[tuple] = []  # (ticket, object_id, t_submit)
        self._next_ticket = 0

    # -- catalog -------------------------------------------------------------

    def put(
        self,
        object_id,
        reads,
        n_data_bits: int,
        pool: bool = False,
        ranking=None,
        confidence_threshold: Optional[float] = None,
        clusterer=None,
    ) -> int:
        """Register (or replace) a readable object; returns its epoch.

        Re-putting an existing ``object_id`` is the re-encode path: the
        epoch bumps and every cached unit of the object is invalidated,
        so the next read decodes the new material.
        """
        previous = self._catalog.get(object_id)
        epoch = 0 if previous is None else previous.epoch + 1
        if previous is not None:
            self.cache.invalidate(object_id)
        self._catalog[object_id] = _CatalogEntry(
            reads=reads, n_data_bits=n_data_bits, pool=pool,
            ranking=ranking, confidence_threshold=confidence_threshold,
            clusterer=clusterer, epoch=epoch,
        )
        return epoch

    def invalidate(self, object_id) -> int:
        """Drop an object's cached units without replacing its reads."""
        return self.cache.invalidate(object_id)

    # -- the queue -----------------------------------------------------------

    def submit(self, object_id) -> int:
        """Enqueue one read of ``object_id``; returns the ticket number.

        Tickets are answered in submission order by a later
        :meth:`tick`; many tickets for the same object in one window
        share a single decode.
        """
        if object_id not in self._catalog:
            raise KeyError(f"unknown object {object_id!r}; put() it first")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._queue.append((ticket, object_id, time.perf_counter()))
        return ticket

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- the tick loop -------------------------------------------------------

    def tick(self) -> List[ReadResult]:
        """Serve up to ``batch_window`` queued tickets in one decode.

        Returns one :class:`~repro.core.store.ReadResult` per drained
        ticket, in submission order (``seconds`` spans submit →
        completion, queue wait included). An empty queue is a no-op
        returning ``[]``. All pipeline work of the tick is coalesced:
        at most one spanning consensus pass and one batched RS errata
        pass, however many tickets drain; a tick whose objects are all
        cache-resident performs no pipeline work at all.
        """
        if not self._queue:
            return []
        window = self.batch_window or len(self._queue)
        drained = self._queue[:window]
        del self._queue[:window]

        tracer = get_tracer()
        with tracer.span(
            "service.tick",
            n_requests=len(drained),
            queue_depth=len(self._queue),
            batch_window=self.batch_window or 0,
        ) as span:
            answers, n_objects, unit_hits, unit_misses = self._serve_window(
                drained
            )
            span.set(
                n_objects=n_objects,
                cache_unit_hits=unit_hits,
                cache_unit_misses=unit_misses,
            )
            if tracer.is_recording:
                metrics = tracer.metrics
                metrics.counter("service.requests").add(len(drained))
                metrics.counter("service.ticks").add(1)
                metrics.counter("service.cache_unit_hits").add(unit_hits)
                metrics.counter("service.cache_unit_misses").add(unit_misses)
                metrics.gauge("service.queue_depth").set(len(self._queue))
        self.store._emit_manifest(tracer, "service.tick")
        return answers

    def _serve_window(self, drained):
        """Decode a drained window; returns (answers, n_objects,
        unit cache hits, unit cache misses)."""
        distinct: List = []
        for _, object_id, _ in drained:
            if object_id not in distinct:
                distinct.append(object_id)

        cached: Dict[object, list] = {}
        missing: List = []
        unit_hits = 0
        unit_misses = 0
        for object_id in distinct:
            entry = self._catalog[object_id]
            n_units = self.store.units_needed(entry.n_data_bits)
            units = [
                self.cache.get(object_id, u, entry.epoch)
                for u in range(n_units)
            ]
            found = sum(unit is not None for unit in units)
            unit_hits += found
            unit_misses += n_units - found
            if found == n_units:
                cached[object_id] = units
            else:
                # Partial residency (LRU evicted some units) re-decodes
                # the whole object — the spanning batch is per object,
                # and whole-object refill restores full residency.
                missing.append(object_id)

        decoded: Dict[object, tuple] = {}
        if missing:
            requests = [
                ReadRequest(
                    reads=self._catalog[oid].reads,
                    n_data_bits=self._catalog[oid].n_data_bits,
                    pool=self._catalog[oid].pool,
                    ranking=self._catalog[oid].ranking,
                    confidence_threshold=(
                        self._catalog[oid].confidence_threshold
                    ),
                    clusterer=self._catalog[oid].clusterer,
                    object_id=oid,
                )
                for oid in missing
            ]
            served = self.store._read_many_impl(requests)
            for oid, (bits, report, corrected) in zip(missing, served):
                decoded[oid] = (bits, report)
                epoch = self._catalog[oid].epoch
                for u, unit_entry in enumerate(corrected):
                    self.cache.put(oid, u, epoch, unit_entry)

        answers = []
        now = time.perf_counter()
        for ticket, object_id, t_submit in drained:
            entry = self._catalog[object_id]
            if object_id in decoded:
                bits, report = decoded[object_id]
                hit = False
            else:
                bits, report = self.store._assemble_bits(
                    cached[object_id], entry.n_data_bits, entry.ranking
                )
                hit = True
            answers.append(ReadResult(
                bits=bits, report=report, object_id=object_id,
                cache_hit=hit, seconds=now - t_submit,
            ))
        return answers, len(distinct), unit_hits, unit_misses
