"""The request-queue serving plane: coalesce, decode once, answer many.

:class:`StoreService` models the paper's random-access workload (many
users each pulling one object out of a shared pool) as a queue in front
of one :class:`~repro.core.store.DnaStore`. Readable objects are
registered once with :meth:`StoreService.put`; users enqueue tickets
with :meth:`StoreService.submit`; each :meth:`StoreService.tick` drains
up to ``batch_window`` tickets and serves them all through **one**
coalesced decode — duplicate requests for the same object collapse to
one decode, all distinct objects' units merge into one spanning
consensus pass and one batched RS errata pass (the
:meth:`~repro.core.store.DnaStore.read_many` engine), and objects whose
units are resident in the :class:`~repro.service.cache.DecodedUnitCache`
skip the pipeline entirely.

The tick loop is traced (``service.tick`` spans, ``service.*``
counters, a run manifest per tick when a recording tracer is active),
so serving runs leave the same machine-checkable evidence as decode
runs. Independently of any tracer, the plane keeps *always-on* live
telemetry: its own :class:`~repro.observability.metrics.MetricRegistry`
(request/answer counters, queue-depth gauge, request/queue-wait/decode
timing histograms, clean-vs-failed outcomes), a structured
:class:`~repro.observability.events.EventLog` (submit / coalesce /
decode / cache_hit / complete records keyed by monotonically assigned
request ids), and a :class:`~repro.observability.metrics.SlidingWindow`
so :meth:`StoreService.health` reports rates and latency quantiles over
the recent window rather than process lifetime. The ``NullTracer``
decode path is untouched — the always-on instruments live beside it,
not inside it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.store import DnaStore, ReadRequest, ReadResult
from repro.observability.events import EventLog
from repro.observability.export import (
    ServiceHealth,
    SLOThresholds,
    capture_health,
)
from repro.observability.metrics import MetricRegistry, SlidingWindow
from repro.observability.trace import get_tracer
from repro.service.cache import DecodedUnitCache


@dataclass
class _CatalogEntry:
    """One readable object: its read material and decode options."""

    reads: object
    n_data_bits: int
    pool: bool
    ranking: object
    confidence_threshold: Optional[float]
    clusterer: object
    epoch: int


class StoreService:
    """A coalescing read queue + decoded-unit cache over one store.

    Args:
        store: the :class:`~repro.core.store.DnaStore` to serve from.
        cache_capacity: decoded-unit LRU capacity (unit entries;
            ``0`` disables caching).
        batch_window: max tickets drained per :meth:`tick`
            (``None`` = drain everything). The throughput benchmark
            sweeps this knob: window 1 degenerates to one decode per
            request, larger windows amortize the consensus and errata
            passes across more requests.
        event_log: the structured event log to emit into — bring one
            with a file sink to tee events to disk as they happen;
            defaults to an in-memory ring.
        window_intervals: ring length of the sliding-window aggregator
            behind :meth:`health` (each :meth:`health` call closes one
            interval).
        slo: default :class:`~repro.observability.export.SLOThresholds`
            for :meth:`health` verdicts (``None`` = library defaults).

    Attributes:
        metrics: the always-on :class:`MetricRegistry` — populated on
            every submit/tick with no tracer required.
        events: the always-on :class:`EventLog`.
        window: the :class:`SlidingWindow` over ``metrics``.
    """

    def __init__(
        self,
        store: DnaStore,
        cache_capacity: int = 1024,
        batch_window: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        window_intervals: int = 12,
        slo: Optional[SLOThresholds] = None,
    ) -> None:
        if batch_window is not None and batch_window < 1:
            raise ValueError(
                f"batch_window must be positive, got {batch_window}"
            )
        self.store = store
        self.cache = DecodedUnitCache(cache_capacity)
        self.batch_window = batch_window
        self.metrics = MetricRegistry()
        self.events = event_log if event_log is not None else EventLog()
        self.window = SlidingWindow(self.metrics, n_intervals=window_intervals)
        self.slo = slo
        self._catalog: Dict[object, _CatalogEntry] = {}
        self._queue: List[tuple] = []  # (ticket, object_id, t_submit)
        self._next_ticket = 0
        self._next_tick = 0
        self._seen_evictions = 0
        self._t_started = time.perf_counter()

    # -- catalog -------------------------------------------------------------

    def put(
        self,
        object_id,
        reads,
        n_data_bits: int,
        pool: bool = False,
        ranking=None,
        confidence_threshold: Optional[float] = None,
        clusterer=None,
    ) -> int:
        """Register (or replace) a readable object; returns its epoch.

        Re-putting an existing ``object_id`` is the re-encode path: the
        epoch bumps and every cached unit of the object is invalidated,
        so the next read decodes the new material.
        """
        previous = self._catalog.get(object_id)
        epoch = 0 if previous is None else previous.epoch + 1
        if previous is not None:
            self.cache.invalidate(object_id)
        self._catalog[object_id] = _CatalogEntry(
            reads=reads, n_data_bits=n_data_bits, pool=pool,
            ranking=ranking, confidence_threshold=confidence_threshold,
            clusterer=clusterer, epoch=epoch,
        )
        return epoch

    def invalidate(self, object_id) -> int:
        """Drop an object's cached units without replacing its reads."""
        return self.cache.invalidate(object_id)

    # -- the queue -----------------------------------------------------------

    def submit(self, object_id) -> int:
        """Enqueue one read of ``object_id``; returns the ticket number.

        Tickets are answered in submission order by a later
        :meth:`tick`; many tickets for the same object in one window
        share a single decode. The ticket number is the request id: it
        tags the ``submit``/``complete`` events and comes back as
        :attr:`~repro.core.store.ReadResult.request_id` on the answer.
        """
        if object_id not in self._catalog:
            raise KeyError(f"unknown object {object_id!r}; put() it first")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._queue.append((ticket, object_id, time.perf_counter()))
        self.metrics.counter("service.submits").add(1)
        self.metrics.gauge("service.queue_depth").set(len(self._queue))
        self.events.emit(
            "submit", request_id=ticket, object_id=object_id,
            queue_depth=len(self._queue),
        )
        return ticket

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- the tick loop -------------------------------------------------------

    def tick(self) -> List[ReadResult]:
        """Serve up to ``batch_window`` queued tickets in one decode.

        Returns one :class:`~repro.core.store.ReadResult` per drained
        ticket, in submission order (``seconds`` spans submit →
        completion, queue wait included). An empty queue is a no-op
        returning ``[]``. All pipeline work of the tick is coalesced:
        at most one spanning consensus pass and one batched RS errata
        pass, however many tickets drain; a tick whose objects are all
        cache-resident performs no pipeline work at all.
        """
        if not self._queue:
            return []
        window = self.batch_window or len(self._queue)
        drained = self._queue[:window]
        del self._queue[:window]
        tick_index = self._next_tick
        self._next_tick += 1

        tracer = get_tracer()
        with tracer.span(
            "service.tick",
            n_requests=len(drained),
            queue_depth=len(self._queue),
            batch_window=self.batch_window or 0,
        ) as span:
            answers, n_objects, unit_hits, unit_misses = self._serve_window(
                drained, tick_index
            )
            span.set(
                n_objects=n_objects,
                cache_unit_hits=unit_hits,
                cache_unit_misses=unit_misses,
            )
            if tracer.is_recording:
                metrics = tracer.metrics
                metrics.counter("service.requests").add(len(drained))
                metrics.counter("service.ticks").add(1)
                metrics.counter("service.cache_unit_hits").add(unit_hits)
                metrics.counter("service.cache_unit_misses").add(unit_misses)
                metrics.gauge("service.queue_depth").set(len(self._queue))

        # Always-on tick accounting on the service's own registry — the
        # tracer above may be the NullTracer; these run regardless.
        m = self.metrics
        m.counter("service.requests").add(len(drained))
        m.counter("service.ticks").add(1)
        m.counter("service.answers").add(len(answers))
        m.counter("service.cache_unit_hits").add(unit_hits)
        m.counter("service.cache_unit_misses").add(unit_misses)
        evicted = self.cache.evictions - self._seen_evictions
        if evicted:
            m.counter("service.cache_evictions").add(evicted)
            self._seen_evictions = self.cache.evictions
        m.gauge("service.queue_depth").set(len(self._queue))
        m.gauge("service.cache_size").set(len(self.cache))

        self.store._emit_manifest(tracer, "service.tick")
        return answers

    def _serve_window(self, drained, tick_index: int):
        """Decode a drained window; returns (answers, n_objects,
        unit cache hits, unit cache misses)."""
        t_drain = time.perf_counter()
        distinct: List = []
        for _, object_id, _ in drained:
            if object_id not in distinct:
                distinct.append(object_id)
        self.events.emit(
            "coalesce", tick=tick_index, n_requests=len(drained),
            n_objects=len(distinct),
        )

        cached: Dict[object, list] = {}
        missing: List = []
        unit_hits = 0
        unit_misses = 0
        for object_id in distinct:
            entry = self._catalog[object_id]
            n_units = self.store.units_needed(entry.n_data_bits)
            units = [
                self.cache.get(object_id, u, entry.epoch)
                for u in range(n_units)
            ]
            found = sum(unit is not None for unit in units)
            unit_hits += found
            unit_misses += n_units - found
            if found == n_units:
                cached[object_id] = units
            else:
                # Partial residency (LRU evicted some units) re-decodes
                # the whole object — the spanning batch is per object,
                # and whole-object refill restores full residency.
                missing.append(object_id)

        decoded: Dict[object, tuple] = {}
        decode_seconds = 0.0
        if missing:
            requests = [
                ReadRequest(
                    reads=self._catalog[oid].reads,
                    n_data_bits=self._catalog[oid].n_data_bits,
                    pool=self._catalog[oid].pool,
                    ranking=self._catalog[oid].ranking,
                    confidence_threshold=(
                        self._catalog[oid].confidence_threshold
                    ),
                    clusterer=self._catalog[oid].clusterer,
                    object_id=oid,
                )
                for oid in missing
            ]
            t_decode = time.perf_counter()
            served = self.store._read_many_impl(requests)
            decode_seconds = time.perf_counter() - t_decode
            self.metrics.timing("service.decode_seconds").observe(
                decode_seconds
            )
            for oid, (bits, report, corrected) in zip(missing, served):
                decoded[oid] = (bits, report)
                epoch = self._catalog[oid].epoch
                for u, unit_entry in enumerate(corrected):
                    self.cache.put(oid, u, epoch, unit_entry)
                # The decode is coalesced (one spanning pass for every
                # missing object), so each object reports the shared
                # batch wall time.
                self.events.emit(
                    "decode", tick=tick_index, object_id=oid,
                    seconds=round(decode_seconds, 9),
                )
        for object_id in cached:
            self.events.emit(
                "cache_hit", tick=tick_index, object_id=object_id,
            )

        answers = []
        outcomes = self.metrics.histogram("service.read_outcomes")
        request_timing = self.metrics.timing("service.request_seconds")
        wait_timing = self.metrics.timing("service.queue_wait_seconds")
        now = time.perf_counter()
        for ticket, object_id, t_submit in drained:
            entry = self._catalog[object_id]
            if object_id in decoded:
                bits, report = decoded[object_id]
                hit = False
            else:
                bits, report = self.store._assemble_bits(
                    cached[object_id], entry.n_data_bits, entry.ranking
                )
                hit = True
            seconds = now - t_submit
            queue_wait = max(t_drain - t_submit, 0.0)
            answers.append(ReadResult(
                bits=bits, report=report, object_id=object_id,
                request_id=ticket, cache_hit=hit, seconds=seconds,
            ))
            request_timing.observe(seconds)
            wait_timing.observe(queue_wait)
            outcomes.observe("clean" if report.clean else "failed")
            self.events.emit(
                "complete", tick=tick_index, request_id=ticket,
                object_id=object_id,
                queue_wait_seconds=round(queue_wait, 9),
                decode_seconds=round(0.0 if hit else decode_seconds, 9),
                seconds=round(seconds, 9),
                cache_hit=hit, clean=report.clean,
            )
        return answers, len(distinct), unit_hits, unit_misses

    # -- live telemetry ------------------------------------------------------

    def health(
        self,
        slo: Optional[SLOThresholds] = None,
        roll: bool = True,
    ) -> ServiceHealth:
        """One :class:`ServiceHealth` snapshot of the plane right now.

        Each call (with ``roll`` left on) closes one sliding-window
        interval, so rates and latency quantiles cover the span since
        the previous ``health()`` call (up to ``window_intervals`` calls
        back), not process lifetime. When a recording tracer is active
        its ``rs.failure_reasons`` histogram is folded in, so the
        snapshot reports *why* decodes failed, not just that they did.
        """
        if roll:
            self.window.roll()
        snapshot = self.metrics.snapshot()
        tracer = get_tracer()
        if tracer.is_recording:
            reasons = tracer.metrics.snapshot().get("histograms", {}).get(
                "rs.failure_reasons"
            )
            if reasons:
                snapshot["histograms"]["rs.failure_reasons"] = reasons
        return capture_health(
            snapshot,
            queue_depth=len(self._queue),
            cache_stats=self.cache.stats(),
            window=self.window,
            slo=slo if slo is not None else self.slo,
            elapsed_seconds=time.perf_counter() - self._t_started,
        )
