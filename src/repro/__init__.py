"""repro — a reproduction of "Managing Reliability Bias in DNA Storage".

Lin, Tabatabaee, Pote, Jevdjic — ISCA 2022 (arXiv:2204.12261).

The package implements the complete DNA data-storage stack the paper
builds on (Reed-Solomon matrix architecture, IDS channel, trace
reconstruction, clustering, primers, an in-house JPEG codec and ChaCha20
encryption for the workload) and the paper's two contributions:

* **Gini** — diagonal interleaving of ECC codewords across molecules so
  every codeword sees the same number of errors regardless of where in
  the molecules the errors strike (de-biasing the medium);
* **DnaMapper** — priority-based mapping that stores the most important
  bits in the most reliable molecule positions (leveraging the bias).

Quick start::

    import numpy as np
    from repro import (MatrixConfig, PipelineConfig, DnaStoragePipeline,
                       ErrorModel, SequencingSimulator, FixedCoverage)

    config = PipelineConfig(
        matrix=MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16),
        layout="gini",
    )
    pipeline = DnaStoragePipeline(config)
    bits = np.random.default_rng(0).integers(0, 2, pipeline.capacity_bits,
                                             dtype=np.uint8)
    unit = pipeline.encode(bits)
    simulator = SequencingSimulator(ErrorModel.uniform(0.06), FixedCoverage(10))
    clusters = simulator.sequence(unit.strands, rng=0)
    decoded, report = pipeline.decode(clusters, bits.size)
    assert report.clean and np.array_equal(decoded, bits)

``pipeline.decode`` reconstructs all 120 clusters through the consensus
engine's *batched* entry point — one vectorized scan advances every read
of every cluster simultaneously — so a unit this size decodes in tens of
milliseconds. The same batch API is available directly::

    from repro import TwoWayReconstructor

    strands = TwoWayReconstructor().reconstruct_many(
        [cluster.reads for cluster in clusters if not cluster.is_lost],
        config.matrix.strand_length,
    )  # one estimate per cluster, identical to reconstructing one-by-one
"""

from repro.channel import (
    CoverageModel,
    ErrorModel,
    FixedCoverage,
    GammaCoverage,
    ReadCluster,
    ReadPool,
    SequencingSimulator,
    SynthesisSimulator,
    TwoStageSequencer,
)
from repro.codec import DirectCodec, RotationCodec
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    OptimalMedianReconstructor,
    PosteriorReconstructor,
    TwoWayReconstructor,
)
from repro.core import (
    BaselineLayout,
    DecodeReport,
    DnaMapperLayout,
    DnaStore,
    DnaStoragePipeline,
    EncodedUnit,
    GiniLayout,
    MatrixConfig,
    PipelineConfig,
    identity_ranking,
    oracle_ranking,
    positional_ranking,
    proportional_share_ranking,
)
from repro.ecc import DecodeFailure, GaloisField, ReedSolomon, UnevenEccScheme
from repro.files import FileEntry, pack_archive, unpack_archive
from repro.media import (
    ColorJpegCodec,
    JpegCodec,
    psnr,
    quality_loss_db,
    synth_image,
    synth_image_rgb,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # channel
    "ErrorModel",
    "CoverageModel",
    "FixedCoverage",
    "GammaCoverage",
    "ReadCluster",
    "ReadPool",
    "SequencingSimulator",
    "SynthesisSimulator",
    "TwoStageSequencer",
    # codecs
    "DirectCodec",
    "RotationCodec",
    # consensus
    "OneWayReconstructor",
    "TwoWayReconstructor",
    "IterativeReconstructor",
    "OptimalMedianReconstructor",
    "PosteriorReconstructor",
    # core
    "MatrixConfig",
    "PipelineConfig",
    "DnaStoragePipeline",
    "DnaStore",
    "EncodedUnit",
    "DecodeReport",
    "BaselineLayout",
    "GiniLayout",
    "DnaMapperLayout",
    "identity_ranking",
    "positional_ranking",
    "proportional_share_ranking",
    "oracle_ranking",
    # ecc
    "GaloisField",
    "ReedSolomon",
    "DecodeFailure",
    "UnevenEccScheme",
    # files
    "FileEntry",
    "pack_archive",
    "unpack_archive",
    # media
    "JpegCodec",
    "ColorJpegCodec",
    "synth_image",
    "synth_image_rgb",
    "psnr",
    "quality_loss_db",
]
