"""repro — a reproduction of "Managing Reliability Bias in DNA Storage".

Lin, Tabatabaee, Pote, Jevdjic — ISCA 2022 (arXiv:2204.12261).

The package implements the complete DNA data-storage stack the paper
builds on (Reed-Solomon matrix architecture, IDS channel, trace
reconstruction, clustering, primers, an in-house JPEG codec and ChaCha20
encryption for the workload) and the paper's two contributions:

* **Gini** — diagonal interleaving of ECC codewords across molecules so
  every codeword sees the same number of errors regardless of where in
  the molecules the errors strike (de-biasing the medium);
* **DnaMapper** — priority-based mapping that stores the most important
  bits in the most reliable molecule positions (leveraging the bias).

Quick start::

    import numpy as np
    from repro import (MatrixConfig, PipelineConfig, DnaStoragePipeline,
                       ErrorModel, SequencingSimulator, FixedCoverage)

    config = PipelineConfig(
        matrix=MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16),
        layout="gini",
    )
    pipeline = DnaStoragePipeline(config)
    bits = np.random.default_rng(0).integers(0, 2, pipeline.capacity_bits,
                                             dtype=np.uint8)
    unit = pipeline.encode(bits)
    simulator = SequencingSimulator(ErrorModel.uniform(0.06), FixedCoverage(10))
    batch = simulator.sequence_batch(unit.strands, rng=0)   # columnar reads
    decoded, report = pipeline.decode(batch, bits.size)
    assert report.clean and np.array_equal(decoded, bits)

``sequence_batch`` runs the whole IDS channel as *one* vectorized pass
(:class:`~repro.channel.BatchedChannelEngine`): a single RNG draw covers
every base of every read, and the result is a columnar
:class:`~repro.channel.ReadBatch` — flat base buffer plus per-read
offsets — that ``pipeline.decode`` consumes without ever materializing a
DNA string. ``simulator.sequence(...)`` still returns familiar
``ReadCluster`` objects (zero-copy views whose ``.reads`` strings decode
lazily), and both forms decode identically. The batched consensus API is
also available directly, columnar or list-shaped::

    from repro import TwoWayReconstructor

    estimates = TwoWayReconstructor().reconstruct_batch(
        batch.drop_lost(), config.matrix.strand_length,
    )  # (n_clusters, L) array, identical to reconstructing one-by-one

The refinement layers are batched through the same entry points:
``IterativeReconstructor().reconstruct_batch(...)`` sweeps the unit-cost
edit DP over every read of every cluster at once (realign-and-vote with
per-cluster fixed-point dropout), and
``PosteriorReconstructor().reconstruct_batch_with_confidence(...)``
runs the IDS-lattice forward-backward as one ``(reads, positions)``
recursion, returning per-position posterior confidence alongside each
estimate — both pinned against their frozen per-cluster references by
the differential suite.

Payloads larger than one encoding unit go through the multi-unit store,
and the store is the *batching boundary*: encode places, parity-fills
(one GF matrix product for every codeword of every unit) and renders all
units' strands in single array passes, and decode runs **one** consensus
batch call over every surviving cluster of every unit::

    from repro import DnaStore, ReadRequest

    store = DnaStore(config)
    bits = np.random.default_rng(0).integers(
        0, 2, 3 * store.unit_capacity_bits, dtype=np.uint8)
    image = store.encode(bits)                           # 3 units, batched
    batch = simulator.sequence_store(image, rng=0)       # one spanning batch
    decoded, report = store.read(                        # one consensus pass
        ReadRequest(batch, bits.size))
    assert report.clean and np.array_equal(decoded, bits)

``sequence_store`` (and ``ReadPool.for_store`` for coverage sweeps) emit
the units' clusters back to back in one columnar batch;
``pipeline.receive_many`` then parses the whole estimate stack with
array operations — index validation, first-claim-wins column assembly
and confidence-cell extraction, segmented by unit — feeding one batched
RS correction pass. The original one-pipeline-call-per-unit loop
survives behind ``ReadRequest(reference=True)``, the frozen differential
reference the batched path is pinned byte-identical against. (The
legacy ``decode``/``decode_pool``/``decode_units`` names still work as
deprecated wrappers over the same engine.)

RS correction itself is batched end to end: clean codewords clear
through one bit-plane syndrome product, and the dirty remainder of
*every unit* moves through erasure-locator construction,
Berlekamp–Massey, the Chien search and Forney as one lockstep
computation per stage (``ReedSolomon.decode_many``, with per-codeword
failure flags instead of exceptions). Soft confidence flags ride a
two-wave schedule — augmented erasures first, a hard-only retry wave
for the rows the hints lost — and the whole chain is pinned
byte-identical to the frozen scalar decoder
(:class:`~repro.ecc.ReferenceReedSolomon`) by the differential suite.

Reads do not need ground-truth cluster labels anymore: the clustering
subsystem runs on the same columnar plane, so the realistic workload —
an unlabeled sequencing pool — decodes end to end::

    pool = simulator.sequence_store(image, rng=0, labeled=False)
    decoded, report = store.read(ReadRequest(pool, bits.size, pool=True))
    assert report.clean and np.array_equal(decoded, bits)

``labeled=False`` keeps one shuffled read pool per encoding unit (units
are separately amplifiable; strand attribution within a unit is what
sequencing does not provide), and the pooled read path recovers clusters
with :class:`~repro.cluster.BatchedGreedyClusterer` — q-gram signatures
for the whole pool in one pass over the flat base buffer, one stacked
banded edit-distance sweep per cluster round, assignments *identical* to
the string-plane greedy clusterer (pinned against the frozen original in
``repro.cluster.reference``) at ~30x its speed on the quickstart pool —
then feeds the recovered clusters through the same single
``receive_many`` pass as labeled reads; each consensus strand names its
column via the embedded index field. The same path exists per unit as
``pipeline.decode_pool(batch.pooled(rng=...), ...)``.

Large pools swap the clustering engine without touching the decode
path: :class:`~repro.cluster.LSHClusterer` generates candidate pairs
from minhash-band bin collisions over each read's q-gram set (sparse
COO signatures, fixed per-band RNG substreams) instead of scanning the
pool against every representative, verifies every collision with the
same exact banded edit-distance kernel, and resolves components by
vectorized union-find — near-linear candidate growth, >5x the greedy
scan's speed at 50k reads (``benchmarks/test_fig_lsh_scaling.py``), and
identical recovery-quality floors (pair precision 1.0, recall bounds in
``tests/cluster/test_recovery.py``)::

    from repro.cluster import LSHClusterer

    clusterer = LSHClusterer.for_strand_length(
        store.pipeline.matrix_config.strand_length
    )
    decoded, report = store.read(
        ReadRequest(pool, bits.size, pool=True, clusterer=clusterer)
    )

Every pooled surface takes the same ``clusterer=`` swap:
``decode_pool``, ``ReadRequest``, ``StoreService.put`` and the CLI's
``serve --pool --clusterer lsh``.

Scenario sweeps ride the same engine: ``ReadPool`` stores its pool as one
``ReadBatch`` and serves zero-copy coverage prefixes, and
:class:`~repro.channel.ErrorRateMap` gives the engine per-strand/
per-position error rates for reliability-skew scenarios
(:func:`repro.analysis.positional_confidence_profile` measures them).

The decode path is observable end to end (``repro.observability``):
activate a tracer and every stage — channel, clustering, consensus,
receive, RS errata — records its wall time and pipeline counters, and
each store decode leaves a schema-versioned :class:`~repro.observability.
RunManifest` (config fingerprint, per-stage timings, metric snapshot)::

    from repro.observability import Tracer, use_tracer, render_manifest

    tracer = Tracer()
    tracer.context["seed"] = 0
    with use_tracer(tracer):
        pool = simulator.sequence_store(image, rng=0, labeled=False)
        decoded, report = store.read(ReadRequest(pool, bits.size, pool=True))
    manifest = tracer.manifests[-1]
    print(render_manifest(manifest))     # stage table, counters, reasons
    manifest.save("run.json")            # machine-checkable evidence

``python -m repro.cli report run.json [baseline.json]`` renders a saved
manifest (or diffs two — stage shares, counters, config fingerprints),
and ``benchmarks/check_trend.py --stage`` gates CI on per-stage drift
using the manifests every benchmark run emits. With no tracer active the
default ``NullTracer`` makes every instrumentation site a no-op: decode
output is byte-identical and the overhead is budgeted under 5% by
``tests/integration/test_perf_budget.py``.

Random access at scale (the paper's Section 2.1 key-value workload —
many users each pulling one object out of a shared pool) runs through
the serving plane (``repro.service``): register objects once, enqueue
read tickets, and each tick coalesces every drained ticket into one
spanning consensus pass plus one batched RS errata pass — with a
decoded-unit LRU cache in front, so repeat reads skip the pipeline
entirely::

    from repro.service import StoreService

    service = StoreService(store, cache_capacity=256, batch_window=16)
    service.put("fileA", batch_a, bits_a.size)          # labeled reads
    service.put("fileB", pool_b, bits_b.size, pool=True)  # unlabeled pool
    service.submit("fileA"); service.submit("fileB")
    for result in service.tick():        # ONE coalesced decode for all
        assert result.clean
    service.submit("fileA")
    assert service.tick()[0].cache_hit   # warm repeat: zero pipeline work

Re-``put``-ting an object (a store re-encode) bumps its cache epoch and
invalidates its cached units. Under heavy traffic ``read_many`` on the
store gives the same amortization without the queue; the ``service.tick``
spans/counters land in run manifests like every other stage, and
``benchmarks/test_service_throughput.py`` drift-gates requests/sec and
p50/p99 latency vs the batch window in CI.

A *live* service also answers "how is it doing right now", without any
recording tracer: the plane keeps an always-on metric registry
(request/answer counters, queue-depth gauge, bounded-memory
``TimingHistogram`` latency distributions with p50/p95/p99 estimates),
a structured JSON-lines ``EventLog`` (submit / coalesce / decode /
cache_hit / complete records keyed by monotonically assigned request
ids), and a ``SlidingWindow`` so rates and quantiles cover the recent
window rather than process lifetime::

    health = service.health()        # one SLO-checked snapshot
    health.verdict                   # "ok" | "degraded" | "unhealthy"
    health.requests_per_second, health.p99_seconds, health.cache_hit_rate
    render_prometheus(service.metrics)   # text exposition for a scraper

``python -m repro.cli metrics`` dumps the exposition (validated by a
render/parse round trip), ``repro.cli top`` is the refreshing console
view, and ``repro.cli serve`` closes with the health line. The
``NullTracer`` decode path is untouched: live telemetry lives beside
the tracer, not inside it.
"""

from repro.channel import (
    BatchedChannelEngine,
    CoverageModel,
    ErrorModel,
    ErrorRateMap,
    FixedCoverage,
    GammaCoverage,
    ReadBatch,
    ReadCluster,
    ReadPool,
    SequencingSimulator,
    SynthesisSimulator,
    TwoStageSequencer,
)
from repro.cluster import (
    BatchedGreedyClusterer,
    GreedyClusterer,
    LSHClusterer,
    pair_precision_recall,
)
from repro.codec import DirectCodec, RotationCodec
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    OptimalMedianReconstructor,
    PosteriorReconstructor,
    TwoWayReconstructor,
)
from repro.core import (
    BaselineLayout,
    DecodeReport,
    DnaMapperLayout,
    DnaStore,
    DnaStoragePipeline,
    EncodedUnit,
    GiniLayout,
    MatrixConfig,
    PipelineConfig,
    ReadRequest,
    ReadResult,
    StoreImage,
    StoreReport,
    identity_ranking,
    oracle_ranking,
    positional_ranking,
    proportional_share_ranking,
)
from repro.ecc import DecodeFailure, GaloisField, ReedSolomon, UnevenEccScheme
from repro.files import FileEntry, pack_archive, unpack_archive
from repro.service import DecodedUnitCache, StoreService
from repro.media import (
    ColorJpegCodec,
    JpegCodec,
    psnr,
    quality_loss_db,
    synth_image,
    synth_image_rgb,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # channel
    "ErrorModel",
    "ErrorRateMap",
    "CoverageModel",
    "FixedCoverage",
    "GammaCoverage",
    "BatchedChannelEngine",
    "ReadBatch",
    "ReadCluster",
    "ReadPool",
    "SequencingSimulator",
    "SynthesisSimulator",
    "TwoStageSequencer",
    # clustering
    "GreedyClusterer",
    "BatchedGreedyClusterer",
    "LSHClusterer",
    "pair_precision_recall",
    # codecs
    "DirectCodec",
    "RotationCodec",
    # consensus
    "OneWayReconstructor",
    "TwoWayReconstructor",
    "IterativeReconstructor",
    "OptimalMedianReconstructor",
    "PosteriorReconstructor",
    # core
    "MatrixConfig",
    "PipelineConfig",
    "DnaStoragePipeline",
    "DnaStore",
    "ReadRequest",
    "ReadResult",
    "StoreImage",
    "StoreReport",
    "EncodedUnit",
    "DecodeReport",
    # service plane
    "StoreService",
    "DecodedUnitCache",
    "BaselineLayout",
    "GiniLayout",
    "DnaMapperLayout",
    "identity_ranking",
    "positional_ranking",
    "proportional_share_ranking",
    "oracle_ranking",
    # ecc
    "GaloisField",
    "ReedSolomon",
    "DecodeFailure",
    "UnevenEccScheme",
    # files
    "FileEntry",
    "pack_archive",
    "unpack_archive",
    # media
    "JpegCodec",
    "ColorJpegCodec",
    "synth_image",
    "synth_image_rgb",
    "psnr",
    "quality_loss_db",
]
