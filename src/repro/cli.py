"""Command-line interface: encode files to DNA and decode them back.

The CLI wraps the archive + pipeline stack into six commands::

    python -m repro.cli encode --layout gini -o store.dna photo1.jpg notes.txt
    python -m repro.cli decode store.dna -d restored/
    python -m repro.cli report run.json [baseline.json]
    python -m repro.cli serve --objects 32 --window 8
    python -m repro.cli metrics --objects 8 -o metrics.prom
    python -m repro.cli top --frames 5 --interval 1

``encode`` packs the input files into an archive, encodes it into one or
more encoding units, and writes a textual ``.dna`` file with one strand
per line (plus a small JSON header describing the geometry). ``decode``
reads the strand file — optionally after simulated sequencing noise with
``--error-rate``/``--coverage`` — and restores the files. ``report``
renders a :class:`~repro.observability.manifest.RunManifest` JSON file
(what a traced decode emits) as a stage/metric report, or — given two
manifests — the stage-time and counter deltas between them. ``serve``
runs a synthetic random-access serving demo: it encodes and sequences a
corpus of objects, drives them through the coalescing
:class:`~repro.service.StoreService`, and prints requests/sec, p50/p99
latency and the cache hit rate per pass (pass 2+ answers from the
decoded-unit cache), closing with a
:class:`~repro.observability.export.ServiceHealth` line. ``metrics``
runs the same demo and dumps the service's always-on metric registry in
Prometheus text exposition format — validated by a render/parse
round-trip before anything is printed. ``top`` is the live console
view: one corpus pass per frame, each frame printing the sliding-window
health snapshot (req/s, p50/p99, cache hit rate, SLO verdicts).

The strand file is deliberately human-readable: the point of the format
is to make the pipeline's output inspectable, not to be efficient.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List


from repro.channel import ErrorModel, GammaCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.ranking import proportional_share_ranking
from repro.files import FileEntry, pack_archive, unpack_archive_robust
from repro.utils.bitio import bits_to_bytes, bytes_to_bits

_FORMAT_VERSION = 1


def _build_pipeline(args) -> DnaStoragePipeline:
    matrix = MatrixConfig(
        m=args.symbol_bits,
        n_columns=args.molecules,
        nsym=args.redundancy,
        payload_rows=args.rows,
    )
    return DnaStoragePipeline(
        PipelineConfig(matrix=matrix, layout=args.layout)
    )


def _encode(args) -> int:
    entries: List[FileEntry] = []
    for name in args.files:
        path = Path(name)
        if not path.is_file():
            print(f"error: {name} is not a file", file=sys.stderr)
            return 1
        entries.append(FileEntry(name=path.name, data=path.read_bytes()))
    archive = pack_archive(entries)

    pipeline = _build_pipeline(args)
    capacity = pipeline.capacity_bits
    if archive.n_bits > capacity:
        units_needed = -(-archive.n_bits // capacity)
        print(
            f"error: archive needs {archive.n_bits} bits but one unit holds "
            f"{capacity}; increase --molecules/--rows (needs ~{units_needed} "
            "units worth of capacity)",
            file=sys.stderr,
        )
        return 1

    ranking = None
    if args.layout == "dnamapper":
        ranking = proportional_share_ranking(
            archive.segment_bits, top_priority_segments=[0]
        )
    bits = bytes_to_bits(archive.data)
    unit = pipeline.encode(bits, ranking=ranking)

    header = {
        "format": _FORMAT_VERSION,
        "layout": args.layout,
        "m": args.symbol_bits,
        "n_columns": args.molecules,
        "nsym": args.redundancy,
        "payload_rows": args.rows,
        "n_data_bits": int(bits.size),
    }
    output = Path(args.output)
    with output.open("w", encoding="ascii") as handle:
        handle.write("#" + json.dumps(header) + "\n")
        for strand in unit.strands:
            handle.write(strand + "\n")
    total_bases = sum(len(s) for s in unit.strands)
    print(f"wrote {len(unit.strands)} strands ({total_bases} bases, "
          f"{len(entries)} files, layout={args.layout}) to {output}")
    if args.fasta:
        from repro.files.fasta import write_fasta

        fasta_path = output.with_suffix(".fasta")
        write_fasta(fasta_path, unit.strands)
        print(f"wrote synthesis order to {fasta_path}")
    return 0


def _decode(args) -> int:
    path = Path(args.store)
    if not path.is_file():
        print(f"error: {args.store} is not a file", file=sys.stderr)
        return 1
    lines = path.read_text(encoding="ascii").splitlines()
    if not lines or not lines[0].startswith("#"):
        print("error: missing header line", file=sys.stderr)
        return 1
    header = json.loads(lines[0][1:])
    if header.get("format") != _FORMAT_VERSION:
        print("error: unsupported format version", file=sys.stderr)
        return 1
    strands = [line.strip() for line in lines[1:] if line.strip()]

    matrix = MatrixConfig(
        m=header["m"], n_columns=header["n_columns"],
        nsym=header["nsym"], payload_rows=header["payload_rows"],
    )
    pipeline = DnaStoragePipeline(
        PipelineConfig(matrix=matrix, layout=header["layout"])
    )

    if args.error_rate > 0:
        simulator = SequencingSimulator(
            ErrorModel.uniform(args.error_rate),
            GammaCoverage(args.coverage, shape=6),
        )
        clusters = simulator.sequence(strands, rng=args.seed)
        print(f"simulated sequencing: {args.error_rate:.1%} errors, "
              f"coverage ~{args.coverage}")
    else:
        from repro.channel import ReadCluster
        clusters = [
            ReadCluster(source_index=i, reads=[strand])
            for i, strand in enumerate(strands)
        ]

    n_bits = header["n_data_bits"]
    if header["layout"] == "dnamapper":
        received = pipeline.receive(clusters)
        corrected, report = pipeline.correct_matrix(received)
        prioritized = pipeline.prioritized_bits(corrected)
        data = _staged_unrank(pipeline, prioritized, n_bits)
    else:
        bits, report = pipeline.decode(clusters, n_bits)
        data = bits_to_bytes(bits)

    if not report.clean:
        print(f"warning: {len(report.failed_codewords)} codewords failed to "
              "decode; output may be corrupt", file=sys.stderr)

    destination = Path(args.directory)
    destination.mkdir(parents=True, exist_ok=True)
    try:
        entries = unpack_archive_robust(data)
    except Exception:
        print("error: archive directory unusable", file=sys.stderr)
        return 1
    for entry in entries:
        target = destination / Path(entry.name).name
        target.write_bytes(entry.data)
        print(f"restored {target} ({len(entry.data)} bytes)")
    return 0


def _report(args) -> int:
    from repro.observability import (
        ManifestError, RunManifest, diff_manifests, render_manifest,
    )

    try:
        manifest = RunManifest.load(args.manifest)
    except FileNotFoundError:
        print(f"error: {args.manifest} is not a file", file=sys.stderr)
        return 1
    except (ManifestError, json.JSONDecodeError) as exc:
        print(f"error: {args.manifest}: {exc}", file=sys.stderr)
        return 1
    if args.baseline is None:
        print(render_manifest(manifest), end="")
        return 0
    try:
        baseline = RunManifest.load(args.baseline)
    except FileNotFoundError:
        print(f"error: {args.baseline} is not a file", file=sys.stderr)
        return 1
    except (ManifestError, json.JSONDecodeError) as exc:
        print(f"error: {args.baseline}: {exc}", file=sys.stderr)
        return 1
    print(diff_manifests(baseline, manifest), end="")
    return 0


def _build_demo_service(args, announce: bool = True):
    """The synthetic serving demo shared by serve/metrics/top.

    Builds a store + :class:`~repro.service.StoreService`, encodes and
    sequences ``args.objects`` single-unit objects, and registers them
    as ``obj0..objN-1``. Returns the service.
    """
    import numpy as np

    from repro.channel import FixedCoverage
    from repro.core.store import DnaStore
    from repro.service import StoreService

    matrix = MatrixConfig(
        m=args.symbol_bits,
        n_columns=args.molecules,
        nsym=args.redundancy,
        payload_rows=args.rows,
    )
    store = DnaStore(PipelineConfig(matrix=matrix))
    simulator = SequencingSimulator(
        ErrorModel.uniform(args.error_rate), FixedCoverage(args.coverage)
    )
    service = StoreService(store, cache_capacity=args.cache,
                           batch_window=args.window)
    clusterer = None
    if args.pool:
        from repro.cluster import BatchedGreedyClusterer, LSHClusterer

        kind = {"greedy": BatchedGreedyClusterer,
                "lsh": LSHClusterer}[args.clusterer]
        clusterer = kind.for_strand_length(
            store.pipeline.matrix_config.strand_length
        )
    rng = np.random.default_rng(args.seed)
    for k in range(args.objects):
        bits = rng.integers(0, 2, store.unit_capacity_bits, dtype=np.uint8)
        image = store.encode(bits)
        reads = simulator.sequence_store(image, rng=args.seed + 1 + k,
                                         labeled=not args.pool)
        service.put(f"obj{k}", reads, bits.size, pool=args.pool,
                    clusterer=clusterer)
    if announce:
        mode = (f"unlabeled pools, {args.clusterer} clusterer" if args.pool
                else "labeled reads")
        print(
            f"registered {args.objects} objects "
            f"({store.unit_capacity_bits} bits each, "
            f"{args.error_rate:.1%} errors, coverage {args.coverage}, "
            f"{mode}); window={args.window}, cache={args.cache}"
        )
    return service


def _run_demo_pass(service, n_objects: int):
    """Submit one full corpus pass and tick the queue dry."""
    for k in range(n_objects):
        service.submit(f"obj{k}")
    results = []
    while service.queue_depth:
        results.extend(service.tick())
    return results


def _serve(args) -> int:
    import time

    import numpy as np

    service = _build_demo_service(args)

    for pass_no in range(1, args.repeats + 1):
        start = time.perf_counter()
        results = _run_demo_pass(service, args.objects)
        elapsed = time.perf_counter() - start
        latencies = np.asarray([r.seconds for r in results]) * 1e3
        hits = sum(r.cache_hit for r in results)
        clean = sum(r.clean for r in results)
        print(
            f"pass {pass_no}: {len(results) / elapsed:9.0f} req/s"
            f"  p50 {np.percentile(latencies, 50):7.2f} ms"
            f"  p99 {np.percentile(latencies, 99):7.2f} ms"
            f"  cache {hits}/{len(results)}"
            f"  clean {clean}/{len(results)}"
        )
    print(service.health().summary())
    if args.events:
        path = service.events.save(args.events)
        print(f"wrote {service.events.emitted} events to {path}")
    return 0


def _metrics(args) -> int:
    """One-shot metrics exposition dump (render + parse validated)."""
    from repro.observability import verify_roundtrip

    service = _build_demo_service(args, announce=False)
    for _ in range(args.repeats):
        _run_demo_pass(service, args.objects)
    try:
        text = verify_roundtrip(service.metrics)
    except ValueError as exc:
        print(f"error: exposition round-trip failed: {exc}", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(text.splitlines())} exposition lines "
              f"to {args.output}")
    else:
        print(text, end="")
    if args.events:
        service.events.save(args.events)
        print(f"wrote {service.events.emitted} events to {args.events}",
              file=sys.stderr)
    return 0


def _top(args) -> int:
    """Periodically refreshed console health view of the serving demo."""
    import time

    service = _build_demo_service(args)
    for frame in range(1, args.frames + 1):
        _run_demo_pass(service, args.objects)
        health = service.health()
        print(f"frame {frame}/{args.frames}  {health.summary()}")
        for check, verdict in sorted(health.checks.items()):
            print(f"    {check:10s} {verdict}")
        if args.interval > 0 and frame < args.frames:
            time.sleep(args.interval)
    return 0


def _staged_unrank(pipeline, prioritized, n_bits) -> bytes:
    """DnaMapper's metadata-free staged decode (directory first)."""
    from repro.files.archive import directory_file_sizes, directory_size_bits

    header_prefix = bits_to_bytes(prioritized[: 9 * 8])
    dir_bits = directory_size_bits(header_prefix)
    directory_blob = bits_to_bytes(prioritized[:dir_bits])
    sizes = directory_file_sizes(directory_blob)
    segment_bits = [dir_bits] + [size * 8 for size in sizes]
    ranking = proportional_share_ranking(segment_bits,
                                         top_priority_segments=[0])
    return bits_to_bytes(pipeline.unrank_bits(prioritized, n_bits, ranking))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNA storage encode/decode (paper reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    encode = sub.add_parser("encode", help="encode files into a .dna store")
    encode.add_argument("files", nargs="+", help="input files")
    encode.add_argument("-o", "--output", required=True, help=".dna output path")
    encode.add_argument("--layout", default="gini",
                        choices=["baseline", "gini", "dnamapper"])
    encode.add_argument("--symbol-bits", type=int, default=8)
    encode.add_argument("--molecules", type=int, default=255)
    encode.add_argument("--redundancy", type=int, default=47,
                        help="parity symbols per codeword (nsym)")
    encode.add_argument("--rows", type=int, default=30,
                        help="payload symbols per molecule")
    encode.add_argument("--fasta", action="store_true",
                        help="also write the strands as a FASTA synthesis order")
    encode.set_defaults(func=_encode)

    decode = sub.add_parser("decode", help="decode a .dna store back to files")
    decode.add_argument("store", help=".dna file produced by encode")
    decode.add_argument("-d", "--directory", default=".",
                        help="destination directory")
    decode.add_argument("--error-rate", type=float, default=0.0,
                        help="simulate sequencing at this error rate")
    decode.add_argument("--coverage", type=float, default=10.0,
                        help="mean coverage for simulated sequencing")
    decode.add_argument("--seed", type=int, default=0)
    decode.set_defaults(func=_decode)

    report = sub.add_parser(
        "report",
        help="render a run-manifest JSON file, or diff two of them",
    )
    report.add_argument("manifest", help="RunManifest JSON to render")
    report.add_argument(
        "baseline", nargs="?", default=None,
        help="optional baseline manifest; when given, print the "
             "stage-time and counter deltas baseline -> manifest",
    )
    report.set_defaults(func=_report)

    def add_demo_options(command, objects: int = 32):
        """The synthetic serving-demo knobs shared by serve/metrics/top."""
        command.add_argument("--objects", type=int, default=objects,
                             help="corpus size (single-unit objects)")
        command.add_argument("--window", type=int, default=8,
                             help="requests coalesced into one decode "
                                  "per tick")
        command.add_argument("--repeats", type=int, default=2,
                             help="full passes over the corpus "
                                  "(pass 2+ answers from the cache)")
        command.add_argument("--cache", type=int, default=1024,
                             help="decoded-unit cache capacity "
                                  "(0 disables)")
        command.add_argument("--symbol-bits", type=int, default=8)
        command.add_argument("--molecules", type=int, default=24)
        command.add_argument("--redundancy", type=int, default=4)
        command.add_argument("--rows", type=int, default=6)
        command.add_argument("--error-rate", type=float, default=0.01)
        command.add_argument("--coverage", type=int, default=5)
        command.add_argument("--pool", action="store_true",
                             help="register objects as unlabeled per-unit "
                                  "pools (reads are clustered at decode "
                                  "time)")
        command.add_argument("--clusterer", default="greedy",
                             choices=["greedy", "lsh"],
                             help="clusterer pooled objects ride (with "
                                  "--pool): the exact greedy scan, or "
                                  "sub-linear LSH banding for large pools")
        command.add_argument("--seed", type=int, default=0)
        command.add_argument("--events", default=None,
                             help="also write the service's structured "
                                  "event log (JSON lines) to this path")

    serve = sub.add_parser(
        "serve",
        help="demo the random-access serving plane on synthetic objects",
    )
    add_demo_options(serve)
    serve.set_defaults(func=_serve)

    metrics = sub.add_parser(
        "metrics",
        help="run the serving demo and dump its metrics registry in "
             "Prometheus text exposition format (round-trip validated)",
    )
    add_demo_options(metrics, objects=8)
    metrics.add_argument("-o", "--output", default=None,
                         help="write the exposition to this file instead "
                              "of stdout")
    metrics.set_defaults(func=_metrics)

    top = sub.add_parser(
        "top",
        help="periodically refreshed console health view of the "
             "serving demo",
    )
    add_demo_options(top, objects=8)
    top.add_argument("--frames", type=int, default=5,
                     help="health frames to print (one corpus pass each)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between frames (0 = no sleep)")
    top.set_defaults(func=_top)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
