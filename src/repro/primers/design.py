"""Primer design under biochemical and separability constraints.

Generated primers must (i) satisfy the homopolymer and GC-content
constraints that make them synthesizable and PCR-friendly, and (ii) be far
from each other in edit distance so that the PCR selector cannot confuse
two files' keys even on noisy reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.distance import edit_distance
from repro.codec.basemap import random_bases
from repro.codec.constraints import violates_constraints
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class PrimerPair:
    """A file's access key: a forward and a reverse primer."""

    forward: str
    reverse: str

    @property
    def overhead_bases(self) -> int:
        """Bases of strand capacity consumed by this pair."""
        return len(self.forward) + len(self.reverse)


class PrimerDesigner:
    """Rejection-sampling designer for mutually-distant constrained primers.

    Args:
        length: primer length in bases (each of forward/reverse).
        min_distance: minimum pairwise edit distance between any two
            primers in the designed set.
        max_homopolymer: longest allowed single-base run.
        gc_low / gc_high: allowed GC-content window.
        max_attempts: rejection-sampling budget per primer.
    """

    def __init__(
        self,
        length: int = 20,
        min_distance: int = 8,
        max_homopolymer: int = 3,
        gc_low: float = 0.4,
        gc_high: float = 0.6,
        max_attempts: int = 10_000,
    ) -> None:
        if length < 4:
            raise ValueError(f"primer length must be >= 4, got {length}")
        if min_distance < 1:
            raise ValueError(f"min_distance must be >= 1, got {min_distance}")
        self.length = length
        self.min_distance = min_distance
        self.max_homopolymer = max_homopolymer
        self.gc_low = gc_low
        self.gc_high = gc_high
        self.max_attempts = max_attempts

    def design_set(self, n_pairs: int, rng: RngLike = None) -> List[PrimerPair]:
        """Design ``n_pairs`` primer pairs (2*n_pairs mutually distant primers)."""
        generator = ensure_rng(rng)
        primers: List[str] = []
        for _ in range(2 * n_pairs):
            primers.append(self._design_one(primers, generator))
        return [
            PrimerPair(forward=primers[2 * i], reverse=primers[2 * i + 1])
            for i in range(n_pairs)
        ]

    def _design_one(self, existing: List[str], generator) -> str:
        for _ in range(self.max_attempts):
            candidate = random_bases(self.length, generator)
            if violates_constraints(
                candidate,
                max_run=self.max_homopolymer,
                gc_low=self.gc_low,
                gc_high=self.gc_high,
            ):
                continue
            if all(
                edit_distance(candidate, other) >= self.min_distance
                for other in existing
            ):
                return candidate
        raise RuntimeError(
            f"could not design a primer after {self.max_attempts} attempts; "
            "relax the constraints or shorten the set"
        )
