"""Primer design and PCR-based random access.

Each file in a DNA store is tagged with a primer pair acting as the key of
a key-value store (the paper's Section 2.1): the PCR reaction selectively
amplifies only molecules carrying the right pair. This subpackage designs
primer sets that respect biochemical constraints and are mutually distant,
and simulates the selection/trim step on noisy reads.
"""

from repro.primers.design import PrimerDesigner, PrimerPair
from repro.primers.pcr import PcrSelector, attach_primers

__all__ = [
    "PrimerDesigner",
    "PrimerPair",
    "PcrSelector",
    "attach_primers",
]
