"""PCR selection: error-tolerant primer matching and trimming.

The retrieval of a file starts by isolating molecules with the right
primer pair (the paper's Section 2.1). On noisy reads the primer region
itself carries errors, so matching is by banded edit distance against the
read's prefix/suffix windows, and trimming cuts at the best-matching
boundary.

Selection also runs on the columnar read plane: :meth:`PcrSelector.
select_batch` matches every read of a :class:`~repro.channel.readbatch.
ReadBatch` with one stacked banded-DP sweep per candidate cut (the
clustering subsystem's :func:`~repro.cluster.distance.
banded_edit_distances_stack` kernel) and trims zero-copy — the selected
batch re-windows the parent's base buffer. Cut choice is value-identical
to the scalar :meth:`PcrSelector.trim` (both kernels cap distances at
``band + 1`` and take the first minimal cut scanning ascending).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.cluster.distance import banded_edit_distance, banded_edit_distances_stack
from repro.codec.basemap import bases_to_indices
from repro.primers.design import PrimerPair


def attach_primers(payload: str, pair: PrimerPair) -> str:
    """Prepend the forward and append the reverse primer to a payload."""
    return pair.forward + payload + pair.reverse


@dataclass
class PcrSelector:
    """Selects and trims reads carrying a target primer pair.

    Args:
        pair: the target file's primer pair.
        max_errors: maximum edit distance tolerated in each primer match.
        window_slack: extra bases around the expected primer region to
            search when locating the trim boundary.
    """

    pair: PrimerPair
    max_errors: int = 3
    window_slack: int = 4

    def matches(self, read: str) -> bool:
        """True when both primers are found within the error budget."""
        return (
            self._locate_forward(read) is not None
            and self._locate_reverse(read) is not None
        )

    def select(self, reads: Sequence[str]) -> List[str]:
        """Filter to matching reads and trim the primer regions off."""
        selected = []
        for read in reads:
            trimmed = self.trim(read)
            if trimmed is not None:
                selected.append(trimmed)
        return selected

    def trim(self, read: str) -> Optional[str]:
        """Strip both primers; None when either primer does not match."""
        start = self._locate_forward(read)
        end = self._locate_reverse(read)
        if start is None or end is None or start > end:
            return None
        return read[start:end]

    def _locate_forward(self, read: str) -> Optional[int]:
        """Best end-offset of the forward primer near the read's start."""
        primer = self.pair.forward
        best_cut, best_distance = None, self.max_errors + 1
        for cut in self._cut_range(len(primer), len(read)):
            distance = banded_edit_distance(read[:cut], primer, self.max_errors)
            if distance < best_distance:
                best_cut, best_distance = cut, distance
        return best_cut

    def _locate_reverse(self, read: str) -> Optional[int]:
        """Best start-offset of the reverse primer near the read's end."""
        primer = self.pair.reverse
        best_cut, best_distance = None, self.max_errors + 1
        for cut in self._cut_range(len(primer), len(read)):
            distance = banded_edit_distance(
                read[len(read) - cut:], primer, self.max_errors
            )
            if distance < best_distance:
                best_cut, best_distance = len(read) - cut, distance
        return best_cut

    def _cut_range(self, primer_length: int, read_length: int) -> range:
        low = max(0, primer_length - self.window_slack)
        high = min(read_length, primer_length + self.window_slack)
        return range(low, high + 1)

    # -- the columnar plane ---------------------------------------------------

    def matches_batch(self, batch: ReadBatch) -> np.ndarray:
        """Per-read match flags for a whole batch (one bool per read)."""
        forward, _ = self._locate_batch(batch, self.pair.forward,
                                        suffix=False)
        reverse, _ = self._locate_batch(batch, self.pair.reverse,
                                        suffix=True)
        return (forward <= self.max_errors) & (reverse <= self.max_errors)

    def select_batch(self, batch: ReadBatch) -> ReadBatch:
        """Batched :meth:`select`: filter + trim, zero-copy.

        Returns a batch over the *same* base buffer whose read windows
        are the trimmed payload regions of the matching reads. Cluster
        structure is preserved (``n_clusters`` and ``source_indices``
        unchanged; clusters whose reads all fail selection keep their id
        with zero reads), so the result feeds the clustering and decode
        planes directly.
        """
        f_dist, f_cut = self._locate_batch(batch, self.pair.forward,
                                           suffix=False)
        r_dist, r_cut = self._locate_batch(batch, self.pair.reverse,
                                           suffix=True)
        starts = f_cut
        ends = batch.lengths - r_cut
        keep = (
            (f_dist <= self.max_errors)
            & (r_dist <= self.max_errors)
            & (starts <= ends)
        )
        return ReadBatch(
            batch.buffer,
            batch.offsets[keep] + starts[keep],
            ends[keep] - starts[keep],
            batch.cluster_ids[keep],
            n_clusters=batch.n_clusters,
            source_indices=batch.source_indices,
        )

    def _locate_batch(
        self, batch: ReadBatch, primer: str, suffix: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Best primer match per read over the cut window, stacked.

        One :func:`~repro.cluster.distance.banded_edit_distances_stack`
        sweep per candidate cut compares every eligible read's prefix
        (or suffix) window against the primer; cuts scan ascending and
        update on strictly smaller distance, replicating the scalar
        tie-break. Returns ``(distances, cuts)`` — distance capped at
        ``max_errors + 1`` (no match), ``cuts`` counted from the read's
        start (prefix) or end (suffix).
        """
        target = bases_to_indices(primer).astype(np.int16)
        plen = target.size
        band = self.max_errors
        lengths = batch.lengths
        n_reads = lengths.size
        best = np.full(n_reads, band + 1, dtype=np.int64)
        cuts = np.zeros(n_reads, dtype=np.int64)
        plens = np.full(n_reads, plen, dtype=np.int64)
        for cut in range(max(0, plen - self.window_slack),
                         plen + self.window_slack + 1):
            idx = np.flatnonzero(lengths >= cut)
            if idx.size == 0:
                continue
            if cut == 0:
                distances = np.full(idx.size, min(plen, band + 1),
                                    dtype=np.int64)
            else:
                starts = batch.offsets[idx]
                if suffix:
                    starts = starts + lengths[idx] - cut
                windows = batch.buffer[
                    starts[:, None] + np.arange(cut, dtype=np.int64)
                ].astype(np.int16)
                distances = banded_edit_distances_stack(
                    windows,
                    np.full(idx.size, cut, dtype=np.int64),
                    np.broadcast_to(target, (idx.size, plen)),
                    plens[:idx.size],
                    band,
                )
            better = distances < best[idx]
            improved = idx[better]
            best[improved] = distances[better]
            cuts[improved] = cut
        return best, cuts
