"""PCR selection: error-tolerant primer matching and trimming.

The retrieval of a file starts by isolating molecules with the right
primer pair (the paper's Section 2.1). On noisy reads the primer region
itself carries errors, so matching is by banded edit distance against the
read's prefix/suffix windows, and trimming cuts at the best-matching
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.distance import banded_edit_distance
from repro.primers.design import PrimerPair


def attach_primers(payload: str, pair: PrimerPair) -> str:
    """Prepend the forward and append the reverse primer to a payload."""
    return pair.forward + payload + pair.reverse


@dataclass
class PcrSelector:
    """Selects and trims reads carrying a target primer pair.

    Args:
        pair: the target file's primer pair.
        max_errors: maximum edit distance tolerated in each primer match.
        window_slack: extra bases around the expected primer region to
            search when locating the trim boundary.
    """

    pair: PrimerPair
    max_errors: int = 3
    window_slack: int = 4

    def matches(self, read: str) -> bool:
        """True when both primers are found within the error budget."""
        return (
            self._locate_forward(read) is not None
            and self._locate_reverse(read) is not None
        )

    def select(self, reads: Sequence[str]) -> List[str]:
        """Filter to matching reads and trim the primer regions off."""
        selected = []
        for read in reads:
            trimmed = self.trim(read)
            if trimmed is not None:
                selected.append(trimmed)
        return selected

    def trim(self, read: str) -> Optional[str]:
        """Strip both primers; None when either primer does not match."""
        start = self._locate_forward(read)
        end = self._locate_reverse(read)
        if start is None or end is None or start > end:
            return None
        return read[start:end]

    def _locate_forward(self, read: str) -> Optional[int]:
        """Best end-offset of the forward primer near the read's start."""
        primer = self.pair.forward
        best_cut, best_distance = None, self.max_errors + 1
        for cut in self._cut_range(len(primer), len(read)):
            distance = banded_edit_distance(read[:cut], primer, self.max_errors)
            if distance < best_distance:
                best_cut, best_distance = cut, distance
        return best_cut

    def _locate_reverse(self, read: str) -> Optional[int]:
        """Best start-offset of the reverse primer near the read's end."""
        primer = self.pair.reverse
        best_cut, best_distance = None, self.max_errors + 1
        for cut in self._cut_range(len(primer), len(read)):
            distance = banded_edit_distance(
                read[len(read) - cut:], primer, self.max_errors
            )
            if distance < best_distance:
                best_cut, best_distance = len(read) - cut, distance
        return best_cut

    def _cut_range(self, primer_length: int, read_length: int) -> range:
        low = max(0, primer_length - self.window_slack)
        high = min(read_length, primer_length + self.window_slack)
        return range(low, high + 1)
