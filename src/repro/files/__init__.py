"""Multi-file archives with a directory file.

The paper's evaluation (Section 6.1) encodes ten images *plus a directory
file* ("containing the names and sizes of all files") into one encoding
unit, giving the directory the highest priority under DnaMapper. This
subpackage implements that container and the robust unpacking the
graceful-degradation experiments need.
"""

from repro.files.archive import (
    ArchiveError,
    FileEntry,
    PackedArchive,
    directory_file_sizes,
    directory_size_bits,
    pack_archive,
    unpack_archive,
    unpack_archive_robust,
)

__all__ = [
    "FileEntry",
    "PackedArchive",
    "ArchiveError",
    "pack_archive",
    "unpack_archive",
    "unpack_archive_robust",
    "directory_size_bits",
    "directory_file_sizes",
]
