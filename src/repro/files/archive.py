"""Archive container: header + directory + concatenated file payloads.

Wire format (big-endian):

======  ======  =================================================
offset  bytes   field
======  ======  =================================================
0       3       magic ``AR1``
3       4       directory length in bytes
7       2       number of files
9..     --      directory: per file u16 name length, UTF-8 name,
                u32 payload size
..      --      payloads, concatenated in directory order
======  ======  =================================================

The directory region (header included) is what DnaMapper stores at the
highest priority; :attr:`PackedArchive.segment_bits` exposes the bit
extents of the directory and of every file so that
:func:`repro.core.ranking.proportional_share_ranking` can be applied
directly. Robust unpacking (:func:`unpack_archive_robust`) tolerates a
corrupted payload region — file boundaries come from the directory, so
corrupt image bytes stay contained in their file — and refuses only when
the directory itself is unusable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence

_MAGIC = b"AR1"
_HEADER = struct.Struct(">3sIH")
_DIR_ENTRY_NAME = struct.Struct(">H")
_DIR_ENTRY_SIZE = struct.Struct(">I")
_MAX_FILES = 65535
_MAX_NAME = 4096


class ArchiveError(Exception):
    """Raised when an archive cannot be parsed."""


@dataclass(frozen=True)
class FileEntry:
    """One named file inside an archive."""

    name: str
    data: bytes


@dataclass(frozen=True)
class PackedArchive:
    """A serialized archive plus the segment map for priority ranking.

    Attributes:
        data: the full serialized archive.
        segment_bits: bit length of each segment — segment 0 is the header
            plus directory, segments 1..n are the file payloads in order.
    """

    data: bytes
    segment_bits: List[int]

    @property
    def directory_segment(self) -> int:
        """Index of the header+directory segment (always 0)."""
        return 0

    @property
    def n_bits(self) -> int:
        return len(self.data) * 8


def pack_archive(files: Sequence[FileEntry]) -> PackedArchive:
    """Serialize files into the archive format with a segment map."""
    if len(files) > _MAX_FILES:
        raise ArchiveError(f"too many files: {len(files)} > {_MAX_FILES}")
    directory = bytearray()
    for entry in files:
        name_bytes = entry.name.encode("utf-8")
        if len(name_bytes) > _MAX_NAME:
            raise ArchiveError(f"file name too long: {entry.name!r}")
        directory += _DIR_ENTRY_NAME.pack(len(name_bytes))
        directory += name_bytes
        directory += _DIR_ENTRY_SIZE.pack(len(entry.data))
    header = _HEADER.pack(_MAGIC, len(directory), len(files))
    payloads = b"".join(entry.data for entry in files)
    data = header + bytes(directory) + payloads
    segment_bits = [(len(header) + len(directory)) * 8]
    segment_bits += [len(entry.data) * 8 for entry in files]
    return PackedArchive(data=data, segment_bits=segment_bits)


def directory_size_bits(data: bytes) -> int:
    """Bit length of the header+directory segment of a serialized archive.

    Used by the staged DnaMapper decode: the directory occupies the
    highest-priority positions, so its extent can be determined from the
    (already reliable) header alone.
    """
    if len(data) < _HEADER.size:
        raise ArchiveError("archive shorter than its header")
    magic, dir_len, _ = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ArchiveError("bad archive magic")
    return (_HEADER.size + dir_len) * 8


def directory_file_sizes(directory_blob: bytes) -> List[int]:
    """File sizes declared by a header+directory blob (payloads absent).

    The staged DnaMapper decode calls this on just the highest-priority
    bits — the header plus directory — to learn every file's size and
    rebuild the proportional-share ranking without stored metadata.
    """
    if len(directory_blob) < _HEADER.size:
        raise ArchiveError("directory blob shorter than the header")
    magic, dir_len, n_files = _HEADER.unpack_from(directory_blob)
    if magic != _MAGIC:
        raise ArchiveError("bad archive magic")
    if n_files > _MAX_FILES:
        raise ArchiveError(f"implausible file count {n_files}")
    end = _HEADER.size + dir_len
    if end > len(directory_blob):
        raise ArchiveError("directory extends past the blob")
    sizes: List[int] = []
    cursor = _HEADER.size
    for _ in range(n_files):
        if cursor + _DIR_ENTRY_NAME.size > end:
            raise ArchiveError("directory truncated")
        (name_len,) = _DIR_ENTRY_NAME.unpack_from(directory_blob, cursor)
        cursor += _DIR_ENTRY_NAME.size + name_len
        if cursor + _DIR_ENTRY_SIZE.size > end:
            raise ArchiveError("directory truncated")
        (size,) = _DIR_ENTRY_SIZE.unpack_from(directory_blob, cursor)
        cursor += _DIR_ENTRY_SIZE.size
        sizes.append(size)
    return sizes


def unpack_archive(data: bytes) -> List[FileEntry]:
    """Strict unpacking; raises :class:`ArchiveError` on any inconsistency."""
    return _unpack(data, strict=True)


def unpack_archive_robust(data: bytes) -> List[FileEntry]:
    """Best-effort unpacking: payloads may be corrupt or truncated.

    The directory must parse (it is stored at the highest reliability);
    payloads are sliced by the directory sizes, zero-padded when the
    stream is short. Corruption inside a payload therefore never leaks
    across file boundaries.
    """
    return _unpack(data, strict=False)


def _unpack(data: bytes, strict: bool) -> List[FileEntry]:
    if len(data) < _HEADER.size:
        raise ArchiveError("archive shorter than its header")
    magic, dir_len, n_files = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ArchiveError("bad archive magic")
    if n_files > _MAX_FILES:
        raise ArchiveError(f"implausible file count {n_files}")
    directory_end = _HEADER.size + dir_len
    if directory_end > len(data):
        raise ArchiveError("directory extends past the archive")

    names: List[str] = []
    sizes: List[int] = []
    cursor = _HEADER.size
    for _ in range(n_files):
        if cursor + _DIR_ENTRY_NAME.size > directory_end:
            raise ArchiveError("directory truncated (name length)")
        (name_len,) = _DIR_ENTRY_NAME.unpack_from(data, cursor)
        cursor += _DIR_ENTRY_NAME.size
        if name_len > _MAX_NAME or cursor + name_len > directory_end:
            raise ArchiveError("directory truncated (name)")
        try:
            name = data[cursor: cursor + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ArchiveError("directory name is not valid UTF-8") from exc
        cursor += name_len
        if cursor + _DIR_ENTRY_SIZE.size > directory_end:
            raise ArchiveError("directory truncated (size)")
        (size,) = _DIR_ENTRY_SIZE.unpack_from(data, cursor)
        cursor += _DIR_ENTRY_SIZE.size
        names.append(name)
        sizes.append(size)
    if cursor != directory_end:
        raise ArchiveError("directory length mismatch")

    entries: List[FileEntry] = []
    offset = directory_end
    for name, size in zip(names, sizes):
        payload = data[offset: offset + size]
        if len(payload) < size:
            if strict:
                raise ArchiveError(f"payload of {name!r} truncated")
            payload = payload + b"\x00" * (size - len(payload))
        entries.append(FileEntry(name=name, data=payload))
        offset += size
    if strict and offset != len(data):
        raise ArchiveError("trailing bytes after the last payload")
    return entries
