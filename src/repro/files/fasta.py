"""FASTA/FASTQ serialization of strands and reads.

Interoperability layer: synthesized strands can be exported for an
external synthesis order, and sequencer output (real or simulated) can be
imported back. Sequence identifiers carry the cluster tag
(``strand_<index>``/``read_<cluster>_<n>``) so perfect clustering
round-trips through the files.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.channel.sequencer import ReadCluster

PathLike = Union[str, Path]
_VALID_SEQUENCE = re.compile(r"^[ACGT]*$")


def write_fasta(path: PathLike, strands: Sequence[str],
                prefix: str = "strand") -> None:
    """Write strands as FASTA records named ``<prefix>_<index>``."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for index, strand in enumerate(strands):
            _check_sequence(strand)
            handle.write(f">{prefix}_{index}\n{strand}\n")


def read_fasta(path: PathLike) -> List[Tuple[str, str]]:
    """Read FASTA records as (name, sequence) pairs.

    Multi-line sequences are concatenated; blank lines are ignored.
    """
    path = Path(path)
    records: List[Tuple[str, str]] = []
    name = None
    chunks: List[str] = []
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append((name, "".join(chunks)))
                name = line[1:].split()[0]
                chunks = []
            else:
                if name is None:
                    raise ValueError("sequence data before any FASTA header")
                _check_sequence(line)
                chunks.append(line)
    if name is not None:
        records.append((name, "".join(chunks)))
    return records


def write_fastq(path: PathLike, clusters: Sequence[ReadCluster],
                quality_char: str = "I") -> None:
    """Write clustered reads as FASTQ, ids ``read_<cluster>_<n>``.

    The simulator has no per-base quality model, so a constant quality
    (default 'I' = Phred 40) is emitted.
    """
    if len(quality_char) != 1:
        raise ValueError("quality_char must be a single character")
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for cluster in clusters:
            for n, read in enumerate(cluster.reads):
                _check_sequence(read)
                handle.write(
                    f"@read_{cluster.source_index}_{n}\n{read}\n+\n"
                    f"{quality_char * len(read)}\n"
                )


def read_fastq(path: PathLike) -> List[Tuple[str, str]]:
    """Read FASTQ records as (name, sequence) pairs (qualities dropped)."""
    path = Path(path)
    records: List[Tuple[str, str]] = []
    with path.open("r", encoding="ascii") as handle:
        lines = [line.strip() for line in handle]
    lines = [line for line in lines if line]
    if len(lines) % 4 != 0:
        raise ValueError("FASTQ file length is not a multiple of 4 lines")
    for i in range(0, len(lines), 4):
        header, sequence, plus, quality = lines[i: i + 4]
        if not header.startswith("@"):
            raise ValueError(f"record {i // 4}: missing @ header")
        if not plus.startswith("+"):
            raise ValueError(f"record {i // 4}: missing + separator")
        if len(quality) != len(sequence):
            raise ValueError(f"record {i // 4}: quality length mismatch")
        _check_sequence(sequence)
        records.append((header[1:].split()[0], sequence))
    return records


def clusters_from_records(
    records: Sequence[Tuple[str, str]], n_strands: int
) -> List[ReadCluster]:
    """Rebuild perfect clusters from ``read_<cluster>_<n>`` record names."""
    buckets: Dict[int, List[Tuple[int, str]]] = {
        index: [] for index in range(n_strands)
    }
    pattern = re.compile(r"^read_(\d+)_(\d+)$")
    for name, sequence in records:
        match = pattern.match(name)
        if not match:
            raise ValueError(f"unrecognized read id {name!r}")
        cluster_index = int(match.group(1))
        read_index = int(match.group(2))
        if cluster_index >= n_strands:
            raise ValueError(f"cluster index {cluster_index} out of range")
        buckets[cluster_index].append((read_index, sequence))
    clusters = []
    for index in range(n_strands):
        ordered = [seq for _, seq in sorted(buckets[index])]
        clusters.append(ReadCluster(source_index=index, reads=ordered))
    return clusters


def _check_sequence(sequence: str) -> None:
    if not _VALID_SEQUENCE.match(sequence):
        raise ValueError(f"invalid DNA sequence {sequence[:20]!r}...")
