"""Sequencing simulation: read clusters and progressive read pools.

The retrieval methodology of the paper's Section 6.1.2 is reproduced here:

* a :class:`SequencingSimulator` turns a list of synthesized strands into
  perfectly-clustered noisy reads (the paper deliberately eliminates
  clustering errors in simulation by tracking each read's source strand);
* a :class:`ReadPool` holds a large pre-generated pool of noisy reads per
  strand so that a coverage sweep can "start at a low coverage and
  progressively add more strands from the pool", exactly as the paper
  evaluates reading cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.channel.coverage import CoverageModel, FixedCoverage
from repro.channel.errors import ErrorModel
from repro.codec.basemap import bases_to_indices
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ReadCluster:
    """Noisy reads known to originate from one source strand.

    Attributes:
        source_index: index of the original strand in the encoded unit.
        reads: noisy copies (possibly empty, i.e. strand dropout).
    """

    source_index: int
    reads: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> int:
        return len(self.reads)

    @property
    def is_lost(self) -> bool:
        """True when the strand received no reads at all (an erasure)."""
        return not self.reads

    def read_indices(self) -> List[np.ndarray]:
        """The reads as symbol-index arrays (what the consensus engines eat)."""
        return [bases_to_indices(read) for read in self.reads]

    def padded_matrix(self, pad: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """The cluster as one ``(n_reads, max_len + pad)`` index matrix.

        An analysis-friendly view using the same convention as the batched
        consensus engine (sentinel -1 past each read's end; ``pad`` appends
        extra sentinel columns). Returns ``(matrix, lengths)``; the matrix
        is empty with zero columns for a lost cluster.
        """
        if pad < 0:
            raise ValueError(f"pad must be non-negative, got {pad}")
        indices = self.read_indices()
        lengths = np.array([len(r) for r in indices], dtype=np.int64)
        width = int(lengths.max()) + pad if len(indices) else 0
        matrix = np.full((len(indices), width), -1, dtype=np.int64)
        for i, read in enumerate(indices):
            matrix[i, : len(read)] = read
        return matrix, lengths


class SequencingSimulator:
    """Generates perfectly-clustered noisy reads for a set of strands."""

    def __init__(
        self,
        error_model: ErrorModel,
        coverage_model: CoverageModel = FixedCoverage(10),
    ) -> None:
        self.error_model = error_model
        self.coverage_model = coverage_model

    def sequence(self, strands: Sequence[str], rng: RngLike = None) -> List[ReadCluster]:
        """Produce one :class:`ReadCluster` per input strand."""
        generator = ensure_rng(rng)
        counts = self.coverage_model.sample(len(strands), generator)
        clusters = []
        for index, (strand, count) in enumerate(zip(strands, counts)):
            reads = self.error_model.apply_many(strand, int(count), generator)
            clusters.append(ReadCluster(source_index=index, reads=reads))
        return clusters


class ReadPool:
    """A pre-generated pool of noisy reads per strand for coverage sweeps.

    Generating the pool once and slicing prefixes keeps a sweep's read sets
    nested (coverage 6 uses exactly the reads of coverage 5 plus one more),
    mirroring the paper's methodology and eliminating sweep-order noise.
    """

    def __init__(
        self,
        strands: Sequence[str],
        error_model: ErrorModel,
        max_coverage: int,
        rng: RngLike = None,
        dispersion_shape: float = None,
    ) -> None:
        """Pre-generate ``max_coverage`` noisy reads for each strand.

        Args:
            strands: the synthesized DNA strings.
            error_model: channel noise to apply to each read.
            max_coverage: pool depth per strand (the sweep's upper bound).
            rng: random source.
            dispersion_shape: when set, each strand gets a Gamma(shape,
                1/shape)-distributed weight (mean 1.0) sampled once, and the
                read count at mean coverage ``c`` is ``round(c * weight)``.
                Small clusters and dropouts then persist coherently across
                the whole sweep, matching the paper's Gamma coverage model.
                ``None`` gives every strand exactly ``round(c)`` reads.
        """
        if max_coverage <= 0:
            raise ValueError(f"max_coverage must be positive, got {max_coverage}")
        generator = ensure_rng(rng)
        self.max_coverage = max_coverage
        self._pools: List[List[str]] = [
            error_model.apply_many(strand, max_coverage, generator)
            for strand in strands
        ]
        if dispersion_shape is None:
            self._weights = np.ones(len(strands))
        else:
            if dispersion_shape <= 0:
                raise ValueError(
                    f"dispersion_shape must be positive, got {dispersion_shape}"
                )
            self._weights = generator.gamma(
                dispersion_shape, 1.0 / dispersion_shape, size=len(strands)
            )

    def __len__(self) -> int:
        return len(self._pools)

    def clusters_at(self, coverage: float) -> List[ReadCluster]:
        """Return clusters using the first ``coverage``-worth of pool reads."""
        if coverage < 0:
            raise ValueError(f"coverage must be non-negative, got {coverage}")
        clusters = []
        for index, pool in enumerate(self._pools):
            count = int(round(coverage * self._weights[index]))
            count = min(count, len(pool))
            clusters.append(ReadCluster(source_index=index, reads=pool[:count]))
        return clusters
