"""Sequencing simulation: read clusters and progressive read pools.

The retrieval methodology of the paper's Section 6.1.2 is reproduced here:

* a :class:`SequencingSimulator` turns a list of synthesized strands into
  perfectly-clustered noisy reads (the paper deliberately eliminates
  clustering errors in simulation by tracking each read's source strand);
* a :class:`ReadPool` holds a large pre-generated pool of noisy reads per
  strand so that a coverage sweep can "start at a low coverage and
  progressively add more strands from the pool", exactly as the paper
  evaluates reading cost.

Both are thin façades over the columnar read plane: reads are generated
by :class:`repro.channel.engine.BatchedChannelEngine` in one vectorized
pass and stored as a :class:`repro.channel.readbatch.ReadBatch`;
:class:`ReadCluster` objects are zero-copy views into that batch whose
``reads`` strings only materialize if someone asks for them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.coverage import CoverageModel, FixedCoverage
from repro.channel.engine import BatchedChannelEngine
from repro.channel.errors import ErrorModel
from repro.channel.readbatch import ReadBatch
from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.utils.rng import RngLike, ensure_rng


class ReadCluster:
    """Noisy reads known to originate from one source strand.

    Backed either by ACGT strings (the historical construction, still the
    right edge format for files and tests) or by symbol-index arrays
    (batch views from the columnar read plane). Each representation is
    derived lazily from the other and cached, so the decode hot path never
    touches strings and the string edges never see arrays.

    Attributes:
        source_index: index of the original strand in the encoded unit.
        reads: noisy copies (possibly empty, i.e. strand dropout),
            decoded lazily when array-backed.
    """

    __slots__ = ("source_index", "_strings", "_arrays")

    def __init__(
        self, source_index: int, reads: Optional[List[str]] = None
    ) -> None:
        self.source_index = source_index
        self._strings: Optional[List[str]] = (
            list(reads) if reads is not None else []
        )
        self._arrays: Optional[List[np.ndarray]] = None

    @classmethod
    def from_arrays(
        cls, source_index: int, arrays: Sequence[np.ndarray]
    ) -> "ReadCluster":
        """Build an array-backed cluster (e.g. a zero-copy batch view)."""
        cluster = cls(source_index)
        cluster._strings = None
        cluster._arrays = list(arrays)
        return cluster

    @property
    def reads(self) -> List[str]:
        """The reads as ACGT strings (decoded on first access).

        Once decoded, the string list becomes the cluster's authoritative
        backing (mutations to it are honored, as with the historical
        plain-list attribute).
        """
        if self._strings is None:
            self._strings = [indices_to_bases(a) for a in self._arrays]
        return self._strings

    @property
    def coverage(self) -> int:
        backing = self._arrays if self._strings is None else self._strings
        return len(backing)

    @property
    def is_lost(self) -> bool:
        """True when the strand received no reads at all (an erasure)."""
        return self.coverage == 0

    def __repr__(self) -> str:
        return (f"ReadCluster(source_index={self.source_index}, "
                f"coverage={self.coverage})")

    def read_indices(self) -> List[np.ndarray]:
        """The reads as symbol-index arrays (what the consensus engines eat).

        String-backed clusters convert on every call (the ``reads`` list
        is caller-visible and may be mutated, so a cache would go stale);
        array-backed batch views return their zero-copy arrays directly.
        """
        if self._strings is not None:
            return [bases_to_indices(read) for read in self._strings]
        return list(self._arrays)

    def batch_view(self) -> ReadBatch:
        """This cluster as a single-cluster :class:`ReadBatch`."""
        return ReadBatch.from_arrays(
            [self.read_indices()], source_indices=[self.source_index]
        )

    def padded_matrix(self, pad: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """The cluster as one ``(n_reads, max_len + pad)`` index matrix.

        An analysis-friendly view using the same convention as the batched
        consensus engine (sentinel -1 past each read's end; ``pad`` appends
        extra sentinel columns), built by the vectorized
        :meth:`ReadBatch.padded_matrix` gather rather than a per-read fill
        loop. Returns ``(matrix, lengths)``; the matrix is empty with zero
        columns for a lost cluster.
        """
        return self.batch_view().padded_matrix(pad)


class SequencingSimulator:
    """Generates perfectly-clustered noisy reads for a set of strands."""

    def __init__(
        self,
        error_model: ErrorModel,
        coverage_model: CoverageModel = FixedCoverage(10),
    ) -> None:
        self.error_model = error_model
        self.coverage_model = coverage_model

    def sequence_batch(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        rng: RngLike = None,
    ) -> ReadBatch:
        """All clusters' reads as one columnar :class:`ReadBatch` — the
        representation ``pipeline.receive`` consumes without any string
        round-trip. The engine is built per call, so reassigning
        ``error_model``/``coverage_model`` between calls is honored."""
        engine = BatchedChannelEngine(
            sequencing_model=self.error_model,
            coverage_model=self.coverage_model,
        )
        return engine.sequence(strands, rng)

    def sequence(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        rng: RngLike = None,
    ) -> List[ReadCluster]:
        """Produce one :class:`ReadCluster` per input strand (batch views)."""
        return self.sequence_batch(strands, rng).to_clusters()

    def sequence_store(
        self, image, rng: RngLike = None, labeled: bool = True
    ) -> ReadBatch:
        """One spanning :class:`ReadBatch` for a whole multi-unit store.

        ``image`` is a :class:`~repro.core.store.StoreImage` (anything
        with a ``units`` list of ``strands``-bearing objects): every
        strand of every unit goes through **one** engine call, and the
        resulting batch lays the units' clusters back to back — cluster
        slots ``[u * n_columns, (u + 1) * n_columns)`` belong to unit
        ``u`` — which is exactly the spanning form
        :meth:`~repro.core.store.DnaStore.decode` consumes whole.

        With ``labeled=False`` the per-strand ground-truth labels are
        discarded: the result has one cluster per *unit* — the unit's
        amplification pool, reads shuffled — because units are separately
        amplifiable (their own primer pairs) while strand attribution
        within a pool is exactly what sequencing does not provide. That
        is the realistic retrieval workload: recover the clusters with
        :class:`~repro.cluster.batched.BatchedGreedyClusterer` (or hand
        the pool straight to
        :meth:`~repro.core.store.DnaStore.decode_pool`).
        """
        generator = ensure_rng(rng)
        strands = [
            strand for unit in image.units for strand in unit.strands
        ]
        batch = self.sequence_batch(strands, generator)
        if labeled:
            return batch
        counts = np.array([len(unit.strands) for unit in image.units],
                          dtype=np.int64)
        boundaries = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        return batch.pooled(boundaries, rng=generator)


class ReadPool:
    """A pre-generated pool of noisy reads per strand for coverage sweeps.

    Generating the pool once and slicing prefixes keeps a sweep's read sets
    nested (coverage 6 uses exactly the reads of coverage 5 plus one more),
    mirroring the paper's methodology and eliminating sweep-order noise.
    The pool is stored columnar (one :class:`ReadBatch` holding every read
    of every strand at the maximum coverage); prefix selection at a given
    coverage is a vectorized row selection sharing the pool's buffer.
    """

    def __init__(
        self,
        strands: Sequence[str],
        error_model: ErrorModel,
        max_coverage: int,
        rng: RngLike = None,
        dispersion_shape: Optional[float] = None,
    ) -> None:
        """Pre-generate ``max_coverage`` noisy reads for each strand.

        Args:
            strands: the synthesized DNA strings.
            error_model: channel noise to apply to each read.
            max_coverage: pool depth per strand (the sweep's upper bound).
            rng: random source.
            dispersion_shape: when set, each strand gets a Gamma(shape,
                1/shape)-distributed weight (mean 1.0) sampled once, and the
                read count at mean coverage ``c`` is ``round(c * weight)``.
                Small clusters and dropouts then persist coherently across
                the whole sweep, matching the paper's Gamma coverage model.
                ``None`` gives every strand exactly ``round(c)`` reads.
        """
        if max_coverage <= 0:
            raise ValueError(f"max_coverage must be positive, got {max_coverage}")
        generator = ensure_rng(rng)
        self.max_coverage = max_coverage
        engine = BatchedChannelEngine(sequencing_model=error_model)
        self._batch = engine.sample_pool(strands, max_coverage, generator)
        n_strands = self._batch.n_clusters
        if dispersion_shape is None:
            self._weights = np.ones(n_strands)
        else:
            if dispersion_shape <= 0:
                raise ValueError(
                    f"dispersion_shape must be positive, got {dispersion_shape}"
                )
            self._weights = generator.gamma(
                dispersion_shape, 1.0 / dispersion_shape, size=n_strands
            )

    @classmethod
    def for_store(
        cls,
        image,
        error_model: ErrorModel,
        max_coverage: int,
        rng: RngLike = None,
        dispersion_shape: Optional[float] = None,
    ) -> "ReadPool":
        """A pool spanning every strand of a multi-unit store.

        ``image`` is a :class:`~repro.core.store.StoreImage`; the pool
        holds all units' strands back to back, so ``batch_at(coverage)``
        emits the spanning :class:`ReadBatch` that
        :meth:`~repro.core.store.DnaStore.decode` consumes in one pass —
        multi-unit coverage sweeps stay nested and zero-copy exactly like
        single-unit ones.
        """
        strands = [
            strand for unit in image.units for strand in unit.strands
        ]
        return cls(strands, error_model, max_coverage, rng=rng,
                   dispersion_shape=dispersion_shape)

    def __len__(self) -> int:
        return self._batch.n_clusters

    def _counts_at(self, coverage: float) -> np.ndarray:
        if coverage < 0:
            raise ValueError(f"coverage must be non-negative, got {coverage}")
        counts = np.round(coverage * self._weights).astype(np.int64)
        return np.minimum(counts, self.max_coverage)

    def batch_at(
        self,
        coverage: float,
        first_cluster: int = 0,
        n_clusters: Optional[int] = None,
    ) -> ReadBatch:
        """The first ``coverage``-worth of pool reads, columnar.

        ``first_cluster``/``n_clusters`` carve out a sub-range of strands
        (used when one mega-pool holds several trials' units back to
        back). Zero-copy over the pool buffer.
        """
        counts = self._counts_at(coverage)
        batch = self._batch
        if first_cluster != 0 or n_clusters is not None:
            stop = (batch.n_clusters if n_clusters is None
                    else first_cluster + n_clusters)
            batch = batch.select_clusters(first_cluster, stop)
            counts = counts[first_cluster:stop]
        return batch.select_prefix(counts)

    def clusters_at(self, coverage: float) -> List[ReadCluster]:
        """Return clusters using the first ``coverage``-worth of pool reads."""
        return self.batch_at(coverage).to_clusters()
