"""Two-stage channel: synthesis errors, then sequencing errors.

The paper's Section 8 distinguishes the two physical error sources:

* **synthesis** (writing) injects errors into the *molecule itself* —
  every copy amplified from it, and therefore every read in its cluster,
  shares the same mutation. Consensus over many reads cannot vote these
  away; only the cross-molecule ECC layer can. Conventional synthesis is
  tuned to keep this rare, while the emerging enzymatic synthesis trades
  exactly this guarantee for cost ("ACGT can be synthesized as AAACTT").
* **sequencing** (reading) injects independent errors per read — the
  noise consensus is designed to cancel.

:class:`SynthesisSimulator` applies a per-molecule error model once, and
:class:`TwoStageSequencer` composes it with the ordinary per-read
sequencing channel. The ablation benchmark shows the consequence: raising
coverage drives sequencing-induced failures to zero but leaves a
synthesis-induced floor that only redundancy can cross.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.channel.coverage import CoverageModel, FixedCoverage
from repro.channel.errors import ErrorModel
from repro.channel.sequencer import ReadCluster, SequencingSimulator
from repro.utils.rng import RngLike, ensure_rng


class SynthesisSimulator:
    """Mutates each designed strand once, as synthesis would.

    Args:
        error_model: per-position error probabilities applied one time per
            molecule (use :func:`repro.channel.profiles.
            enzymatic_synthesis_profile` for the indel-heavy regime).
    """

    def __init__(self, error_model: ErrorModel) -> None:
        self.error_model = error_model

    def synthesize(self, strands: Sequence[str], rng: RngLike = None) -> List[str]:
        """Return the physically synthesized (possibly mutated) molecules."""
        generator = ensure_rng(rng)
        return [self.error_model.apply(strand, generator) for strand in strands]


class TwoStageSequencer:
    """Synthesis followed by sequencing: the full write+read channel.

    Args:
        synthesis_model: per-molecule (correlated) error model.
        sequencing_model: per-read (independent) error model.
        coverage_model: reads per cluster.
    """

    def __init__(
        self,
        synthesis_model: ErrorModel,
        sequencing_model: ErrorModel,
        coverage_model: CoverageModel = FixedCoverage(10),
    ) -> None:
        self.synthesis = SynthesisSimulator(synthesis_model)
        self.sequencer = SequencingSimulator(sequencing_model, coverage_model)

    def sequence(self, strands: Sequence[str], rng: RngLike = None) -> List[ReadCluster]:
        """Synthesize every strand once, then sequence the molecules."""
        generator = ensure_rng(rng)
        molecules = self.synthesis.synthesize(strands, generator)
        return self.sequencer.sequence(molecules, generator)
