"""Two-stage channel: synthesis errors, then sequencing errors.

The paper's Section 8 distinguishes the two physical error sources:

* **synthesis** (writing) injects errors into the *molecule itself* —
  every copy amplified from it, and therefore every read in its cluster,
  shares the same mutation. Consensus over many reads cannot vote these
  away; only the cross-molecule ECC layer can. Conventional synthesis is
  tuned to keep this rare, while the emerging enzymatic synthesis trades
  exactly this guarantee for cost ("ACGT can be synthesized as AAACTT").
* **sequencing** (reading) injects independent errors per read — the
  noise consensus is designed to cancel.

:class:`SynthesisSimulator` applies a per-molecule error model once, and
:class:`TwoStageSequencer` composes it with the ordinary per-read
sequencing channel. Both ride the batched channel engine: the synthesis
stage mutates every molecule in one vectorized IDS pass, and the two-stage
sequencer is a façade over a :class:`~repro.channel.engine.
BatchedChannelEngine` configured with both models. The ablation benchmark
shows the consequence: raising coverage drives sequencing-induced failures
to zero but leaves a synthesis-induced floor that only redundancy can
cross.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.channel.coverage import CoverageModel, FixedCoverage
from repro.channel.engine import BatchedChannelEngine, as_template_set, batched_ids_pass
from repro.channel.errors import ErrorModel
from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadCluster
from repro.codec.basemap import indices_to_bases
from repro.utils.rng import RngLike, ensure_rng


class SynthesisSimulator:
    """Mutates each designed strand once, as synthesis would.

    Args:
        error_model: per-position error probabilities applied one time per
            molecule (use :func:`repro.channel.profiles.
            enzymatic_synthesis_profile` for the indel-heavy regime).
    """

    def __init__(self, error_model: ErrorModel) -> None:
        self.error_model = error_model

    def synthesize(
        self, strands: Sequence[str], rng: RngLike = None
    ) -> List[str]:
        """Return the physically synthesized (possibly mutated) molecules.

        All molecules are mutated in one batched IDS pass (one read per
        strand); strings in, strings out — this is a write-side edge, not
        the decode hot path.
        """
        generator = ensure_rng(rng)
        buffer, offsets, lengths = as_template_set(strands)
        out, out_lengths = batched_ids_pass(
            buffer, offsets, lengths,
            np.arange(lengths.size, dtype=np.int64),
            self.error_model, generator,
        )
        starts = np.cumsum(out_lengths) - out_lengths
        return [
            indices_to_bases(out[start: start + length])
            for start, length in zip(starts, out_lengths)
        ]


class TwoStageSequencer:
    """Synthesis followed by sequencing: the full write+read channel.

    Args:
        synthesis_model: per-molecule (correlated) error model.
        sequencing_model: per-read (independent) error model.
        coverage_model: reads per cluster.
    """

    def __init__(
        self,
        synthesis_model: ErrorModel,
        sequencing_model: ErrorModel,
        coverage_model: CoverageModel = FixedCoverage(10),
    ) -> None:
        self.synthesis_model = synthesis_model
        self.sequencing_model = sequencing_model
        self.coverage_model = coverage_model

    def sequence_batch(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        rng: RngLike = None,
    ) -> ReadBatch:
        """Synthesize every strand once, then sequence, all columnar.

        The engine is built per call, so reassigning any of the three
        model attributes between calls is honored.
        """
        engine = BatchedChannelEngine(
            sequencing_model=self.sequencing_model,
            coverage_model=self.coverage_model,
            synthesis_model=self.synthesis_model,
        )
        return engine.sequence(strands, rng)

    def sequence(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        rng: RngLike = None,
    ) -> List[ReadCluster]:
        """Synthesize every strand once, then sequence the molecules."""
        return self.sequence_batch(strands, rng).to_clusters()
