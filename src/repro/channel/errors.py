"""The insertion/deletion/substitution (IDS) error model of Section 3.

For an original strand ``s`` of length L, each position ``i`` independently
experiences exactly one of four outcomes:

* deletion (probability ``p_del``): ``s[i]`` is dropped;
* insertion (probability ``p_ins``): a base chosen uniformly from
  {A,C,G,T} is emitted *before* ``s[i]``, which is kept;
* substitution (probability ``p_sub``): ``s[i]`` is replaced by a base
  chosen uniformly from the other three;
* no error (probability ``1 - p_del - p_ins - p_sub``).

The paper's default is ``p_del = p_ins = p_sub = p/3``; Figure 5's
indel-only and substitution-only lines use custom breakdowns, which
:meth:`ErrorModel.with_breakdown` supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class ErrorModel:
    """Per-position IDS error probabilities.

    Attributes:
        p_insertion: probability of an insertion event at each position.
        p_deletion: probability of a deletion event at each position.
        p_substitution: probability of a substitution event at each position.
    """

    p_insertion: float
    p_deletion: float
    p_substitution: float

    def __post_init__(self) -> None:
        check_probability(self.p_insertion, "p_insertion")
        check_probability(self.p_deletion, "p_deletion")
        check_probability(self.p_substitution, "p_substitution")
        if self.total_rate > 1.0:
            raise ValueError(
                f"total error rate {self.total_rate} exceeds 1.0"
            )

    @classmethod
    def uniform(cls, total_rate: float) -> "ErrorModel":
        """The paper's default: ``total_rate`` split equally across types."""
        check_probability(total_rate, "total_rate")
        share = total_rate / 3.0
        return cls(p_insertion=share, p_deletion=share, p_substitution=share)

    @classmethod
    def with_breakdown(
        cls, total_rate: float, ins_frac: float, del_frac: float, sub_frac: float
    ) -> "ErrorModel":
        """Split ``total_rate`` according to the given type fractions."""
        check_probability(total_rate, "total_rate")
        fractions = np.array([ins_frac, del_frac, sub_frac], dtype=float)
        if np.any(fractions < 0) or not np.isclose(fractions.sum(), 1.0):
            raise ValueError("type fractions must be non-negative and sum to 1")
        return cls(
            p_insertion=total_rate * ins_frac,
            p_deletion=total_rate * del_frac,
            p_substitution=total_rate * sub_frac,
        )

    @classmethod
    def substitutions_only(cls, total_rate: float) -> "ErrorModel":
        """Substitution-only channel (the paper's no-skew control)."""
        return cls(p_insertion=0.0, p_deletion=0.0, p_substitution=total_rate)

    @classmethod
    def indels_only(cls, ins_rate: float, del_rate: float) -> "ErrorModel":
        """Insertions + deletions without substitutions (Fig 5, purple line)."""
        return cls(p_insertion=ins_rate, p_deletion=del_rate, p_substitution=0.0)

    @property
    def total_rate(self) -> float:
        """Probability that a position suffers any error."""
        return self.p_insertion + self.p_deletion + self.p_substitution

    @property
    def is_noiseless(self) -> bool:
        return self.total_rate == 0.0

    def apply(self, strand: str, rng: RngLike = None) -> str:
        """Return one noisy copy of ``strand``."""
        return indices_to_bases(self.apply_indices(bases_to_indices(strand), rng))

    def apply_indices(
        self, indices: np.ndarray, rng: RngLike = None, n_alphabet: int = 4
    ) -> np.ndarray:
        """Vectorized noisy-copy generation over symbol-index arrays.

        ``n_alphabet`` defaults to 4 (DNA); the binary analyses of the
        paper's Section 3.2 pass 2.
        """
        if n_alphabet < 2:
            raise ValueError(f"n_alphabet must be >= 2, got {n_alphabet}")
        generator = ensure_rng(rng)
        indices = np.asarray(indices, dtype=np.uint8)
        length = indices.size
        if length == 0 or self.is_noiseless:
            return indices.copy()
        draws = generator.random(length)
        deleted = draws < self.p_deletion
        inserted = (draws >= self.p_deletion) & (
            draws < self.p_deletion + self.p_insertion
        )
        substituted = (
            draws >= self.p_deletion + self.p_insertion
        ) & (draws < self.total_rate)

        emitted = indices.copy()
        n_subs = int(substituted.sum())
        if n_subs:
            # Adding 1..n-1 mod n guarantees a *different* symbol.
            offsets = generator.integers(1, n_alphabet, size=n_subs, dtype=np.uint8)
            emitted[substituted] = (emitted[substituted] + offsets) % n_alphabet

        # Each position emits 0 (deletion), 1 (keep/substitute) or 2
        # (insertion: the random base, then the original) output bases.
        counts = np.ones(length, dtype=np.int64)
        counts[deleted] = 0
        counts[inserted] = 2
        starts = np.cumsum(counts) - counts
        out = np.zeros(int(counts.sum()), dtype=np.uint8)
        survivors = ~deleted
        out[starts[survivors] + counts[survivors] - 1] = emitted[survivors]
        n_ins = int(inserted.sum())
        if n_ins:
            out[starts[inserted]] = generator.integers(
                0, n_alphabet, size=n_ins, dtype=np.uint8
            )
        return out

    def apply_many(
        self, strand: str, n_copies: int, rng: RngLike = None
    ) -> List[str]:
        """Generate ``n_copies`` independent noisy copies of one strand.

        This is the per-read *reference* path (one RNG draw per copy); the
        batched engine in :mod:`repro.channel.engine` emits whole batches
        in one pass and is pinned to :meth:`apply_indices` by the
        differential suite.
        """
        generator = ensure_rng(rng)
        indices = bases_to_indices(strand)
        return [
            indices_to_bases(self.apply_indices(indices, generator))
            for _ in range(n_copies)
        ]
