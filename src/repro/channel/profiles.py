"""Named channel profiles for the sequencing technologies the paper cites.

Error-rate and indel-fraction figures come from the paper's Section 8
("Breakdown of Error Types" / "Realistic Error Rates"):

* Illumina NGS workflows: ~1% total error, 25-30% of errors are indels.
* Nanopore workflows: 12-15% total error, over 60% indels.
* Enzymatic synthesis (emerging): indel-dominated, rates possibly over 30%.
* The wetlab validation in the paper measured ~0.3% with NGS.
"""

from __future__ import annotations

from repro.channel.errors import ErrorModel


def uniform_profile(total_rate: float) -> ErrorModel:
    """The paper's simulation default: equal thirds ins/del/sub."""
    return ErrorModel.uniform(total_rate)


def illumina_profile(total_rate: float = 0.01) -> ErrorModel:
    """Illumina NGS: low error, ~27% indels (split evenly), rest substitutions."""
    return ErrorModel.with_breakdown(
        total_rate, ins_frac=0.135, del_frac=0.135, sub_frac=0.73
    )


def nanopore_profile(total_rate: float = 0.13) -> ErrorModel:
    """Nanopore: high error, >60% indels."""
    return ErrorModel.with_breakdown(
        total_rate, ins_frac=0.30, del_frac=0.32, sub_frac=0.38
    )


def enzymatic_synthesis_profile(total_rate: float = 0.30) -> ErrorModel:
    """Emerging enzymatic synthesis: indel-dominated and very noisy."""
    return ErrorModel.with_breakdown(
        total_rate, ins_frac=0.45, del_frac=0.40, sub_frac=0.15
    )
