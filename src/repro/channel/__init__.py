"""DNA channel simulation: IDS errors, coverage, and sequencing.

Implements the paper's error model (Section 3): each position of a strand
independently suffers an insertion, deletion, or substitution with total
probability ``p`` (split uniformly by default, configurable otherwise), and
its retrieval model (Section 6.1.2): per-cluster read counts follow a Gamma
distribution around the target sequencing coverage, and read pools allow
progressively increasing coverage without regenerating reads.

The data plane is columnar: :class:`~repro.channel.engine.
BatchedChannelEngine` emits every read of every strand in one vectorized
IDS pass into a :class:`~repro.channel.readbatch.ReadBatch` (flat base
buffer + per-read offsets), which the consensus engines consume without
ever materializing a DNA string; ``SequencingSimulator``, ``ReadPool`` and
``TwoStageSequencer`` are façades over the engine.
"""

from repro.channel.errors import ErrorModel
from repro.channel.coverage import CoverageModel, FixedCoverage, GammaCoverage
from repro.channel.engine import (
    BatchedChannelEngine,
    ErrorRateMap,
    as_template_set,
    batched_ids_pass,
)
from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadCluster, ReadPool, SequencingSimulator
from repro.channel.synthesis import SynthesisSimulator, TwoStageSequencer
from repro.channel.profiles import (
    enzymatic_synthesis_profile,
    illumina_profile,
    nanopore_profile,
    uniform_profile,
)

__all__ = [
    "ErrorModel",
    "ErrorRateMap",
    "CoverageModel",
    "FixedCoverage",
    "GammaCoverage",
    "BatchedChannelEngine",
    "ReadBatch",
    "ReadCluster",
    "ReadPool",
    "SequencingSimulator",
    "SynthesisSimulator",
    "TwoStageSequencer",
    "as_template_set",
    "batched_ids_pass",
    "illumina_profile",
    "nanopore_profile",
    "enzymatic_synthesis_profile",
    "uniform_profile",
]
