"""DNA channel simulation: IDS errors, coverage, and sequencing.

Implements the paper's error model (Section 3): each position of a strand
independently suffers an insertion, deletion, or substitution with total
probability ``p`` (split uniformly by default, configurable otherwise), and
its retrieval model (Section 6.1.2): per-cluster read counts follow a Gamma
distribution around the target sequencing coverage, and read pools allow
progressively increasing coverage without regenerating reads.
"""

from repro.channel.errors import ErrorModel
from repro.channel.coverage import CoverageModel, FixedCoverage, GammaCoverage
from repro.channel.sequencer import ReadCluster, ReadPool, SequencingSimulator
from repro.channel.synthesis import SynthesisSimulator, TwoStageSequencer
from repro.channel.profiles import (
    enzymatic_synthesis_profile,
    illumina_profile,
    nanopore_profile,
    uniform_profile,
)

__all__ = [
    "ErrorModel",
    "CoverageModel",
    "FixedCoverage",
    "GammaCoverage",
    "ReadCluster",
    "ReadPool",
    "SequencingSimulator",
    "SynthesisSimulator",
    "TwoStageSequencer",
    "illumina_profile",
    "nanopore_profile",
    "enzymatic_synthesis_profile",
    "uniform_profile",
]
