"""Batched channel simulation: the whole IDS channel in one vectorized pass.

The per-read reference path (:meth:`repro.channel.errors.ErrorModel.
apply_indices` in a Python loop) draws randomness and assembles output one
noisy copy at a time. The engine here instead simulates *all reads of all
strands at once*: the emitted bases of the entire batch live in one flat
buffer, a single RNG draw covers every template base, and the variable-
length outputs are assembled with a segmented cumulative sum. The decision
logic per base is bit-identical to the reference — the differential suite
in ``tests/channel/test_engine.py`` replays the engine's RNG stream
through per-read reference calls and requires byte-equal reads.

RNG contract (what the differential tests rely on): for one IDS pass over
``total`` template bases the engine consumes, in order,

1. ``rng.random(total)`` — the per-base event draw;
2. ``rng.integers(1, n_alphabet, size=n_subs, dtype=uint8)`` — substitution
   offsets, in base order;
3. ``rng.integers(0, n_alphabet, size=n_ins, dtype=uint8)`` — inserted
   bases, in base order.

On top of the raw pass, :class:`BatchedChannelEngine` composes the pieces
of the paper's Section 6 methodology: coverage sampling (how many reads
each strand receives), the two-stage synthesis+sequencing channel of
Section 8 (synthesis errors mutate the molecule once; every read inherits
them), and per-strand/per-position error-rate maps
(:class:`ErrorRateMap`) for reliability-skew scenarios where the error
rate varies along the strand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.coverage import CoverageModel, FixedCoverage
from repro.channel.errors import ErrorModel
from repro.channel.readbatch import ReadBatch
from repro.codec.basemap import bases_to_indices
from repro.observability.trace import get_tracer
from repro.utils.rng import RngLike, ensure_rng

#: Channel stages accept either a uniform per-position model or a
#: positional rate map.
RateSpec = Union[ErrorModel, "ErrorRateMap"]


@dataclass(frozen=True)
class ErrorRateMap:
    """Per-position (optionally per-strand) IDS error probabilities.

    Each attribute is either a ``(length,)`` array shared by every strand
    or an ``(n_strands, length)`` array with one row per strand; the three
    must share one shape. ``length`` must cover the longest template the
    map is applied to.

    Attributes:
        p_insertion: insertion probability per (strand,) position.
        p_deletion: deletion probability per (strand,) position.
        p_substitution: substitution probability per (strand,) position.
    """

    p_insertion: np.ndarray
    p_deletion: np.ndarray
    p_substitution: np.ndarray

    def __post_init__(self) -> None:
        for name in ("p_insertion", "p_deletion", "p_substitution"):
            array = np.asarray(getattr(self, name), dtype=np.float64)
            if array.ndim not in (1, 2):
                raise ValueError(f"{name} must be 1-D or 2-D")
            object.__setattr__(self, name, array)
        if not (self.p_insertion.shape == self.p_deletion.shape
                == self.p_substitution.shape):
            raise ValueError("rate maps must share one shape")
        total = self.p_insertion + self.p_deletion + self.p_substitution
        if np.any(self.p_insertion < 0) or np.any(self.p_deletion < 0) \
                or np.any(self.p_substitution < 0) or np.any(total > 1.0):
            raise ValueError("rates must be >= 0 with total <= 1 everywhere")

    @classmethod
    def scaled(cls, model: ErrorModel, weights: np.ndarray) -> "ErrorRateMap":
        """Scale a uniform model by per-position (or per-strand-position)
        weights — e.g. a ramp modeling end-of-strand degradation."""
        weights = np.asarray(weights, dtype=np.float64)
        return cls(
            p_insertion=model.p_insertion * weights,
            p_deletion=model.p_deletion * weights,
            p_substitution=model.p_substitution * weights,
        )

    @property
    def length(self) -> int:
        """Number of strand positions the map covers."""
        return int(self.p_insertion.shape[-1])

    def per_base(
        self, strand_of_base: np.ndarray, position_of_base: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve the three rates for each flat base of a batch.

        Positions beyond the map's range use the last position's rates:
        a synthesis stage with insertions can lengthen a molecule past
        the designed strand length the map was built for, and those
        overflow bases are physically "end of strand" conditions. (The
        engine validates the map against the *designed* template lengths
        up front, so a map that is simply too short still errors.)
        """
        position_of_base = np.minimum(position_of_base, self.length - 1)
        if self.p_insertion.ndim == 1:
            sel = (position_of_base,)
        else:
            if int(strand_of_base.max(initial=-1)) >= self.p_insertion.shape[0]:
                raise ValueError("rate map has fewer rows than strands")
            sel = (strand_of_base, position_of_base)
        return (self.p_deletion[sel], self.p_insertion[sel],
                self.p_substitution[sel])


# ---------------------------------------------------------------------------
# Columnar template sets and the raw batched IDS pass
# ---------------------------------------------------------------------------

def as_template_set(
    strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize strands into a columnar ``(buffer, offsets, lengths)`` set.

    Accepts ACGT strings (the one string->array conversion of the whole
    read plane), per-strand index arrays, or a 2-D index array of equal-
    length strands.
    """
    if isinstance(strands, np.ndarray) and strands.ndim == 2:
        n, length = strands.shape
        buffer = np.ascontiguousarray(strands, dtype=np.uint8).reshape(-1)
        lengths = np.full(n, length, dtype=np.int64)
        return buffer, np.arange(n, dtype=np.int64) * length, lengths
    arrays = [
        bases_to_indices(s) if isinstance(s, str)
        else np.asarray(s, dtype=np.uint8)
        for s in strands
    ]
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    buffer = (np.concatenate(arrays) if arrays
              else np.zeros(0, dtype=np.uint8))
    return buffer, np.cumsum(lengths) - lengths, lengths


def batched_ids_pass(
    template_buffer: np.ndarray,
    template_offsets: np.ndarray,
    template_lengths: np.ndarray,
    template_of_read: np.ndarray,
    rates: RateSpec,
    rng: RngLike = None,
    n_alphabet: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """One vectorized IDS pass emitting every requested read.

    Read ``i`` is a noisy copy of template ``template_of_read[i]``. Returns
    ``(out_buffer, out_lengths)``: the emitted bases of all reads back to
    back (read order, ``uint8``) and each read's emitted length.
    """
    if n_alphabet < 2:
        raise ValueError(f"n_alphabet must be >= 2, got {n_alphabet}")
    generator = ensure_rng(rng)
    template_of_read = np.asarray(template_of_read, dtype=np.int64)
    n_reads = template_of_read.size
    in_lengths = template_lengths[template_of_read]
    total = int(in_lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.uint8), np.zeros(n_reads, dtype=np.int64)

    # Flat-base geometry. The per-base read/position bookkeeping is only
    # needed for positional rate maps; the scalar-model path just gathers
    # the input bases (one row gather when all templates share a length).
    in_starts = np.cumsum(in_lengths) - in_lengths
    length0 = int(template_lengths[0]) if template_lengths.size else 0
    uniform = (
        template_lengths.size > 0
        and template_buffer.size == template_lengths.size * length0
        and np.all(template_lengths == length0)
        and np.array_equal(
            template_offsets,
            np.arange(template_lengths.size, dtype=np.int64) * length0,
        )
    )
    if uniform and length0 > 0:
        inp = template_buffer.reshape(-1, length0)[template_of_read].reshape(-1)
    else:
        read_of_base = np.repeat(
            np.arange(n_reads, dtype=np.int64), in_lengths
        )
        position = np.arange(total, dtype=np.int64) - in_starts[read_of_base]
        strand_of_base = template_of_read[read_of_base]
        inp = template_buffer[template_offsets[strand_of_base] + position]

    if isinstance(rates, ErrorRateMap):
        if uniform and length0 > 0:
            position = np.tile(
                np.arange(length0, dtype=np.int64), n_reads
            )
            strand_of_base = np.repeat(template_of_read, length0)
        p_del, p_ins, p_sub = rates.per_base(strand_of_base, position)
        noiseless = False
    else:
        p_del = rates.p_deletion
        p_ins = rates.p_insertion
        p_sub = rates.p_substitution
        noiseless = rates.is_noiseless
    if noiseless:
        return inp.copy(), in_lengths.astype(np.int64)

    # Single RNG draw over every template base of the whole batch; the
    # event classification matches ErrorModel.apply_indices exactly.
    draws = generator.random(total)
    deleted = draws < p_del
    inserted = (draws >= p_del) & (draws < p_del + p_ins)
    substituted = (draws >= p_del + p_ins) & (draws < p_del + p_ins + p_sub)

    emitted = inp.copy()
    n_subs = int(substituted.sum())
    if n_subs:
        offsets = generator.integers(1, n_alphabet, size=n_subs,
                                     dtype=np.uint8)
        emitted[substituted] = (emitted[substituted] + offsets) % n_alphabet

    # Each template base emits 0 (deletion), 1 (keep/substitute) or 2
    # (insertion: the random base, then the original) output bases; a
    # segmented cumsum over the whole batch places them.
    counts = np.ones(total, dtype=np.int64)
    counts[deleted] = 0
    counts[inserted] = 2
    ends = np.cumsum(counts)
    starts = ends - counts
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    survivors = ~deleted
    out[ends[survivors] - 1] = emitted[survivors]
    n_ins = int(inserted.sum())
    if n_ins:
        out[starts[inserted]] = generator.integers(
            0, n_alphabet, size=n_ins, dtype=np.uint8
        )
    # Per-read emitted lengths: differences of the emission cumsum at the
    # read boundaries (O(n_reads), no per-base reduction).
    bounds = np.concatenate([np.zeros(1, dtype=np.int64), ends])
    out_lengths = bounds[in_starts + in_lengths] - bounds[in_starts]
    return out, out_lengths


# ---------------------------------------------------------------------------
# The composed engine
# ---------------------------------------------------------------------------

class BatchedChannelEngine:
    """Coverage + (optional) synthesis + sequencing, all batched.

    The array-native counterpart of ``SequencingSimulator`` /
    ``TwoStageSequencer`` (which are now thin façades over this class):
    one :meth:`sequence` call takes the designed strands and returns a
    :class:`ReadBatch` with every noisy read of every cluster, having
    touched the RNG a constant number of times regardless of strand count
    or coverage.

    Args:
        sequencing_model: per-read IDS rates — an :class:`ErrorModel` or a
            positional :class:`ErrorRateMap` for skew scenarios.
        coverage_model: reads per cluster (Fixed/Gamma).
        synthesis_model: when given, each strand is mutated *once* before
            sequencing and every read inherits the mutation (the paper's
            Section 8 two-stage channel; use the enzymatic profile for the
            indel-heavy regime).
        n_alphabet: alphabet size (4 for DNA, 2 for binary analyses).
    """

    def __init__(
        self,
        sequencing_model: RateSpec,
        coverage_model: CoverageModel = FixedCoverage(10),
        synthesis_model: Optional[RateSpec] = None,
        n_alphabet: int = 4,
    ) -> None:
        self.sequencing_model = sequencing_model
        self.coverage_model = coverage_model
        self.synthesis_model = synthesis_model
        self.n_alphabet = n_alphabet

    def sequence(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        rng: RngLike = None,
    ) -> ReadBatch:
        """Sample coverage, then emit every read in one batched pass."""
        generator = ensure_rng(rng)
        buffer, offsets, lengths = as_template_set(strands)
        counts = self.coverage_model.sample(lengths.size, generator)
        return self._sequence_templates(
            buffer, offsets, lengths, counts, generator
        )

    def sequence_counts(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        counts: np.ndarray,
        rng: RngLike = None,
    ) -> ReadBatch:
        """Emit exactly ``counts[i]`` reads of strand ``i`` (no coverage
        sampling) — what read pools and fixed-coverage sweeps use."""
        generator = ensure_rng(rng)
        buffer, offsets, lengths = as_template_set(strands)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (lengths.size,):
            raise ValueError("counts must have one entry per strand")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        return self._sequence_templates(
            buffer, offsets, lengths, counts, generator
        )

    def sample_pool(
        self,
        strands: Union[Sequence[str], Sequence[np.ndarray], np.ndarray],
        depth: int,
        rng: RngLike = None,
    ) -> ReadBatch:
        """``depth`` reads for every strand — a full coverage-sweep pool."""
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        generator = ensure_rng(rng)
        buffer, offsets, lengths = as_template_set(strands)
        counts = np.full(lengths.size, depth, dtype=np.int64)
        return self._sequence_templates(
            buffer, offsets, lengths, counts, generator
        )

    def _sequence_templates(
        self,
        buffer: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        counts: np.ndarray,
        generator: np.random.Generator,
    ) -> ReadBatch:
        n_strands = lengths.size
        tracer = get_tracer()
        with tracer.span("channel.sequence", n_strands=n_strands) as span:
            # Rate maps must cover the designed strands; beyond-design
            # positions (molecules lengthened by synthesis insertions)
            # clamp to the map's last entry inside ErrorRateMap.per_base.
            longest = int(lengths.max()) if n_strands else 0
            for model in (self.sequencing_model, self.synthesis_model):
                if isinstance(model, ErrorRateMap) and model.length < longest:
                    raise ValueError(
                        f"rate map covers {model.length} positions but a "
                        f"designed strand has {longest}"
                    )
            if self.synthesis_model is not None:
                # One synthesis "read" per strand: the physical molecule.
                # Its errors are shared by every sequencing read of the
                # cluster.
                buffer, lengths = batched_ids_pass(
                    buffer, offsets, lengths,
                    np.arange(n_strands, dtype=np.int64),
                    self.synthesis_model, generator, self.n_alphabet,
                )
                offsets = np.cumsum(lengths) - lengths
            template_of_read = np.repeat(
                np.arange(n_strands, dtype=np.int64), counts
            )
            out, out_lengths = batched_ids_pass(
                buffer, offsets, lengths, template_of_read,
                self.sequencing_model, generator, self.n_alphabet,
            )
            span.set(n_reads=template_of_read.size)
            if tracer.is_recording:
                metrics = tracer.metrics
                metrics.counter("channel.strands_in").add(int(n_strands))
                metrics.counter("channel.reads_out").add(
                    int(template_of_read.size)
                )
                metrics.counter("channel.bases_out").add(
                    int(out_lengths.sum())
                )
        return ReadBatch(
            out,
            np.cumsum(out_lengths) - out_lengths,
            out_lengths,
            cluster_ids=template_of_read,
            n_clusters=n_strands,
        )
