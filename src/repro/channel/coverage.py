"""Sequencing-coverage models.

The paper (Sections 4.1 and 6.1.2) stresses that per-cluster coverage is
never the fixed average: cluster sizes follow a Gamma distribution, so some
clusters receive many reads and some receive few or none (strand dropout,
which surfaces as an erasure). Both a fixed and a Gamma model are provided;
experiments that sweep coverage use :class:`GammaCoverage` unless they are
isolating consensus behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class CoverageModel:
    """Interface: sample per-cluster read counts for ``n_clusters``."""

    mean_coverage: float

    def sample(self, n_clusters: int, rng: RngLike = None) -> np.ndarray:
        raise NotImplementedError

    def with_mean(self, mean_coverage: float) -> "CoverageModel":
        """Return a copy of this model re-targeted to a new mean coverage."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedCoverage(CoverageModel):
    """Every cluster receives exactly ``mean_coverage`` reads."""

    mean_coverage: float

    def __post_init__(self) -> None:
        check_positive(self.mean_coverage, "mean_coverage")

    def sample(self, n_clusters: int, rng: RngLike = None) -> np.ndarray:
        return np.full(n_clusters, int(round(self.mean_coverage)), dtype=np.int64)

    def with_mean(self, mean_coverage: float) -> "FixedCoverage":
        return FixedCoverage(mean_coverage)


@dataclass(frozen=True)
class GammaCoverage(CoverageModel):
    """Gamma-distributed cluster sizes with the given mean coverage.

    Attributes:
        mean_coverage: target average reads per cluster.
        shape: Gamma shape parameter k; smaller k means more dispersion
            (more tiny clusters and dropouts). The scale is derived as
            ``mean_coverage / shape``.
    """

    mean_coverage: float
    shape: float = 6.0

    def __post_init__(self) -> None:
        check_positive(self.mean_coverage, "mean_coverage")
        check_positive(self.shape, "shape")

    def sample(self, n_clusters: int, rng: RngLike = None) -> np.ndarray:
        generator = ensure_rng(rng)
        scale = self.mean_coverage / self.shape
        sizes = generator.gamma(self.shape, scale, size=n_clusters)
        return np.maximum(np.round(sizes), 0).astype(np.int64)

    def with_mean(self, mean_coverage: float) -> "GammaCoverage":
        return GammaCoverage(mean_coverage, self.shape)
