"""Columnar read container: every read of every cluster in one flat buffer.

The read-plane between the channel and the decoder is array-native: a
:class:`ReadBatch` stores all reads of a simulation as one flat ``uint8``
base buffer plus per-read offsets/lengths, per-read cluster ids, and
per-cluster source-strand indices. Everything downstream — the padded
matrix the batched consensus scans eat, prefix selection for coverage
sweeps, per-cluster grouping — is a vectorized view over those arrays;
DNA *strings* only ever materialize lazily at the edges (``ReadCluster.
reads``, FASTA/FASTQ export, CLI output).

Invariants:

* ``offsets``/``lengths`` describe arbitrary (not necessarily contiguous
  or disjoint) windows of ``buffer``, so sub-batches (prefix selections,
  cluster ranges) share the parent's buffer zero-copy;
* ``cluster_ids`` is non-decreasing: reads are grouped by cluster, and
  reads within a cluster keep their generation order;
* every cluster id in ``[0, n_clusters)`` exists conceptually even when
  it owns no reads — a lost cluster (strand dropout) is an id with zero
  reads, not a missing id.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.basemap import bases_to_indices, indices_to_bases
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.channel.sequencer import ReadCluster


class ReadBatch:
    """Flat columnar storage for the noisy reads of many clusters.

    Attributes:
        buffer: ``uint8`` base indices of every read, back to back (sub-
            batches may reference a larger shared buffer).
        offsets: per-read start position inside ``buffer``.
        lengths: per-read length.
        cluster_ids: per-read owning cluster, non-decreasing.
        source_indices: per-cluster index of the source strand in the
            encoding unit (defaults to ``arange(n_clusters)``).
    """

    __slots__ = ("buffer", "offsets", "lengths", "cluster_ids",
                 "source_indices", "n_clusters", "_starts")

    def __init__(
        self,
        buffer: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        cluster_ids: np.ndarray,
        n_clusters: int,
        source_indices: Optional[np.ndarray] = None,
    ) -> None:
        self.buffer = np.asarray(buffer, dtype=np.uint8)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.cluster_ids = np.asarray(cluster_ids, dtype=np.int64)
        if not (self.offsets.shape == self.lengths.shape
                == self.cluster_ids.shape):
            raise ValueError("offsets, lengths and cluster_ids must align")
        if self.cluster_ids.size:
            if np.any(np.diff(self.cluster_ids) < 0):
                raise ValueError("cluster_ids must be non-decreasing")
            if self.cluster_ids[0] < 0 or self.cluster_ids[-1] >= n_clusters:
                raise ValueError("cluster id outside [0, n_clusters)")
        if n_clusters < 0:
            raise ValueError(f"n_clusters must be >= 0, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        if source_indices is None:
            source_indices = np.arange(self.n_clusters, dtype=np.int64)
        self.source_indices = np.asarray(source_indices, dtype=np.int64)
        if self.source_indices.shape != (self.n_clusters,):
            raise ValueError("source_indices must have one entry per cluster")
        # Row range of each cluster, derived once: cluster c owns read rows
        # [_starts[c], _starts[c + 1]).
        counts = np.bincount(self.cluster_ids, minlength=self.n_clusters)
        self._starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        clusters: Sequence[Sequence[np.ndarray]],
        source_indices: Optional[Sequence[int]] = None,
    ) -> "ReadBatch":
        """Pack per-cluster lists of index arrays into one batch (copies)."""
        reads: List[np.ndarray] = []
        cluster_ids: List[int] = []
        for c, cluster in enumerate(clusters):
            for read in cluster:
                reads.append(np.asarray(read, dtype=np.uint8))
                cluster_ids.append(c)
        lengths = np.array([r.size for r in reads], dtype=np.int64)
        buffer = (np.concatenate(reads) if reads
                  else np.zeros(0, dtype=np.uint8))
        offsets = np.cumsum(lengths) - lengths
        return cls(
            buffer, offsets, lengths,
            np.array(cluster_ids, dtype=np.int64),
            n_clusters=len(clusters),
            source_indices=(None if source_indices is None
                            else np.asarray(source_indices, dtype=np.int64)),
        )

    @classmethod
    def from_clusters(cls, clusters: Sequence["ReadCluster"]) -> "ReadBatch":
        """Pack :class:`ReadCluster` objects (string- or array-backed)."""
        return cls.from_arrays(
            [cluster.read_indices() for cluster in clusters],
            source_indices=[cluster.source_index for cluster in clusters],
        )

    @classmethod
    def concat(cls, batches: Sequence["ReadBatch"]) -> "ReadBatch":
        """Concatenate batches into one spanning batch.

        The pieces' clusters are laid back to back: piece ``p``'s cluster
        ``c`` becomes cluster ``offset_p + c`` of the result, where
        ``offset_p`` is the running cluster count — cluster ids are
        re-based per piece, so the non-decreasing invariant holds by
        construction. ``source_indices`` are carried over verbatim (they
        keep identifying strands *within* their originating piece);
        callers that need global attribution keep the per-piece cluster
        boundary table ``cumsum([b.n_clusters])`` alongside — this is how
        :class:`~repro.core.store.DnaStore` maps the spanning batch's
        clusters back to encoding units.

        Each piece's referenced bases are gathered into a tight buffer
        (one vectorized pass over the actual reads), so concatenating
        zero-copy sub-batches of a large pool copies only the selected
        reads, never the parent buffers.
        """
        batches = list(batches)
        buffers: List[np.ndarray] = []
        lengths_parts: List[np.ndarray] = []
        cluster_parts: List[np.ndarray] = []
        source_parts: List[np.ndarray] = []
        cluster_offset = 0
        for batch in batches:
            total = int(batch.lengths.sum())
            tight_starts = np.cumsum(batch.lengths) - batch.lengths
            within = (np.arange(total, dtype=np.int64)
                      - np.repeat(tight_starts, batch.lengths))
            src = np.repeat(batch.offsets, batch.lengths) + within
            buffers.append(batch.buffer[src])
            lengths_parts.append(batch.lengths)
            cluster_parts.append(batch.cluster_ids + cluster_offset)
            source_parts.append(batch.source_indices)
            cluster_offset += batch.n_clusters
        if not batches:
            return cls(
                np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                n_clusters=0,
            )
        lengths = np.concatenate(lengths_parts)
        return cls(
            np.concatenate(buffers),
            np.cumsum(lengths) - lengths,
            lengths,
            np.concatenate(cluster_parts),
            n_clusters=cluster_offset,
            source_indices=np.concatenate(source_parts),
        )

    @classmethod
    def from_strings(
        cls,
        clusters: Sequence[Sequence[str]],
        source_indices: Optional[Sequence[int]] = None,
    ) -> "ReadBatch":
        """Pack per-cluster lists of ACGT strings (edge-only convenience)."""
        return cls.from_arrays(
            [[bases_to_indices(read) for read in reads] for reads in clusters],
            source_indices=source_indices,
        )

    # -- basic shape ----------------------------------------------------------

    @property
    def n_reads(self) -> int:
        return int(self.offsets.size)

    @property
    def total_bases(self) -> int:
        return int(self.lengths.sum())

    def coverage_counts(self) -> np.ndarray:
        """Reads per cluster, ``(n_clusters,)``."""
        return np.diff(self._starts)

    def lost_clusters(self) -> np.ndarray:
        """Ids of clusters with zero reads (strand dropouts)."""
        return np.flatnonzero(np.diff(self._starts) == 0)

    def cluster_rows(self, cluster: int) -> Tuple[int, int]:
        """Read-row range ``[start, stop)`` owned by ``cluster``."""
        if not (0 <= cluster < self.n_clusters):
            raise IndexError(f"cluster {cluster} out of range")
        return int(self._starts[cluster]), int(self._starts[cluster + 1])

    # -- per-read / per-cluster views ----------------------------------------

    def read(self, i: int) -> np.ndarray:
        """Read ``i`` as a zero-copy ``uint8`` view into the buffer."""
        start = int(self.offsets[i])
        return self.buffer[start: start + int(self.lengths[i])]

    def read_string(self, i: int) -> str:
        """Read ``i`` decoded to an ACGT string (edge use only)."""
        return indices_to_bases(self.read(i))

    def reads_of(self, cluster: int) -> List[np.ndarray]:
        """The reads of one cluster as zero-copy index arrays."""
        start, stop = self.cluster_rows(cluster)
        return [self.read(i) for i in range(start, stop)]

    def clusters_as_indices(self) -> List[List[np.ndarray]]:
        """Per-cluster lists of index arrays (zero-copy buffer views)."""
        return [self.reads_of(c) for c in range(self.n_clusters)]

    def cluster_view(self, cluster: int) -> "ReadCluster":
        """One cluster as a batch-backed :class:`ReadCluster` (lazy strings)."""
        from repro.channel.sequencer import ReadCluster

        return ReadCluster.from_arrays(
            int(self.source_indices[cluster]), self.reads_of(cluster)
        )

    def to_clusters(self) -> List["ReadCluster"]:
        """Every cluster as a batch-backed :class:`ReadCluster` view."""
        return [self.cluster_view(c) for c in range(self.n_clusters)]

    def __len__(self) -> int:
        return self.n_clusters

    def __getitem__(self, cluster: int) -> "ReadCluster":
        return self.cluster_view(cluster)

    def __iter__(self):
        return (self.cluster_view(c) for c in range(self.n_clusters))

    # -- vectorized dense views ----------------------------------------------

    def padded_matrix(self, pad: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """All reads as one ``(n_reads, max_len + pad)`` sentinel matrix.

        The convention of the batched consensus engines: ``int64`` symbols
        with ``-1`` past each read's end; ``pad`` appends extra sentinel
        columns (the scans use them for bounds-free lookahead gathers).
        Built with one gather over the flat buffer — no per-read Python
        loop. Returns ``(matrix, lengths)``.
        """
        if pad < 0:
            raise ValueError(f"pad must be non-negative, got {pad}")
        if self.n_reads == 0:
            return (np.zeros((0, 0), dtype=np.int64),
                    np.zeros(0, dtype=np.int64))
        longest = int(self.lengths.max())
        width = longest + pad
        if longest == 0:  # only empty reads: nothing to gather
            return (np.full((self.n_reads, width), -1, dtype=np.int64),
                    self.lengths.copy())
        columns = np.arange(width, dtype=np.int64)
        mask = columns[None, :] < self.lengths[:, None]
        src = np.where(mask, self.offsets[:, None] + columns[None, :], 0)
        matrix = np.where(mask, self.buffer[src].astype(np.int64), -1)
        return matrix, self.lengths.copy()

    # -- columnar restructuring ----------------------------------------------

    def drop_lost(self) -> "ReadBatch":
        """Compact away zero-read clusters (shares the buffer).

        The surviving clusters are renumbered ``0..k-1`` in order; their
        ``source_indices`` keep pointing at the original strands, so the
        decoder can still attribute estimates.
        """
        counts = np.diff(self._starts)
        live = np.flatnonzero(counts > 0)
        if live.size == self.n_clusters:
            return self
        # Every read belongs to a live cluster by definition; only the
        # cluster numbering changes.
        new_ids = np.searchsorted(live, self.cluster_ids)
        return ReadBatch(
            self.buffer, self.offsets, self.lengths, new_ids,
            n_clusters=int(live.size),
            source_indices=self.source_indices[live],
        )

    def select_prefix(self, counts: np.ndarray) -> "ReadBatch":
        """Keep the first ``counts[c]`` reads of every cluster (zero-copy).

        Counts are clipped to each cluster's actual read count. Clusters
        whose count is zero stay present as lost clusters, which is what
        nested coverage sweeps need.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_clusters,):
            raise ValueError("counts must have one entry per cluster")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        counts = np.minimum(counts, np.diff(self._starts))
        total = int(counts.sum())
        firsts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(firsts, counts)
        rows = np.repeat(self._starts[:-1], counts) + within
        return ReadBatch(
            self.buffer, self.offsets[rows], self.lengths[rows],
            np.repeat(np.arange(self.n_clusters, dtype=np.int64), counts),
            n_clusters=self.n_clusters,
            source_indices=self.source_indices,
        )

    def group_rows(self, group_boundaries: np.ndarray) -> np.ndarray:
        """Validate a cluster-granular boundary table; return row bounds.

        ``group_boundaries`` partitions the clusters into consecutive
        groups (``[b[g], b[g + 1])`` is group ``g``); the returned table
        holds the corresponding read-row bounds — group ``g`` owns rows
        ``[rows[g], rows[g + 1])``. The shared validation/translation
        for every consumer of such tables (:meth:`pooled`,
        ``BatchedGreedyClusterer.cluster_pools``).
        """
        boundaries = np.asarray(group_boundaries, dtype=np.int64)
        if (boundaries.ndim != 1 or boundaries.size < 1
                or boundaries[0] != 0 or boundaries[-1] != self.n_clusters
                or np.any(np.diff(boundaries) < 0)):
            raise ValueError(
                "group boundaries must be a non-decreasing table from 0 "
                f"to n_clusters ({self.n_clusters})"
            )
        return self._starts[boundaries]

    def pooled(
        self,
        group_boundaries: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> "ReadBatch":
        """Merge groups of clusters into single *unlabeled pool* clusters.

        ``group_boundaries`` is a cluster-granular table (like
        ``receive_many``'s unit boundaries): clusters
        ``[b[g], b[g + 1])`` collapse into pool ``g``. By default every
        cluster merges into one pool — the whole batch as one unlabeled
        read pool. When ``rng`` is given, the reads *within each pool*
        are shuffled; without it the generation order would leak cluster
        identity to an order-sensitive clusterer (greedy assignment
        depends on read order). ``source_indices`` reset to the default
        ``arange`` — a pool carries no strand attribution; recovering it
        is the clustering subsystem's job.

        Zero-copy over the buffer (only the per-read offset/length rows
        are permuted).
        """
        if group_boundaries is None:
            group_boundaries = (
                np.array([0, self.n_clusters], dtype=np.int64)
                if self.n_clusters else np.zeros(1, dtype=np.int64)
            )
        row_bounds = self.group_rows(group_boundaries)
        n_pools = row_bounds.size - 1
        rows = np.arange(self.n_reads, dtype=np.int64)
        if rng is not None:
            generator = ensure_rng(rng)
            for g in range(n_pools):
                generator.shuffle(rows[row_bounds[g]: row_bounds[g + 1]])
        pool_ids = np.repeat(np.arange(n_pools, dtype=np.int64),
                             np.diff(row_bounds))
        return ReadBatch(
            self.buffer, self.offsets[rows], self.lengths[rows],
            pool_ids, n_clusters=n_pools,
        )

    def select_clusters(self, start: int, stop: int) -> "ReadBatch":
        """The sub-batch of clusters ``[start, stop)``, renumbered from 0.

        Zero-copy over the buffer; used to carve one trial's unit out of a
        many-trial mega-batch.
        """
        if not (0 <= start <= stop <= self.n_clusters):
            raise ValueError(
                f"cluster range [{start}, {stop}) outside "
                f"[0, {self.n_clusters})"
            )
        row_start, row_stop = self._starts[start], self._starts[stop]
        rows = slice(int(row_start), int(row_stop))
        return ReadBatch(
            self.buffer, self.offsets[rows], self.lengths[rows],
            self.cluster_ids[rows] - start,
            n_clusters=stop - start,
            source_indices=self.source_indices[start:stop],
        )
