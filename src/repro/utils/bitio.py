"""Bit-level I/O.

The DNA pipeline and the JPEG entropy coder both operate on bit streams that
are not byte-aligned, so the library keeps a single, well-tested pair of
``BitWriter``/``BitReader`` classes here plus vectorized bytes<->bits
conversions used in hot paths.

Bit order is most-significant-bit first throughout the library: the first
bit written is the highest bit of the first byte. This matches the order in
which JPEG entropy-coded segments and the paper's 2-bits-per-base mapping
consume data.
"""

from __future__ import annotations

import numpy as np


class BitWriter:
    """Accumulates individual bits / bit fields into a byte buffer (MSB first)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_count = 0  # bits used in the current (last) byte, 0..7

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return len(self._bytes) * 8 - (8 - self._bit_count) % 8

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if self._bit_count == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 1 << (7 - self._bit_count)
        self._bit_count = (self._bit_count + 1) % 8

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append a numpy array of 0/1 values."""
        for bit in np.asarray(bits, dtype=np.uint8):
            self.write_bit(int(bit))

    def to_bytes(self) -> bytes:
        """Return the buffer, zero-padding the final partial byte."""
        return bytes(self._bytes)

    def to_bit_array(self) -> np.ndarray:
        """Return exactly the written bits (no padding) as a uint8 array."""
        all_bits = bytes_to_bits(bytes(self._bytes))
        return all_bits[: len(self)]


class BitReader:
    """Reads bits / bit fields from a byte buffer (MSB first)."""

    def __init__(self, data: bytes) -> None:
        self._bits = bytes_to_bits(data)
        self._pos = 0

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "BitReader":
        """Build a reader over a raw 0/1 array (no byte padding involved)."""
        reader = cls(b"")
        reader._bits = np.asarray(bits, dtype=np.uint8)
        return reader

    @property
    def position(self) -> int:
        """Current bit offset from the start."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read one bit; raises EOFError past the end."""
        if self._pos >= len(self._bits):
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if self._pos + width > len(self._bits):
            raise EOFError(
                f"requested {width} bits, only {self.remaining} remaining"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | int(self._bits[self._pos])
            self._pos += 1
        return value

    def seek(self, bit_offset: int) -> None:
        """Jump to an absolute bit offset."""
        if not (0 <= bit_offset <= len(self._bits)):
            raise ValueError(f"offset {bit_offset} out of range")
        self._pos = bit_offset


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Vectorized bytes -> uint8 bit array (MSB of each byte first)."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Vectorized 0/1 array -> bytes, zero-padding to a byte boundary."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size == 0:
        return b""
    return np.packbits(bits).tobytes()


def pack_uint(value: int, width: int) -> np.ndarray:
    """Encode an unsigned int into a ``width``-bit 0/1 array, MSB first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> shift) & 1 for shift in range(width - 1, -1, -1)],
                    dtype=np.uint8)


def unpack_uint(bits: np.ndarray) -> int:
    """Decode an MSB-first 0/1 array into an unsigned int."""
    value = 0
    for bit in np.asarray(bits, dtype=np.uint8):
        value = (value << 1) | int(bit)
    return value
