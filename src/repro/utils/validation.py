"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with a consistent message format so that
misconfiguration is caught at construction time rather than deep inside an
experiment sweep.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_probability(value: Number, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_positive(value: Number, name: str) -> None:
    """Require ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(value: Number, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(value: Number, name: str, low: Number, high: Number) -> None:
    """Require ``low <= value <= high`` (inclusive on both ends)."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
