"""Shared low-level utilities: bit I/O, RNG normalization, validation."""

from repro.utils.bitio import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bytes_to_bits,
    pack_uint,
    unpack_uint,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_bytes",
    "bytes_to_bits",
    "pack_uint",
    "unpack_uint",
    "ensure_rng",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
