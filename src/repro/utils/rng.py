"""Normalization of random sources.

Every stochastic component in the library accepts either an integer seed, a
``numpy.random.Generator``, or ``None`` (fresh entropy), and normalizes it
through :func:`ensure_rng`. Experiments pass integer seeds so that every
figure is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted random source.

    Args:
        rng: ``None`` for fresh OS entropy, an ``int`` seed, or an existing
            ``Generator`` (returned unchanged, so callers can thread one
            generator through a whole experiment).

    Raises:
        TypeError: if ``rng`` is not one of the accepted types.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int seed, or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list:
    """Split a random source into ``count`` independent child generators.

    Used by experiment harnesses to give each trial an independent stream,
    so per-trial work can be reordered without changing results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
