"""Analysis tooling: positional error profiles, skew statistics, and the
experiment harnesses behind every figure of the paper's evaluation.
"""

from repro.analysis.skew import (
    positional_confidence_profile,
    positional_error_profile,
    positional_error_profile_binary,
)
from repro.analysis.cost import CostModel
from repro.analysis.plotting import ascii_chart
from repro.analysis.stats import errors_per_codeword, gini_coefficient
from repro.analysis.experiments import (
    CATASTROPHIC_LOSS_DB,
    ImageStoreExperiment,
    RetrievalResult,
    StoredImage,
    min_coverage_for_error_free,
    min_coverage_vs_redundancy,
)

__all__ = [
    "positional_confidence_profile",
    "positional_error_profile",
    "positional_error_profile_binary",
    "gini_coefficient",
    "errors_per_codeword",
    "min_coverage_for_error_free",
    "min_coverage_vs_redundancy",
    "ImageStoreExperiment",
    "RetrievalResult",
    "StoredImage",
    "CATASTROPHIC_LOSS_DB",
    "CostModel",
    "ascii_chart",
]
