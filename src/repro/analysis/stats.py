"""Skew statistics: per-codeword error accounting and the Gini coefficient.

``errors_per_codeword`` is the measurement behind the paper's Figure 11
(baseline: errors pile up in the middle rows; Gini: flat). The Gini
*coefficient* — the inequality index the technique is named after — is
provided to quantify how (un)evenly errors are spread over codewords.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.layout import LayoutPolicy


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini inequality index of a non-negative sample (0 = perfectly even).

    Uses the mean-absolute-difference definition; an all-zero sample has
    index 0 by convention.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if np.any(data < 0):
        raise ValueError("values must be non-negative")
    total = data.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(data)
    n = data.size
    ranks = np.arange(1, n + 1)
    return float((2 * np.sum(ranks * sorted_values)) / (n * total) - (n + 1) / n)


def errors_per_codeword(
    layout: LayoutPolicy,
    truth_matrix: np.ndarray,
    received_matrix: np.ndarray,
    erased_columns: Sequence[int] = (),
) -> np.ndarray:
    """Symbol errors each codeword sees before correction.

    Args:
        layout: the codeword geometry (baseline rows or Gini diagonals).
        truth_matrix: the matrix as synthesized.
        received_matrix: the matrix as reassembled from consensus strands.
        erased_columns: columns with no strand — excluded from the error
            count (they surface as erasures, not errors, exactly as in the
            paper's architecture).

    Returns:
        Array of per-codeword error counts, indexed by codeword id.
    """
    truth_matrix = np.asarray(truth_matrix)
    received_matrix = np.asarray(received_matrix)
    if truth_matrix.shape != received_matrix.shape:
        raise ValueError("matrix shapes differ")
    erased = set(int(c) for c in erased_columns)
    counts = np.zeros(layout.n_codewords, dtype=np.int64)
    mismatch = truth_matrix != received_matrix
    for k in range(layout.n_codewords):
        for position, (row, column) in enumerate(layout.codeword_cells(k)):
            if column in erased:
                continue
            if mismatch[row, column]:
                counts[k] += 1
    return counts
