"""Experiment harnesses behind the paper's evaluation figures.

* :func:`min_coverage_for_error_free` — Figure 12: sweep coverage upward
  until a unit decodes with zero bit errors.
* :func:`min_coverage_vs_redundancy` — Figure 13: the same search while
  *effective* redundancy is reduced by injecting controlled erasures.
* :class:`ImageStoreExperiment` — Figures 14/15: an encrypted multi-image
  archive stored under any layout, retrieved at varying coverage, with
  per-image quality-loss accounting and the honest staged decode for
  DnaMapper (directory first, then the ranking it implies).

Every retrieval in these harnesses rides the batched consensus engine —
the coverage sweeps here run hundreds of unit decodes, so they are only
tractable because of that batch path. The min-coverage searches go one
level further and batch at the *store plane*: each coverage step
concatenates every still-unsolved trial's unit into one spanning
:class:`~repro.channel.readbatch.ReadBatch` and decodes them all through
a single :meth:`~repro.core.pipeline.DnaStoragePipeline.decode_many`
call (one consensus pass per step, not per trial). The read side is
columnar too: one :class:`~repro.channel.sequencer.ReadPool` (a single
batched-engine call) covers all trials of a sweep, and decodes consume
zero-copy :class:`~repro.channel.readbatch.ReadBatch` slices of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.errors import ErrorModel
from repro.channel.readbatch import ReadBatch
from repro.channel.sequencer import ReadPool
from repro.core.layout import MatrixConfig
from repro.core.pipeline import DnaStoragePipeline, PipelineConfig
from repro.core.ranking import proportional_share_ranking
from repro.crypto.chacha20 import ChaCha20
from repro.files.archive import (
    ArchiveError,
    FileEntry,
    PackedArchive,
    directory_file_sizes,
    directory_size_bits,
    pack_archive,
    unpack_archive_robust,
)
from repro.media.jpeg import JpegCodec
from repro.media.psnr import quality_loss_db
from repro.utils.bitio import bits_to_bytes, bytes_to_bits
from repro.utils.rng import RngLike, ensure_rng

#: Quality-loss value recorded when an image cannot be decoded at all
#: (the paper calls this "catastrophic data loss").
CATASTROPHIC_LOSS_DB = 48.0


# ---------------------------------------------------------------------------
# Figures 12 / 13: minimum coverage searches
# ---------------------------------------------------------------------------

def min_coverage_for_error_free(
    pipeline: DnaStoragePipeline,
    error_rate: float,
    coverages: Sequence[int],
    trials: int = 3,
    rng: RngLike = None,
    extra_erasure_columns: Sequence[int] = (),
    payload_bits: Optional[np.ndarray] = None,
) -> float:
    """Average (over trials) minimum coverage for an exact decode.

    For each trial, a fresh random payload is encoded (one batched
    ``encode_many`` pass over all trials); *one* read pool covering every
    trial's strands at the largest requested coverage is generated in a
    single batched-engine call. The search then walks the coverages
    upward: at each step, *all* still-unsolved trials' units are
    concatenated into one spanning batch and decoded through a single
    :meth:`~repro.core.pipeline.DnaStoragePipeline.decode_many` call (one
    consensus pass for the whole step); trials that decode bit-exact drop
    out with that coverage as their minimum. Decodes consume columnar
    sub-batches of the pool — no strings, no per-read Python objects
    anywhere in the sweep — and per-trial results are identical to
    decoding each trial on its own (nested read sets make the search
    order immaterial). Trials where even the largest coverage fails
    contribute ``max(coverages) + 1``.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    coverages = sorted(int(c) for c in coverages)
    if not coverages:
        raise ValueError("coverages must be non-empty")
    generator = ensure_rng(rng)
    model = ErrorModel.uniform(error_rate)
    n_columns = pipeline.matrix_config.n_columns
    trial_bits: List[np.ndarray] = []
    for _ in range(trials):
        if payload_bits is None:
            bits = generator.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        else:
            bits = np.asarray(payload_bits, dtype=np.uint8)
        trial_bits.append(bits)
    all_strands: List[str] = []
    for unit in pipeline.encode_many(trial_bits):
        all_strands.extend(unit.strands)
    pool = ReadPool(all_strands, model, max_coverage=coverages[-1],
                    rng=generator)
    minima = np.full(trials, coverages[-1] + 1, dtype=np.int64)
    remaining = list(range(trials))
    for coverage in coverages:
        if not remaining:
            break
        spanning = ReadBatch.concat([
            pool.batch_at(coverage, first_cluster=t * n_columns,
                          n_clusters=n_columns)
            for t in remaining
        ])
        results = pipeline.decode_many(
            spanning, [trial_bits[t].size for t in remaining],
            extra_erasure_columns=extra_erasure_columns,
        )
        unsolved = []
        for t, (decoded, report) in zip(remaining, results):
            if report.clean and np.array_equal(decoded, trial_bits[t]):
                minima[t] = coverage
            else:
                unsolved.append(t)
        remaining = unsolved
    return float(np.mean(minima))


def min_coverage_vs_redundancy(
    matrix: MatrixConfig,
    layout: str,
    error_rate: float,
    effective_nsym_values: Sequence[int],
    coverages: Sequence[int],
    trials: int = 3,
    rng: RngLike = None,
) -> List[Tuple[int, float]]:
    """Figure 13: min coverage as effective redundancy shrinks.

    Effective redundancy is reduced the way the paper does it: the encoded
    unit keeps its full ``nsym`` parity columns, but ``nsym - target``
    redundancy columns are declared erased at decode time, so only
    ``target`` parity symbols actually help.

    Returns ``[(effective_nsym, mean_min_coverage), ...]``.
    """
    generator = ensure_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix, layout=layout))
    results = []
    for target in effective_nsym_values:
        target = int(target)
        if not (0 < target <= matrix.nsym):
            raise ValueError(f"effective nsym {target} out of (0, {matrix.nsym}]")
        # Erase the *last* parity columns deterministically; which ones is
        # immaterial since every column carries one symbol per codeword.
        sacrificed = list(range(matrix.n_columns - (matrix.nsym - target),
                                matrix.n_columns))
        value = min_coverage_for_error_free(
            pipeline, error_rate, coverages, trials=trials, rng=generator,
            extra_erasure_columns=sacrificed,
        )
        results.append((target, value))
    return results


# ---------------------------------------------------------------------------
# Figures 14 / 15 / 16: image-store experiments
# ---------------------------------------------------------------------------

@dataclass
class StoredImage:
    """One image of the store with its crypto material."""

    name: str
    original: np.ndarray
    compressed: bytes
    key: bytes
    nonce: bytes


@dataclass
class RetrievalResult:
    """Outcome of one retrieval of the whole store.

    Attributes:
        losses_db: per-image quality loss (CATASTROPHIC_LOSS_DB when the
            image could not be decoded).
        n_catastrophic: images that could not be decoded at all.
        archive_ok: False when even the directory was unusable.
        decode_clean: True when every RS codeword decoded.
    """

    losses_db: List[float]
    n_catastrophic: int
    archive_ok: bool
    decode_clean: bool

    @property
    def mean_loss_db(self) -> float:
        return float(np.mean(self.losses_db)) if self.losses_db else float("nan")

    @property
    def max_loss_db(self) -> float:
        return float(np.max(self.losses_db)) if self.losses_db else float("nan")


class ImageStoreExperiment:
    """Encrypted multi-image archive stored in one encoding unit.

    Mirrors the paper's Section 6.1 setup: several images of different
    sizes are JPEG-compressed, encrypted, packed together with a directory
    file, and encoded into a single matrix under the chosen layout. Under
    DnaMapper, the directory gets the highest priority and every file a
    proportional share of each reliability class.

    Args:
        images: uint8 arrays — grayscale (H, W), or RGB (H, W, 3) when a
            color codec is supplied.
        matrix: encoding-unit geometry (must fit the archive).
        layout: 'baseline', 'gini', or 'dnamapper'.
        quality: JPEG quality for compression (ignored if ``codec`` given).
        encrypt: ChaCha20-encrypt every image payload (as the paper does).
        rng: random source for keys.
        codec: image codec; defaults to the grayscale
            :class:`~repro.media.jpeg.JpegCodec`. Pass a
            :class:`~repro.media.jpeg.ColorJpegCodec` for RGB stores.
    """

    def __init__(
        self,
        images: Sequence[np.ndarray],
        matrix: MatrixConfig,
        layout: str = "baseline",
        quality: int = 75,
        encrypt: bool = True,
        rng: RngLike = None,
        codec=None,
    ) -> None:
        generator = ensure_rng(rng)
        self.codec = codec if codec is not None else JpegCodec(quality=quality)
        self.layout = layout
        self.encrypt = encrypt
        self.images: List[StoredImage] = []
        entries: List[FileEntry] = []
        for i, image in enumerate(images):
            compressed = self.codec.encode(np.asarray(image))
            key = generator.bytes(32)
            nonce = generator.bytes(12)
            payload = (
                ChaCha20(key, nonce).process(compressed) if encrypt else compressed
            )
            name = f"image_{i:02d}.rj"
            self.images.append(StoredImage(
                name=name, original=np.asarray(image), compressed=compressed,
                key=key, nonce=nonce,
            ))
            entries.append(FileEntry(name=name, data=payload))
        self.archive: PackedArchive = pack_archive(entries)

        self.pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=matrix, layout=layout)
        )
        if self.archive.n_bits > self.pipeline.capacity_bits:
            raise ValueError(
                f"archive of {self.archive.n_bits} bits exceeds unit capacity "
                f"{self.pipeline.capacity_bits}"
            )
        self.ranking = (
            proportional_share_ranking(
                self.archive.segment_bits, top_priority_segments=[0]
            )
            if layout == "dnamapper"
            else None
        )
        self.unit = self.pipeline.encode(
            bytes_to_bits(self.archive.data), ranking=self.ranking
        )
        self._clean_decodes = [
            self.codec.decode_robust(img.compressed)[0] for img in self.images
        ]

    def build_pool(
        self,
        error_rate: float,
        max_coverage: int,
        rng: RngLike = None,
        dispersion_shape: Optional[float] = None,
    ) -> ReadPool:
        """Pre-generate reads for a coverage sweep at one error rate."""
        return ReadPool(
            self.unit.strands,
            ErrorModel.uniform(error_rate),
            max_coverage=max_coverage,
            rng=rng,
            dispersion_shape=dispersion_shape,
        )

    def retrieve(self, clusters) -> RetrievalResult:
        """Decode the whole store from read clusters and score every image."""
        received = self.pipeline.receive(clusters)
        matrix, report = self.pipeline.correct_matrix(received)
        prioritized = self.pipeline.prioritized_bits(matrix)
        try:
            data = self.extract_archive(prioritized)
            entries = unpack_archive_robust(data)
        except ArchiveError:
            return RetrievalResult(
                losses_db=[CATASTROPHIC_LOSS_DB] * len(self.images),
                n_catastrophic=len(self.images),
                archive_ok=False,
                decode_clean=report.clean,
            )
        by_name = {entry.name: entry.data for entry in entries}
        losses: List[float] = []
        catastrophic = 0
        for stored, clean in zip(self.images, self._clean_decodes):
            payload = by_name.get(stored.name)
            if payload is None or len(payload) != len(stored.compressed):
                losses.append(CATASTROPHIC_LOSS_DB)
                catastrophic += 1
                continue
            compressed = (
                ChaCha20(stored.key, stored.nonce).process(payload)
                if self.encrypt else payload
            )
            image, _ = self.codec.decode_robust(compressed)
            if image.shape != stored.original.shape:
                losses.append(CATASTROPHIC_LOSS_DB)
                catastrophic += 1
                continue
            losses.append(
                quality_loss_db(stored.original, clean, image)
            )
        return RetrievalResult(
            losses_db=losses,
            n_catastrophic=catastrophic,
            archive_ok=True,
            decode_clean=report.clean,
        )

    def extract_archive(self, prioritized: np.ndarray) -> bytes:
        """Invert the priority mapping, staged through the directory.

        For the baseline and Gini the mapping is the identity. For
        DnaMapper the decoder first reads the header (the very highest
        priority bits), learns the directory extent, parses the directory,
        and only then can rebuild the full permutation — no stored
        metadata, exactly the property the paper claims.
        """
        n_bits = self.archive.n_bits
        if self.ranking is None:
            return bits_to_bytes(prioritized[:n_bits])
        header_prefix = bits_to_bytes(prioritized[: 9 * 8])
        dir_bits = directory_size_bits(header_prefix)  # may raise ArchiveError
        if dir_bits > n_bits:
            raise ArchiveError("directory extent exceeds the stored payload")
        directory_blob = bits_to_bytes(prioritized[:dir_bits])
        sizes = directory_file_sizes(directory_blob)
        segment_bits = [dir_bits] + [size * 8 for size in sizes]
        if sum(segment_bits) != n_bits:
            raise ArchiveError("directory sizes disagree with the unit payload")
        ranking = proportional_share_ranking(
            segment_bits, top_priority_segments=[0]
        )
        return bits_to_bytes(
            self.pipeline.unrank_bits(prioritized, n_bits, ranking)
        )


