"""Cost model: translating coverage and redundancy into read/write costs.

The paper's bottom line is economic — "minimizing the required sequencing
coverage is crucial to reducing the cost of reading from DNA", Gini saves
"up to 30%" of reading and "12.5%" of writing cost. This module makes the
conversion explicit so experiment outputs can be reported in cost terms:

* writing (synthesis) cost scales with the total number of bases
  synthesized: payload bases + index + primers, times (1 + redundancy);
* reading (sequencing) cost scales with the total bases sequenced:
  strand length times number of molecules times coverage.

Default unit prices are deliberately relative (cost *units* per base);
absolute dollar figures change monthly, ratios are what the paper argues
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout import MatrixConfig
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CostModel:
    """Relative per-base prices for synthesis and sequencing.

    Attributes:
        synthesis_per_base: write cost per synthesized base (per distinct
            molecule — copies come from amplification, which is cheap).
        sequencing_per_base: read cost per sequenced base (per read).
        primer_overhead_bases: bases of primers per molecule (both ends).
    """

    synthesis_per_base: float = 1.0
    sequencing_per_base: float = 0.01
    primer_overhead_bases: int = 40

    def __post_init__(self) -> None:
        check_positive(self.synthesis_per_base, "synthesis_per_base")
        check_positive(self.sequencing_per_base, "sequencing_per_base")
        check_non_negative(self.primer_overhead_bases, "primer_overhead_bases")

    # -- write side -----------------------------------------------------------

    def strand_bases(self, matrix: MatrixConfig) -> int:
        """Physical bases per molecule including primers."""
        return matrix.strand_length + self.primer_overhead_bases

    def write_cost(self, matrix: MatrixConfig) -> float:
        """Synthesis cost of one encoding unit."""
        return self.synthesis_per_base * self.strand_bases(matrix) * matrix.n_columns

    def write_cost_per_data_bit(self, matrix: MatrixConfig) -> float:
        """Synthesis cost amortized per stored payload bit."""
        return self.write_cost(matrix) / matrix.data_bits

    # -- read side ------------------------------------------------------------

    def read_cost(self, matrix: MatrixConfig, coverage: float) -> float:
        """Sequencing cost of retrieving one unit at a mean coverage."""
        check_non_negative(coverage, "coverage")
        return (
            self.sequencing_per_base
            * self.strand_bases(matrix)
            * matrix.n_columns
            * coverage
        )

    # -- the paper's comparisons ------------------------------------------------

    def read_saving(
        self, matrix: MatrixConfig, baseline_coverage: float, new_coverage: float
    ) -> float:
        """Fractional read-cost saving of a coverage reduction (0..1)."""
        baseline = self.read_cost(matrix, baseline_coverage)
        if baseline == 0:
            raise ValueError("baseline coverage must be positive")
        return 1.0 - self.read_cost(matrix, new_coverage) / baseline

    def write_saving(
        self, matrix: MatrixConfig, reduced_nsym: int
    ) -> float:
        """Fractional synthesis saving from dropping parity molecules.

        Mirrors the paper's Figure 13 arithmetic: cutting redundancy from
        ``matrix.nsym`` to ``reduced_nsym`` molecules shrinks the unit by
        that many columns; the saving is relative to the full unit.
        """
        if not (0 <= reduced_nsym <= matrix.nsym):
            raise ValueError(
                f"reduced_nsym must be in [0, {matrix.nsym}], got {reduced_nsym}"
            )
        dropped_columns = matrix.nsym - reduced_nsym
        return dropped_columns / matrix.n_columns
