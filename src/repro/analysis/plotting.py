"""Terminal plotting: dependency-free ASCII charts for the examples.

The repository has no plotting dependency, so experiment scripts render
their curves as ASCII art. This is intentionally minimal — a fixed-size
grid, one or more labelled series, automatic y-scaling.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_MARKS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    height: int = 16,
    width: int = 72,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more equally-long series as an ASCII line chart.

    Args:
        series: name -> y-values. All series must have the same length and
            are drawn over the same implicit 0..n-1 x axis, compressed or
            stretched to ``width`` columns.
        height / width: plot area size in characters.
        y_label / x_label: optional axis captions.

    Returns:
        The chart as a multi-line string (also suitable for ``print``).
    """
    if not series:
        raise ValueError("series must not be empty")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n_points,) = lengths
    if n_points < 2:
        raise ValueError("series need at least two points")
    if height < 3 or width < 8:
        raise ValueError("chart area too small")

    all_values = np.concatenate([np.asarray(v, dtype=float)
                                 for v in series.values()])
    y_min = float(np.nanmin(all_values))
    y_max = float(np.nanmax(all_values))
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        values = np.asarray(values, dtype=float)
        columns = np.linspace(0, width - 1, n_points).round().astype(int)
        rows = ((values - y_min) / (y_max - y_min) * (height - 1))
        rows = (height - 1 - rows.round()).astype(int)
        previous = None
        for column, row in zip(columns, rows):
            if np.isnan(row):
                previous = None
                continue
            grid[int(row)][int(column)] = mark
            if previous is not None:
                _draw_segment(grid, previous, (int(column), int(row)), mark)
            previous = (int(column), int(row))

    lines = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:8.3f} |"
        elif i == height - 1:
            prefix = f"{y_min:8.3f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end, mark) -> None:
    """Fill intermediate cells between two plotted points (vertical steps)."""
    (x0, y0), (x1, y1) = start, end
    if x1 == x0:
        lo, hi = sorted((y0, y1))
        for y in range(lo + 1, hi):
            if grid[y][x0] == " ":
                grid[y][x0] = "."
        return
    for x in range(x0 + 1, x1):
        t = (x - x0) / (x1 - x0)
        y = int(round(y0 + t * (y1 - y0)))
        if grid[y][x] == " ":
            grid[y][x] = "."
