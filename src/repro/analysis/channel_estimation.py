"""Channel-parameter estimation from reads.

The paper argues that unequal ECC fails because the channel's error
profile at *read time* is unknowable at *write time*. A real system still
wants to know the current profile — e.g. to choose the sequencing
coverage for the rest of a retrieval after a pilot run. This module
estimates per-type error rates (insertion / deletion / substitution) by
aligning reads against a reference (the known strand in calibration, or
the consensus estimate in blind operation) and counting alignment
operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.codec.basemap import bases_to_indices
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ChannelEstimate:
    """Estimated per-position error rates.

    Attributes:
        p_insertion / p_deletion / p_substitution: per-reference-position
            event rate estimates.
        n_positions: total reference positions observed (estimation weight).
    """

    p_insertion: float
    p_deletion: float
    p_substitution: float
    n_positions: int

    @property
    def total_rate(self) -> float:
        return self.p_insertion + self.p_deletion + self.p_substitution

    @property
    def indel_fraction(self) -> float:
        """Fraction of errors that are indels (the paper's §8 metric)."""
        if self.total_rate == 0:
            return 0.0
        return (self.p_insertion + self.p_deletion) / self.total_rate


def count_alignment_operations(reference: str, read: str) -> tuple:
    """(matches, substitutions, deletions, insertions) of one alignment.

    Unit-cost global alignment; deletions are reference characters the
    read lost, insertions are extra read characters.
    """
    a = bases_to_indices(reference) if reference else np.zeros(0, dtype=np.uint8)
    b = bases_to_indices(read) if read else np.zeros(0, dtype=np.uint8)
    n, m = len(a), len(b)
    matrix = np.zeros((n + 1, m + 1), dtype=np.int32)
    matrix[0] = np.arange(m + 1)
    matrix[:, 0] = np.arange(n + 1)
    offsets = np.arange(m + 1)
    for i in range(1, n + 1):
        previous = matrix[i - 1]
        substitution = (b != a[i - 1]).astype(np.int32)
        candidates = np.empty(m + 1, dtype=np.int32)
        candidates[0] = previous[0] + 1
        candidates[1:] = np.minimum(previous[:-1] + substitution,
                                    previous[1:] + 1)
        matrix[i] = np.minimum.accumulate(candidates - offsets) + offsets
    matches = substitutions = deletions = insertions = 0
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if a[i - 1] == b[j - 1] else 1
            if matrix[i, j] == matrix[i - 1, j - 1] + cost:
                if cost == 0:
                    matches += 1
                else:
                    substitutions += 1
                i -= 1
                j -= 1
                continue
        if i > 0 and matrix[i, j] == matrix[i - 1, j] + 1:
            deletions += 1
            i -= 1
        else:
            insertions += 1
            j -= 1
    return matches, substitutions, deletions, insertions


def estimate_channel(
    references: Sequence[str], reads_per_reference: Sequence[Sequence[str]]
) -> ChannelEstimate:
    """Estimate IDS rates from reads aligned to their references.

    Args:
        references: the true (or consensus-estimated) strands.
        reads_per_reference: for each reference, its noisy reads.
    """
    if len(references) != len(reads_per_reference):
        raise ValueError("references and read groups must align")
    total_positions = 0
    substitutions = deletions = insertions = 0
    for reference, reads in zip(references, reads_per_reference):
        for read in reads:
            _, subs, dels, ins = count_alignment_operations(reference, read)
            substitutions += subs
            deletions += dels
            insertions += ins
            total_positions += len(reference)
    check_non_negative(total_positions, "observed positions")
    if total_positions == 0:
        return ChannelEstimate(0.0, 0.0, 0.0, 0)
    return ChannelEstimate(
        p_insertion=insertions / total_positions,
        p_deletion=deletions / total_positions,
        p_substitution=substitutions / total_positions,
        n_positions=total_positions,
    )
