"""Positional error profiling — the measurement behind Figures 3-6.

Runs a reconstructor over many randomly generated clusters and records,
for every position of the strand, how often the reconstructed symbol
differs from the original. The resulting per-position error-probability
curve is the paper's "reliability skew".
"""

from __future__ import annotations

import numpy as np

from repro.channel.errors import ErrorModel
from repro.consensus.base import Reconstructor
from repro.utils.rng import RngLike, ensure_rng


def positional_error_profile(
    reconstructor: Reconstructor,
    length: int,
    error_model: ErrorModel,
    coverage: int,
    trials: int,
    rng: RngLike = None,
    n_alphabet: int = 4,
) -> np.ndarray:
    """Per-position error frequency of a reconstructor.

    Args:
        reconstructor: algorithm under test (must handle ``n_alphabet``).
        length: strand length L.
        error_model: channel noise per read.
        coverage: reads per cluster N.
        trials: number of independent clusters.
        rng: random source.
        n_alphabet: alphabet size of the generated strands.

    Returns:
        Array of ``length`` error frequencies in [0, 1].
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    generator = ensure_rng(rng)
    # Generate every trial's cluster first (same RNG call order as the old
    # per-trial loop), then reconstruct all trials in one batched call.
    originals = np.empty((trials, length), dtype=np.int64)
    clusters = []
    for t in range(trials):
        original = generator.integers(0, n_alphabet, size=length).astype(np.uint8)
        originals[t] = original
        clusters.append([
            error_model.apply_indices(original, generator, n_alphabet=n_alphabet)
            for _ in range(coverage)
        ])
    estimates = reconstructor.reconstruct_many_indices(clusters, length)
    errors = (np.stack(estimates) != originals).sum(axis=0, dtype=np.float64)
    return errors / trials


def positional_error_profile_binary(
    reconstructor: Reconstructor,
    length: int,
    error_model: ErrorModel,
    coverage: int,
    trials: int,
    rng: RngLike = None,
    adversarial: bool = False,
) -> np.ndarray:
    """Binary-alphabet profile, optionally with adversarial tie-breaking.

    This is the Figure 6 measurement: ``adversarial=True`` requires the
    reconstructor to expose ``reconstruct_adversarial`` (the optimal median
    search), which picks among tied optima the string *most accurate in
    the middle* — attempting to produce the opposite skew.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    generator = ensure_rng(rng)
    originals = np.empty((trials, length), dtype=np.int64)
    clusters = []
    for t in range(trials):
        original = generator.integers(0, 2, size=length).astype(np.uint8)
        originals[t] = original
        clusters.append([
            error_model.apply_indices(original, generator, n_alphabet=2)
            for _ in range(coverage)
        ])
    if adversarial:
        # Adversarial selection needs the original per trial; stays scalar.
        estimates = [
            reconstructor.reconstruct_adversarial(reads, length, original)
            for reads, original in zip(clusters, originals)
        ]
    else:
        estimates = reconstructor.reconstruct_many_indices(clusters, length)
    errors = (np.stack(estimates) != originals).sum(axis=0, dtype=np.float64)
    return errors / trials
