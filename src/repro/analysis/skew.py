"""Positional error profiling — the measurement behind Figures 3-6.

Runs a reconstructor over many randomly generated clusters and records,
for every position of the strand, how often the reconstructed symbol
differs from the original. The resulting per-position error-probability
curve is the paper's "reliability skew".

All trials of a profile run through the columnar read plane as a single
batch: one :class:`~repro.channel.engine.BatchedChannelEngine` call emits
every read of every trial (one RNG draw over the whole sweep), and one
``reconstruct_batch`` call scans them — thousands of trials cost a
handful of vectorized passes rather than ``trials x coverage`` Python
iterations. Every profile accepts an
:class:`~repro.channel.engine.ErrorRateMap` in place of the uniform
model, opening positional-degradation scenarios (ramped rates along the
strand) to the same batched measurement;
:func:`positional_confidence_profile` pairs the realized error curve
with the posterior's per-position confidence for those studies.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.channel.engine import BatchedChannelEngine, RateSpec
from repro.consensus.base import Reconstructor
from repro.utils.rng import RngLike, ensure_rng


def _simulate_trials(
    error_model: RateSpec,
    length: int,
    coverage: int,
    trials: int,
    generator: np.random.Generator,
    n_alphabet: int,
):
    """Random originals + their noisy clusters, one engine call for all."""
    originals = generator.integers(
        0, n_alphabet, size=(trials, length)
    ).astype(np.uint8)
    engine = BatchedChannelEngine(error_model, n_alphabet=n_alphabet)
    batch = engine.sequence_counts(
        originals, np.full(trials, coverage, dtype=np.int64), generator
    )
    return originals, batch


def positional_error_profile(
    reconstructor: Reconstructor,
    length: int,
    error_model: RateSpec,
    coverage: int,
    trials: int,
    rng: RngLike = None,
    n_alphabet: int = 4,
) -> np.ndarray:
    """Per-position error frequency of a reconstructor.

    Args:
        reconstructor: algorithm under test (must handle ``n_alphabet``).
        length: strand length L.
        error_model: channel noise per read — a uniform ``ErrorModel`` or
            a positional ``ErrorRateMap`` for skew scenarios.
        coverage: reads per cluster N.
        trials: number of independent clusters.
        rng: random source.
        n_alphabet: alphabet size of the generated strands.

    Returns:
        Array of ``length`` error frequencies in [0, 1].
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    generator = ensure_rng(rng)
    originals, batch = _simulate_trials(
        error_model, length, coverage, trials, generator, n_alphabet
    )
    estimates = reconstructor.reconstruct_batch(batch, length)
    errors = (estimates != originals).sum(axis=0, dtype=np.float64)
    return errors / trials


def positional_confidence_profile(
    reconstructor,
    length: int,
    error_model: RateSpec,
    coverage: int,
    trials: int,
    rng: RngLike = None,
    n_alphabet: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Realized error curve paired with the posterior confidence curve.

    The measurement behind positional-degradation studies: simulate
    ``trials`` clusters under ``error_model`` (typically an
    :class:`~repro.channel.engine.ErrorRateMap` ramp), reconstruct them
    through the batched confidence entry point, and report, per position,
    both how often the estimate is wrong and how much posterior mass the
    winning symbol carried. Where the realized error peaks, the
    confidence dips — alignment ambiguity *is* the reliability skew.

    Args:
        reconstructor: must expose ``reconstruct_batch_with_confidence``
            (see :class:`repro.consensus.posterior.PosteriorReconstructor`).
        length: strand length L.
        error_model: uniform ``ErrorModel`` or positional ``ErrorRateMap``.
        coverage: reads per cluster N.
        trials: number of independent clusters.
        rng: random source.
        n_alphabet: alphabet size of the generated strands.

    Returns:
        ``(error_profile, confidence_profile)``, each of shape
        ``(length,)`` — mean error frequency and mean winning posterior
        mass per position.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    generator = ensure_rng(rng)
    originals, batch = _simulate_trials(
        error_model, length, coverage, trials, generator, n_alphabet
    )
    results = reconstructor.reconstruct_batch_with_confidence(batch, length)
    estimates = np.stack([estimate for estimate, _ in results])
    confidences = np.stack([confidence for _, confidence in results])
    errors = (estimates != originals).mean(axis=0, dtype=np.float64)
    return errors, confidences.mean(axis=0)


def positional_error_profile_binary(
    reconstructor: Reconstructor,
    length: int,
    error_model: RateSpec,
    coverage: int,
    trials: int,
    rng: RngLike = None,
    adversarial: bool = False,
) -> np.ndarray:
    """Binary-alphabet profile, optionally with adversarial tie-breaking.

    This is the Figure 6 measurement: ``adversarial=True`` requires the
    reconstructor to expose ``reconstruct_adversarial`` (the optimal median
    search), which picks among tied optima the string *most accurate in
    the middle* — attempting to produce the opposite skew.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    generator = ensure_rng(rng)
    originals, batch = _simulate_trials(
        error_model, length, coverage, trials, generator, n_alphabet=2
    )
    if adversarial:
        # Adversarial selection needs the original per trial; stays scalar.
        estimates = np.stack([
            reconstructor.reconstruct_adversarial(
                [np.asarray(r, dtype=np.int64) for r in batch.reads_of(t)],
                length, originals[t],
            )
            for t in range(trials)
        ])
    else:
        estimates = reconstructor.reconstruct_batch(batch, length)
    errors = (estimates != originals).sum(axis=0, dtype=np.float64)
    return errors / trials
