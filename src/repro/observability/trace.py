"""Nested wall-clock spans with a thread-local active tracer.

Instrumented hot paths ask :func:`get_tracer` for the thread's active
tracer and open stage spans on it::

    tracer = get_tracer()
    with tracer.span("rs.correct", n_units=n_units) as span:
        ...
        span.set(n_retry_rows=retry.size)

When no tracer is active, :func:`get_tracer` returns the shared
:data:`NULL_TRACER` whose :meth:`~NullTracer.span` hands back one
preallocated no-op context manager — the entire cost of an untraced
stage is a thread-local read plus two trivial method calls, which is why
the instrumentation can live inside the decode path permanently (the
<5% budget is pinned by ``tests/integration/test_perf_budget.py``).

Spans are recorded on monotonic clocks (``time.perf_counter``), nest via
an explicit stack (so sibling stages attach to the right parent), and
carry a free-form attribute dict (batch rows, cluster counts, dirty
codewords...). The tracer also owns a
:class:`~repro.observability.metrics.MetricRegistry` so counters emitted
mid-span land in the same run record, and a ``manifests`` list the store
plane appends finished :class:`~repro.observability.manifest.RunManifest`
objects to.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability.metrics import MetricRegistry, NULL_REGISTRY


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Attributes:
        name: stage name (dotted, e.g. ``"rs.decode_many"``).
        t_start: ``perf_counter`` at entry.
        t_end: ``perf_counter`` at exit (``None`` while open).
        attributes: free-form span attributes.
        children: nested spans, in start order.
    """

    name: str
    t_start: float
    t_end: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def set(self, **attributes) -> None:
        """Attach attributes to the span (usable mid-span)."""
        self.attributes.update(attributes)

    def find(self, name: str) -> Optional["SpanRecord"]:
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        """JSON-ready form (attributes coerced to plain types)."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "attributes": {k: _plain(v) for k, v in self.attributes.items()},
            "children": [child.to_dict() for child in self.children],
        }


def _plain(value):
    """Coerce numpy scalars (the usual attribute payload) to JSON types."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class _OpenSpan:
    """Context-manager handle over one :class:`SpanRecord`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attributes) -> None:
        self.record.set(**attributes)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.record)


class _NullSpan:
    """The shared no-op span handle: reusable, stateless, allocation-free."""

    __slots__ = ()

    def set(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default inactive tracer: every operation is a no-op.

    ``is_recording`` is False so manifest emission (the one genuinely
    non-free step) is skipped entirely on the untraced path.
    """

    __slots__ = ()

    is_recording = False
    metrics = NULL_REGISTRY

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def attach_manifest(self, manifest) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: span tree + metric registry + manifests.

    Not thread-safe by design — activate one tracer per thread (the
    active-tracer slot itself is thread-local).
    """

    is_recording = True

    def __init__(self, metrics: Optional[MetricRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.roots: List[SpanRecord] = []
        self.manifests: List = []
        #: Free-form run context callers stuff seeds/config identifiers
        #: into; :func:`~repro.observability.manifest.build_manifest`
        #: copies it into the manifest.
        self.context: Dict[str, object] = {}
        #: When False, the store plane skips its per-decode manifest
        #: emission (spans and counters still record). Long loops of
        #: decodes — the benchmark harness — set this and build one
        #: manifest themselves at the end.
        self.auto_manifest = True
        self._stack: List[SpanRecord] = []
        # Stage totals are accumulated incrementally as spans close so
        # stage_totals() stays O(#stages) however many spans a long run
        # records (a manifest is built per store decode when
        # auto_manifest is on — walking the whole forest there again
        # would be quadratic over a decode loop).
        self._stage_totals: Dict[str, Dict[str, float]] = {}
        self._root_seconds = 0.0

    def span(self, name: str, **attributes) -> _OpenSpan:
        """Open a span; attaches to the innermost open span, else a root."""
        record = SpanRecord(
            name=name,
            t_start=time.perf_counter(),
            attributes={k: _plain(v) for k, v in attributes.items()},
        )
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        return _OpenSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        if record.t_end is not None:
            return  # already closed by an outer span's unwind
        record.t_end = time.perf_counter()
        # Tolerate exceptions unwinding through several spans: pop up to
        # and including the finished record.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                self._account(record)
                break
            if top.t_end is None:
                top.t_end = record.t_end
            self._account(top)
        if not self._stack:
            self._root_seconds += record.seconds

    def _account(self, record: SpanRecord) -> None:
        entry = self._stage_totals.setdefault(
            record.name, {"seconds": 0.0, "calls": 0}
        )
        entry["seconds"] += record.seconds
        entry["calls"] += 1

    def attach_manifest(self, manifest) -> None:
        self.manifests.append(manifest)

    def find(self, name: str) -> Optional[SpanRecord]:
        """First span named ``name`` across all roots (depth-first)."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def stage_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregate wall time and call count per *closed* span name.

        Every span contributes its own (inclusive) duration under its
        name, so nested stages report their usual meaning: ``receive``
        includes the ``consensus`` call it makes, and the two can still
        be compared because both are totaled separately. Returns fresh
        dicts — safe to embed in a manifest while the tracer keeps
        recording.
        """
        return {
            name: {"seconds": round(entry["seconds"], 9),
                   "calls": entry["calls"]}
            for name, entry in self._stage_totals.items()
        }

    def total_seconds(self) -> float:
        """Summed wall time of the closed root spans (the run's traced
        time)."""
        return round(self._root_seconds, 9)


_state = threading.local()


def get_tracer():
    """The thread's active tracer, or :data:`NULL_TRACER` when none is."""
    return getattr(_state, "tracer", NULL_TRACER)


def _activate(tracer) -> None:
    _state.tracer = tracer


def _deactivate() -> None:
    if hasattr(_state, "tracer"):
        del _state.tracer


@contextmanager
def use_tracer(tracer: Tracer):
    """Activate ``tracer`` for the current thread within the block."""
    previous = getattr(_state, "tracer", None)
    _state.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is None:
            _deactivate()
        else:
            _state.tracer = previous


def traced(name: Optional[str] = None, **attributes):
    """Decorator form of :meth:`Tracer.span` on the active tracer.

    ``@traced("stage.name")`` wraps the call in a span; with no name the
    function's qualified name is used. Attributes are static (evaluated
    at decoration time).
    """

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name, **attributes):
                return func(*args, **kwargs)

        return wrapper

    return decorate
