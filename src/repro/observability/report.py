"""Human-readable rendering and diffing of run manifests.

``render_manifest`` turns one :class:`~repro.observability.manifest.
RunManifest` into a markdown-ish text report (stage wall-time table with
shares, counters, gauges, histograms); ``diff_manifests`` compares two
manifests stage by stage and counter by counter. Both are exposed via
``python -m repro.cli report``.
"""

from __future__ import annotations

from typing import List, Union

from repro.observability.manifest import RunManifest


def _as_manifest(manifest: Union[RunManifest, dict]) -> RunManifest:
    if isinstance(manifest, RunManifest):
        return manifest
    return RunManifest.from_dict(manifest)


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers).rstrip(),
             fmt.format(*("-" * w for w in widths)).rstrip()]
    lines.extend(fmt.format(*row).rstrip() for row in rows)
    return lines


def render_manifest(manifest: Union[RunManifest, dict]) -> str:
    """Render one manifest as a text/markdown report."""
    m = _as_manifest(manifest)
    lines: List[str] = []
    lines.append(f"# Run manifest: {m.name}")
    lines.append("")
    lines.append(f"- schema:       {m.schema}")
    lines.append(f"- total traced: {m.total_seconds:.6f} s")
    fp = m.config.get("fingerprint") or "(none)"
    lines.append(f"- config:       {fp}")
    env = m.environment
    lines.append(
        "- environment:  python {python}, numpy {numpy}, {platform}".format(
            python=env.get("python", "?"),
            numpy=env.get("numpy", "?"),
            platform=env.get("platform", "?"),
        )
    )
    if m.context:
        lines.append("- context:      " + ", ".join(
            f"{k}={v}" for k, v in sorted(m.context.items())
        ))
    if m.truncated_roots:
        lines.append(
            f"- span tree truncated: {m.truncated_roots} root span(s) "
            "omitted (stage totals cover them)"
        )

    if m.stages:
        lines.append("")
        lines.append("## Stages")
        lines.append("")
        rows = []
        # Sort by wall time, heaviest first: the report answers "where
        # did the run spend its time".
        for name, entry in sorted(
            m.stages.items(),
            key=lambda item: -float(item[1].get("seconds", 0.0)),
        ):
            seconds = float(entry.get("seconds", 0.0))
            rows.append([
                name,
                f"{seconds:.6f}",
                f"{100.0 * m.stage_share(name):5.1f}%",
                str(entry.get("calls", 0)),
            ])
        lines.extend(_table(["stage", "seconds", "share", "calls"], rows))

    counters = m.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("## Counters")
        lines.append("")
        lines.extend(_table(
            ["counter", "value"],
            [[name, str(value)] for name, value in sorted(counters.items())],
        ))

    gauges = m.metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("## Gauges")
        lines.append("")
        lines.extend(_table(
            ["gauge", "value"],
            [[name, str(value)] for name, value in sorted(gauges.items())],
        ))

    timings = m.metrics.get("timings", {})
    if timings:
        lines.append("")
        lines.append("## Timings")
        lines.append("")
        rows = []
        for name, entry in sorted(timings.items()):
            count = int(entry.get("count", 0))
            mean = float(entry.get("sum", 0.0)) / count if count else 0.0
            rows.append([
                name,
                str(count),
                f"{mean:.6f}",
                f"{float(entry.get('p50', 0.0)):.6f}",
                f"{float(entry.get('p95', 0.0)):.6f}",
                f"{float(entry.get('p99', 0.0)):.6f}",
            ])
        lines.extend(_table(
            ["timing", "count", "mean s", "p50 s", "p95 s", "p99 s"], rows,
        ))

    histograms = m.metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("## Histograms")
        for name, counts in sorted(histograms.items()):
            lines.append("")
            lines.append(f"### {name}")
            lines.append("")
            total = sum(counts.values()) or 1
            rows = [
                [label, str(count), f"{100.0 * count / total:5.1f}%"]
                for label, count in sorted(
                    counts.items(), key=lambda item: -item[1]
                )
            ]
            lines.extend(_table(["label", "count", "share"], rows))

    return "\n".join(lines) + "\n"


def diff_manifests(
    baseline: Union[RunManifest, dict],
    fresh: Union[RunManifest, dict],
) -> str:
    """Render the differences between two manifests.

    Reports per-stage wall-time and share-of-total deltas, counter
    deltas, and config-fingerprint mismatch. Stages/counters present on
    only one side are listed as such.
    """
    a = _as_manifest(baseline)
    b = _as_manifest(fresh)
    lines: List[str] = []
    lines.append(f"# Manifest diff: {a.name} -> {b.name}")
    lines.append("")
    fp_a = a.config.get("fingerprint") or "(none)"
    fp_b = b.config.get("fingerprint") or "(none)"
    if fp_a != fp_b:
        lines.append(f"- CONFIG CHANGED: {fp_a} -> {fp_b}")
    else:
        lines.append(f"- config:       {fp_a} (unchanged)")
    lines.append(
        f"- total traced: {a.total_seconds:.6f} s -> "
        f"{b.total_seconds:.6f} s "
        f"({_signed(b.total_seconds - a.total_seconds)} s)"
    )

    names = sorted(set(a.stages) | set(b.stages))
    if names:
        lines.append("")
        lines.append("## Stage deltas")
        lines.append("")
        rows = []
        for name in names:
            if name not in a.stages:
                rows.append([name, "(new)", f"{b.stage_seconds(name):.6f}",
                             "-", f"{100.0 * b.stage_share(name):+5.1f}pp"])
                continue
            if name not in b.stages:
                rows.append([name, f"{a.stage_seconds(name):.6f}", "(gone)",
                             "-", f"{-100.0 * a.stage_share(name):+5.1f}pp"])
                continue
            sa, sb = a.stage_seconds(name), b.stage_seconds(name)
            share_delta = 100.0 * (b.stage_share(name) - a.stage_share(name))
            rows.append([
                name, f"{sa:.6f}", f"{sb:.6f}",
                _signed(sb - sa), f"{share_delta:+5.1f}pp",
            ])
        lines.extend(_table(
            ["stage", "base s", "fresh s", "delta s", "share"], rows,
        ))

    counters_a = a.metrics.get("counters", {})
    counters_b = b.metrics.get("counters", {})
    names = sorted(set(counters_a) | set(counters_b))
    changed = [
        name for name in names
        if counters_a.get(name) != counters_b.get(name)
    ]
    if changed:
        lines.append("")
        lines.append("## Counter deltas")
        lines.append("")
        rows = []
        for name in changed:
            va = counters_a.get(name)
            vb = counters_b.get(name)
            if va is None:
                rows.append([name, "(new)", str(vb), "-"])
            elif vb is None:
                rows.append([name, str(va), "(gone)", "-"])
            else:
                rows.append([name, str(va), str(vb), _signed(vb - va)])
        lines.extend(_table(["counter", "base", "fresh", "delta"], rows))
    elif names:
        lines.append("")
        lines.append("## Counter deltas")
        lines.append("")
        lines.append("(no counter changed)")

    return "\n".join(lines) + "\n"


def _signed(value: float) -> str:
    if isinstance(value, int):
        return f"{value:+d}"
    return f"{value:+.6f}"
