"""Machine-checkable run manifests: the evidence a traced run leaves.

A :class:`RunManifest` captures everything needed to compare two runs of
the decode pipeline without re-running either: a config fingerprint (and
the config values behind it), the caller's seed/context notes, the
aggregated per-stage wall times, the full span tree (truncated for very
long runs), a metric snapshot, and environment info. Manifests are
serialized as schema-versioned JSON; :func:`validate_manifest` is the
machine check — ``benchmarks/check_trend.py --stage`` and the
``repro.cli report`` differ both consume validated manifests.

The store plane emits one manifest per ``DnaStore.decode`` /
``decode_pool`` call when a tracer is active; ``benchmarks/conftest.py``
writes one per figure run next to the ``BENCH_*.json`` evidence.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Bump on any breaking change to the manifest layout; the validator
#: rejects other versions so downstream tooling never misreads a field.
SCHEMA_VERSION = 1

#: Root spans kept verbatim in the manifest's span tree. Benchmark runs
#: decode hundreds of times; their evidence is the aggregated ``stages``
#: table, so the tree is capped and the cut recorded in
#: ``truncated_roots``.
DEFAULT_MAX_ROOT_SPANS = 25


class ManifestError(ValueError):
    """A manifest failed schema validation; ``problems`` lists why."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "invalid run manifest: " + "; ".join(self.problems)
        )


def config_fingerprint(config) -> str:
    """Stable hex fingerprint of a configuration object.

    Accepts a dataclass (e.g. :class:`~repro.core.pipeline.
    PipelineConfig`), a mapping, or anything JSON-serializable after
    ``repr`` fallback; equal configs always hash equal, so manifests of
    comparable runs carry comparable fingerprints.
    """
    values = _config_values(config)
    blob = json.dumps(values, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _config_values(config) -> dict:
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def environment_info() -> dict:
    """The environment block every manifest carries."""
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


@dataclass
class RunManifest:
    """One traced run, ready to serialize, validate, render and diff.

    Attributes:
        name: what ran (``"store.decode_pool"``, a pytest node id...).
        config: ``{"fingerprint": ..., "values": {...}}``.
        context: caller notes — RNG seeds, payload sizes, scenario knobs.
        stages: aggregated ``{span name: {"seconds", "calls"}}``.
        total_seconds: summed root-span wall time.
        spans: root span trees (possibly truncated, see
            ``truncated_roots``).
        metrics: the registry snapshot
            (``{"counters", "gauges", "histograms"}``).
        environment: python/numpy/platform versions.
    """

    name: str
    config: dict = field(default_factory=lambda: {"fingerprint": "",
                                                  "values": {}})
    context: dict = field(default_factory=dict)
    stages: Dict[str, dict] = field(default_factory=dict)
    total_seconds: float = 0.0
    spans: List[dict] = field(default_factory=list)
    truncated_roots: int = 0
    metrics: dict = field(default_factory=lambda: {
        "counters": {}, "gauges": {}, "histograms": {}, "timings": {},
    })
    environment: dict = field(default_factory=environment_info)
    schema: int = SCHEMA_VERSION

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "name": self.name,
            "config": self.config,
            "context": self.context,
            "stages": self.stages,
            "total_seconds": self.total_seconds,
            "spans": self.spans,
            "truncated_roots": self.truncated_roots,
            "metrics": self.metrics,
            "environment": self.environment,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        validate_manifest(data)
        return cls(
            name=data["name"],
            config=data["config"],
            context=data.get("context", {}),
            stages=data["stages"],
            total_seconds=data["total_seconds"],
            spans=data.get("spans", []),
            truncated_roots=data.get("truncated_roots", 0),
            metrics=data["metrics"],
            environment=data["environment"],
            schema=data["schema"],
        )

    @classmethod
    def load(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- convenience accessors ----------------------------------------------

    def stage_seconds(self, name: str) -> float:
        return float(self.stages.get(name, {}).get("seconds", 0.0))

    def stage_share(self, name: str) -> float:
        """The stage's fraction of the run's total traced wall time."""
        if self.total_seconds <= 0:
            return 0.0
        return self.stage_seconds(name) / self.total_seconds

    def counter(self, name: str, default=0):
        return self.metrics.get("counters", {}).get(name, default)

    def histogram(self, name: str) -> dict:
        return self.metrics.get("histograms", {}).get(name, {})


def build_manifest(
    tracer,
    name: str,
    config=None,
    context: Optional[dict] = None,
    max_root_spans: int = DEFAULT_MAX_ROOT_SPANS,
) -> RunManifest:
    """Snapshot a :class:`~repro.observability.trace.Tracer` into a
    validated :class:`RunManifest`.

    ``config`` is fingerprinted via :func:`config_fingerprint`;
    ``context`` merges over the tracer's own ``context`` dict (where
    callers park RNG seeds). The span tree keeps at most
    ``max_root_spans`` roots — the aggregated ``stages`` table always
    covers every span regardless.
    """
    merged_context = dict(getattr(tracer, "context", {}))
    if context:
        merged_context.update(context)
    config_block = {"fingerprint": "", "values": {}}
    if config is not None:
        config_block = {
            "fingerprint": config_fingerprint(config),
            "values": _jsonable(_config_values(config)),
        }
    roots = list(getattr(tracer, "roots", []))
    kept = roots[:max_root_spans]
    manifest = RunManifest(
        name=name,
        config=config_block,
        context=_jsonable(merged_context),
        stages=tracer.stage_totals(),
        total_seconds=tracer.total_seconds(),
        spans=[root.to_dict() for root in kept],
        truncated_roots=len(roots) - len(kept),
        metrics=tracer.metrics.snapshot(),
    )
    validate_manifest(manifest.to_dict())
    return manifest


def _jsonable(value):
    """Round-trip through JSON semantics (numpy scalars -> plain types)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


# -- the validator -----------------------------------------------------------

def _check(problems, condition, message) -> bool:
    if not condition:
        problems.append(message)
    return bool(condition)


def _validate_span(problems, span, where) -> None:
    if not _check(problems, isinstance(span, dict), f"{where}: not a dict"):
        return
    _check(problems, isinstance(span.get("name"), str) and span.get("name"),
           f"{where}: missing span name")
    seconds = span.get("seconds")
    _check(problems, isinstance(seconds, (int, float)) and seconds >= 0,
           f"{where}: seconds must be a non-negative number")
    _check(problems, isinstance(span.get("attributes", {}), dict),
           f"{where}: attributes must be a dict")
    children = span.get("children", [])
    if _check(problems, isinstance(children, list),
              f"{where}: children must be a list"):
        for i, child in enumerate(children):
            _validate_span(problems, child, f"{where}.children[{i}]")


def validate_manifest(data: dict) -> dict:
    """Validate a manifest dict against the schema; raise
    :class:`ManifestError` listing every problem, else return ``data``.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        raise ManifestError(["manifest must be a JSON object"])
    if not _check(problems, data.get("schema") == SCHEMA_VERSION,
                  f"schema must be {SCHEMA_VERSION}, "
                  f"got {data.get('schema')!r}"):
        raise ManifestError(problems)

    _check(problems, isinstance(data.get("name"), str) and data.get("name"),
           "name must be a non-empty string")

    config = data.get("config")
    if _check(problems, isinstance(config, dict), "config must be a dict"):
        _check(problems, isinstance(config.get("fingerprint"), str),
               "config.fingerprint must be a string")
        _check(problems, isinstance(config.get("values"), dict),
               "config.values must be a dict")

    _check(problems, isinstance(data.get("context", {}), dict),
           "context must be a dict")

    stages = data.get("stages")
    if _check(problems, isinstance(stages, dict), "stages must be a dict"):
        for name, entry in stages.items():
            where = f"stages[{name!r}]"
            if not _check(problems, isinstance(entry, dict),
                          f"{where}: not a dict"):
                continue
            seconds = entry.get("seconds")
            _check(problems,
                   isinstance(seconds, (int, float)) and seconds >= 0,
                   f"{where}: seconds must be a non-negative number")
            calls = entry.get("calls")
            _check(problems, isinstance(calls, int) and calls >= 1,
                   f"{where}: calls must be a positive integer")

    total = data.get("total_seconds")
    _check(problems, isinstance(total, (int, float)) and total >= 0,
           "total_seconds must be a non-negative number")

    spans = data.get("spans", [])
    if _check(problems, isinstance(spans, list), "spans must be a list"):
        for i, span in enumerate(spans):
            _validate_span(problems, span, f"spans[{i}]")
    truncated = data.get("truncated_roots", 0)
    _check(problems, isinstance(truncated, int) and truncated >= 0,
           "truncated_roots must be a non-negative integer")

    metrics = data.get("metrics")
    if _check(problems, isinstance(metrics, dict), "metrics must be a dict"):
        for kind in ("counters", "gauges", "histograms"):
            block = metrics.get(kind)
            if not _check(problems, isinstance(block, dict),
                          f"metrics.{kind} must be a dict"):
                continue
            for name, value in block.items():
                where = f"metrics.{kind}[{name!r}]"
                if kind == "histograms":
                    ok = isinstance(value, dict) and all(
                        isinstance(v, int) for v in value.values()
                    )
                    _check(problems, ok,
                           f"{where}: must map labels to integer counts")
                else:
                    _check(problems, isinstance(value, (int, float)),
                           f"{where}: must be a number")
        # The timing-histogram block is optional (older manifests
        # predate it) but must be well-formed when present.
        timings = metrics.get("timings") if isinstance(metrics, dict) \
            else None
        if timings is not None and _check(
            problems, isinstance(timings, dict),
            "metrics.timings must be a dict",
        ):
            for name, entry in timings.items():
                where = f"metrics.timings[{name!r}]"
                if not _check(problems, isinstance(entry, dict),
                              f"{where}: not a dict"):
                    continue
                count = entry.get("count")
                _check(problems, isinstance(count, int) and count >= 0,
                       f"{where}: count must be a non-negative integer")
                _check(problems,
                       isinstance(entry.get("sum"), (int, float)),
                       f"{where}: sum must be a number")
                buckets = entry.get("buckets", {})
                ok = isinstance(buckets, dict) and all(
                    isinstance(v, int) for v in buckets.values()
                )
                _check(problems, ok,
                       f"{where}: buckets must map boundaries to "
                       "integer counts")

    env = data.get("environment")
    if _check(problems, isinstance(env, dict),
              "environment must be a dict"):
        for key in ("python", "numpy", "platform"):
            _check(problems, isinstance(env.get(key), str),
                   f"environment.{key} must be a string")

    if problems:
        raise ManifestError(problems)
    return data
