"""Structured request-tracing events for the serving plane.

Batch decodes leave :class:`~repro.observability.manifest.RunManifest`
snapshots; a *service* answering a stream of tickets needs per-request
evidence as well: when was a request submitted, which tick coalesced it,
did it hit the decoded-unit cache, and how its latency split between
queue wait and decode work. :class:`EventLog` records those as JSON
lines — one self-describing object per line, the shape every log
shipper understands — in a bounded in-memory ring, optionally teeing to
a file as events happen.

The serving plane emits five event kinds (see
:class:`~repro.service.plane.StoreService`):

* ``submit`` — a ticket entered the queue (``request_id``,
  ``object_id``, ``queue_depth``);
* ``coalesce`` — a tick drained a window (``tick``, ``n_requests``,
  ``n_objects``);
* ``decode`` — an object's units went through the pipeline this tick
  (``tick``, ``object_id``, ``seconds``);
* ``cache_hit`` — an object was served entirely from cache (``tick``,
  ``object_id``);
* ``complete`` — a ticket was answered (``tick``, ``request_id``,
  ``object_id``, ``queue_wait_seconds``, ``decode_seconds``,
  ``seconds``, ``cache_hit``, ``clean``).

Every record carries ``"t"``: seconds since the log was created
(monotonic clock), so intra-run ordering and spacing survive
serialization without wall-clock skew.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import IO, List, Optional


class EventLog:
    """A bounded ring of structured events, JSON-lines serializable.

    Args:
        path: when given, every event is also appended to this file as
            it is emitted (the live tail a log shipper follows); the
            in-memory ring is kept either way.
        capacity: ring size — the newest ``capacity`` events survive.
            Bounded by design: a service emitting forever must not grow
            the log without limit.
    """

    def __init__(self, path=None, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._records: deque = deque(maxlen=self.capacity)
        self._emitted = 0
        self._t0 = time.perf_counter()
        self._sink: Optional[IO[str]] = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self._sink = self.path.open("a", encoding="utf-8")

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(list(self._records))

    @property
    def emitted(self) -> int:
        """Events emitted over the log's lifetime (ring drops count too)."""
        return self._emitted

    def emit(self, event: str, **fields) -> dict:
        """Record one event; returns the record dict."""
        record = {"event": str(event),
                  "t": round(time.perf_counter() - self._t0, 6)}
        record.update(fields)
        self._records.append(record)
        self._emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(record, default=str) + "\n")
            self._sink.flush()
        return record

    def records(self, event: Optional[str] = None) -> List[dict]:
        """The retained records, optionally filtered by event kind."""
        if event is None:
            return list(self._records)
        return [r for r in self._records if r["event"] == event]

    def tail(self, n: int) -> List[dict]:
        return list(self._records)[-n:]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(record, default=str) + "\n"
            for record in self._records
        )

    def save(self, path) -> Path:
        """Write the retained records as a JSON-lines file."""
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @staticmethod
    def load_jsonl(path) -> List[dict]:
        """Parse a JSON-lines event file back into record dicts."""
        return [
            json.loads(line)
            for line in Path(path).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def clear(self) -> None:
        self._records.clear()

    def close(self) -> None:
        """Close the file sink (the in-memory ring stays usable)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
