"""Decode-path observability: tracing, metrics and run manifests.

The decode pipeline is columnar end to end (channel -> clustering ->
consensus -> receive -> RS errata); this package makes it *inspectable*
without de-batching anything:

* :mod:`repro.observability.trace` — nested wall-clock spans on monotonic
  clocks with per-span attributes, a thread-local active tracer, and a
  :class:`NullTracer` default so the instrumented hot paths pay near-zero
  overhead (one attribute lookup and two no-op calls per *stage*, never
  per row) when tracing is off;
* :mod:`repro.observability.metrics` — counters/gauges/histograms behind
  a registry the tracer owns: RS failure reasons, erasure-budget
  utilization, retry waves, consensus iteration/active-set counts,
  clustering founder rounds and prefilter pruning, per-stage row counts;
* :mod:`repro.observability.manifest` — a :class:`RunManifest` (schema
  version, config fingerprint, seeds/context, aggregated per-stage wall
  times, metric snapshot, environment) serialized to JSON with a
  machine-checkable validator;
* :mod:`repro.observability.report` — a text/markdown renderer and a
  manifest differ, also exposed as ``python -m repro.cli report``;
* :mod:`repro.observability.events` — :class:`EventLog`, the serving
  plane's structured JSON-lines request trace (submit / coalesce /
  decode / cache_hit / complete records keyed by request id);
* :mod:`repro.observability.export` — the live-service surface:
  Prometheus text exposition of any registry
  (:func:`render_prometheus` / :func:`parse_prometheus` /
  :func:`verify_roundtrip`, behind ``python -m repro.cli metrics``) and
  :class:`ServiceHealth` snapshots with SLO verdicts
  (:func:`capture_health`, behind ``python -m repro.cli top``).

Typical use::

    from repro.observability import Tracer, use_tracer, render_manifest

    tracer = Tracer()
    tracer.context["seed"] = 0
    with use_tracer(tracer):
        pool = simulator.sequence_store(image, rng=0, labeled=False)
        bits, report = store.decode_pool(pool, payload.size)
    manifest = tracer.manifests[-1]        # emitted by decode_pool
    manifest.save("run.json")
    print(render_manifest(manifest))

With no tracer activated, every instrumented call site sees the shared
:data:`NULL_TRACER` and the decode output is byte-identical to an
untraced run (pinned by ``tests/integration/test_perf_budget.py``).
"""

from repro.observability.events import EventLog
from repro.observability.export import (
    SLOThresholds,
    ServiceHealth,
    capture_health,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    verify_roundtrip,
)
from repro.observability.manifest import (
    ManifestError,
    RunManifest,
    SCHEMA_VERSION,
    build_manifest,
    config_fingerprint,
    validate_manifest,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    SlidingWindow,
    TimingHistogram,
)
from repro.observability.report import diff_manifests, render_manifest
from repro.observability.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    traced,
    use_tracer,
)

__all__ = [
    # trace
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "get_tracer",
    "use_tracer",
    "traced",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "TimingHistogram",
    "SlidingWindow",
    "MetricRegistry",
    "NULL_REGISTRY",
    # manifest
    "RunManifest",
    "ManifestError",
    "SCHEMA_VERSION",
    "build_manifest",
    "config_fingerprint",
    "validate_manifest",
    # report
    "render_manifest",
    "diff_manifests",
    # events
    "EventLog",
    # export
    "render_prometheus",
    "parse_prometheus",
    "verify_roundtrip",
    "sanitize_metric_name",
    "ServiceHealth",
    "SLOThresholds",
    "capture_health",
]
