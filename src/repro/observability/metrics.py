"""Counters, gauges, categorical and timing histograms behind a registry.

The decode path's pipeline metrics live here: per-stage input/output row
counts, RS failure-reason histograms (straight from
``BatchDecodeResult.reason_counts()``), erasure-budget utilization and
retry-wave counts, consensus iteration/active-set counts, clustering
founder-round and prefilter-pruning counters. Instruments are
get-or-create by name on the registry the active tracer owns::

    m = get_tracer().metrics
    m.counter("rs.retry_rows").add(retry.size)
    m.gauge("consensus.active_clusters").set(active.size)
    m.histogram("rs.failure_reasons").observe_counts(result.reason_counts())
    m.timing("store.read_seconds").observe(elapsed)

The serving plane adds the *live* half: :class:`TimingHistogram` keeps
numeric observations (latencies) in fixed log-spaced buckets — bounded
memory however long the service runs — with p50/p95/p99 quantile
estimates accurate to one bucket boundary, and :class:`SlidingWindow`
turns a registry's lifetime totals into last-N-intervals rates and
quantiles (a ring of per-interval snapshot deltas, so a long-running
service reports "req/s over the last minute", not "since process
start").

The :data:`NULL_REGISTRY` mirrors the API with shared no-op instruments
so untraced code pays only the method-call cost (no allocation, no
dict writes).
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from collections import deque
from typing import Dict, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically growing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement (e.g. the current active-set size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number = 1) -> None:
        """Increment (or decrement) in place; an unset gauge starts at 0.

        Queue-depth style gauges move by deltas from several call sites
        (+1 on submit, -N on drain); ``add`` keeps those sites free of
        read-modify-write sequences against ``value``.
        """
        self.value = (self.value or 0) + delta


class Histogram:
    """A categorical histogram: observation counts per label.

    The decode path's distributions are label-shaped (RS failure reasons,
    clustering prune causes), so the histogram counts labels rather than
    bucketing floats; numeric observations pass their value as the label.
    """

    __slots__ = ("name", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[str, int] = {}

    def observe(self, label, amount: int = 1) -> None:
        key = str(label)
        self.counts[key] = self.counts.get(key, 0) + int(amount)

    def observe_counts(self, counts: Mapping) -> None:
        """Merge a ``{label: count}`` mapping (e.g. ``reason_counts()``)."""
        for label, amount in counts.items():
            self.observe(label, amount)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def _quantile_from_buckets(
    bounds: List[float],
    counts: List[int],
    total: int,
    q: float,
    observed_max: float,
) -> float:
    """Quantile estimate over a (bounds, counts) bucket layout.

    Returns the upper boundary of the bucket holding the ``q``-th
    observation (clamped to the largest observed value), so the estimate
    is always within one bucket boundary of the exact percentile.
    Shared by :class:`TimingHistogram` (lifetime counts) and
    :class:`SlidingWindow` (merged interval deltas).
    """
    if total <= 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    target = max(1, math.ceil(q * total))
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= target:
            upper = bounds[i] if i < len(bounds) else observed_max
            return min(upper, observed_max)
    return observed_max


class TimingHistogram:
    """Numeric observations in fixed log-spaced buckets, bounded memory.

    Latency distributions span orders of magnitude (a cache hit is
    microseconds, a cold pooled decode is seconds), so the buckets are
    log-spaced: ``buckets_per_decade`` upper boundaries per factor of 10
    between ``lowest`` and ``highest``, plus one overflow bucket. The
    bucket array is allocated once — a service observing forever never
    grows it — and quantile estimates (:meth:`quantile`) land within one
    bucket boundary of the exact percentile (~58% relative width at the
    default 5 buckets/decade).

    Observations at or below ``lowest`` land in the first bucket; above
    ``highest`` in the overflow bucket (quantiles there report the
    observed maximum).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum",
                 "min_value", "max_value")

    def __init__(
        self,
        name: str,
        lowest: float = 1e-6,
        highest: float = 3600.0,
        buckets_per_decade: int = 5,
    ) -> None:
        if lowest <= 0 or highest <= lowest:
            raise ValueError(
                f"need 0 < lowest < highest, got {lowest}..{highest}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.name = name
        n = int(math.ceil(
            math.log10(highest / lowest) * buckets_per_decade
        )) + 1
        self.bounds: List[float] = [
            lowest * 10.0 ** (i / buckets_per_decade) for i in range(n)
        ]
        self.counts: List[int] = [0] * (n + 1)  # +1: the overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    def observe(self, value: Number) -> None:
        """Record one observation (seconds, for the latency timings)."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0.5 = p50), within one bucket
        boundary of the exact percentile; 0.0 when empty."""
        return _quantile_from_buckets(
            self.bounds, self.counts, self.count, q, self.max_value
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict state: count/sum/min/max, headline quantiles, and
        the non-empty buckets keyed by upper boundary (``"+Inf"`` for
        the overflow bucket)."""
        buckets = {}
        for i, count in enumerate(self.counts):
            if count:
                key = ("+Inf" if i == len(self.bounds)
                       else f"{self.bounds[i]:.9g}")
                buckets[key] = count
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min_value, 9) if self.count else 0.0,
            "max": round(self.max_value, 9),
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
            "buckets": buckets,
        }


class SlidingWindow:
    """Last-N-intervals rates and quantiles over a registry.

    A ring of per-interval *snapshot deltas*: each :meth:`roll` closes
    the current interval by diffing the registry's counters and timing
    histograms against the previous roll and pushes the deltas onto a
    ``deque(maxlen=n_intervals)`` — old intervals fall off the far end,
    so :meth:`rate` and :meth:`quantile` reflect the last
    ``n_intervals`` rolls, not process lifetime. Memory is bounded by
    ``n_intervals`` times the instrument count.

    The caller owns the cadence: a console refresher rolls once per
    frame, a scraper once per scrape. ``roll(seconds=...)`` overrides
    the measured wall-clock interval (tests pin rates that way).
    """

    def __init__(self, registry: "MetricRegistry",
                 n_intervals: int = 12) -> None:
        if n_intervals < 1:
            raise ValueError(
                f"n_intervals must be >= 1, got {n_intervals}"
            )
        self.registry = registry
        self.n_intervals = n_intervals
        self._intervals: deque = deque(maxlen=n_intervals)
        self._last = self._capture()
        self._last_time = time.perf_counter()

    def _capture(self) -> Tuple[dict, dict]:
        counters = {
            name: c.value for name, c in self.registry._counters.items()
        }
        timings = {
            name: (list(t.counts), t.count, t.sum)
            for name, t in self.registry._timings.items()
        }
        return counters, timings

    def roll(self, seconds: Optional[float] = None) -> None:
        """Close the current interval and push its deltas onto the ring."""
        now = time.perf_counter()
        if seconds is None:
            seconds = now - self._last_time
        self._last_time = now
        counters, timings = self._capture()
        last_counters, last_timings = self._last
        counter_deltas = {
            name: value - last_counters.get(name, 0)
            for name, value in counters.items()
        }
        timing_deltas = {}
        for name, (counts, count, total) in timings.items():
            last = last_timings.get(name)
            if last is None:
                timing_deltas[name] = (list(counts), count, total)
            else:
                last_counts, last_count, last_sum = last
                timing_deltas[name] = (
                    [c - lc for c, lc in zip(counts, last_counts)],
                    count - last_count,
                    total - last_sum,
                )
        self._intervals.append(
            (max(float(seconds), 0.0), counter_deltas, timing_deltas)
        )
        self._last = (counters, timings)

    @property
    def window_seconds(self) -> float:
        """Summed wall-clock length of the intervals still in the ring."""
        return sum(interval[0] for interval in self._intervals)

    def total(self, counter_name: str) -> Number:
        """A counter's growth across the window."""
        return sum(
            deltas.get(counter_name, 0)
            for _, deltas, _ in self._intervals
        )

    def rate(self, counter_name: str) -> float:
        """A counter's per-second rate over the window (0.0 when the
        window is empty or zero-length)."""
        seconds = self.window_seconds
        if seconds <= 0:
            return 0.0
        return self.total(counter_name) / seconds

    def _merged_timing(self, timing_name: str):
        merged: Optional[List[int]] = None
        count = 0
        total = 0.0
        for _, _, timings in self._intervals:
            delta = timings.get(timing_name)
            if delta is None:
                continue
            counts, n, s = delta
            if merged is None:
                merged = list(counts)
            else:
                for i, c in enumerate(counts):
                    merged[i] += c
            count += n
            total += s
        return merged, count, total

    def timing_count(self, timing_name: str) -> int:
        """Observations recorded within the window."""
        return self._merged_timing(timing_name)[1]

    def timing_mean(self, timing_name: str) -> float:
        merged, count, total = self._merged_timing(timing_name)
        return total / count if count else 0.0

    def quantile(self, timing_name: str, q: float) -> float:
        """Quantile estimate over the window's observations only."""
        merged, count, _ = self._merged_timing(timing_name)
        if merged is None or count <= 0:
            return 0.0
        instrument = self.registry._timings.get(timing_name)
        if instrument is None:
            return 0.0
        return _quantile_from_buckets(
            instrument.bounds, merged, count, q, instrument.max_value
        )


class MetricRegistry:
    """Get-or-create instruments by name; snapshot to plain dicts."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timings: Dict[str, TimingHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timing(self, name: str, **kwargs) -> TimingHistogram:
        """Get-or-create a :class:`TimingHistogram`; ``kwargs`` (bucket
        layout) apply only on first creation."""
        instrument = self._timings.get(name)
        if instrument is None:
            instrument = self._timings[name] = TimingHistogram(
                name, **kwargs
            )
        return instrument

    def snapshot(self) -> dict:
        """Plain-dict state: what manifests embed and reports render."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
                if g.value is not None
            },
            "histograms": {
                name: dict(sorted(h.counts.items()))
                for name, h in sorted(self._histograms.items())
            },
            "timings": {
                name: t.snapshot()
                for name, t in sorted(self._timings.items())
                if t.count
            },
        }


class _NullCounter:
    __slots__ = ()

    def add(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def add(self, delta: Number = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, label, amount: int = 1) -> None:
        pass

    def observe_counts(self, counts: Mapping) -> None:
        pass


class _NullTiming:
    __slots__ = ()

    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: Number) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "buckets": {}}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMING = _NullTiming()


class NullMetricRegistry:
    """No-op registry handing out shared no-op instruments."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timing(self, name: str, **kwargs) -> _NullTiming:
        return _NULL_TIMING

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {},
                "timings": {}}


NULL_REGISTRY = NullMetricRegistry()
