"""Counters, gauges and categorical histograms behind a registry.

The decode path's pipeline metrics live here: per-stage input/output row
counts, RS failure-reason histograms (straight from
``BatchDecodeResult.reason_counts()``), erasure-budget utilization and
retry-wave counts, consensus iteration/active-set counts, clustering
founder-round and prefilter-pruning counters. Instruments are
get-or-create by name on the registry the active tracer owns::

    m = get_tracer().metrics
    m.counter("rs.retry_rows").add(retry.size)
    m.gauge("consensus.active_clusters").set(active.size)
    m.histogram("rs.failure_reasons").observe_counts(result.reason_counts())

The :data:`NULL_REGISTRY` mirrors the API with shared no-op instruments
so untraced code pays only the method-call cost (no allocation, no
dict writes).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically growing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement (e.g. the current active-set size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A categorical histogram: observation counts per label.

    The decode path's distributions are label-shaped (RS failure reasons,
    clustering prune causes), so the histogram counts labels rather than
    bucketing floats; numeric observations pass their value as the label.
    """

    __slots__ = ("name", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[str, int] = {}

    def observe(self, label, amount: int = 1) -> None:
        key = str(label)
        self.counts[key] = self.counts.get(key, 0) + int(amount)

    def observe_counts(self, counts: Mapping) -> None:
        """Merge a ``{label: count}`` mapping (e.g. ``reason_counts()``)."""
        for label, amount in counts.items():
            self.observe(label, amount)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class MetricRegistry:
    """Get-or-create instruments by name; snapshot to plain dicts."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict:
        """Plain-dict state: what manifests embed and reports render."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
                if g.value is not None
            },
            "histograms": {
                name: dict(sorted(h.counts.items()))
                for name, h in sorted(self._histograms.items())
            },
        }


class _NullCounter:
    __slots__ = ()

    def add(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, label, amount: int = 1) -> None:
        pass

    def observe_counts(self, counts: Mapping) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricRegistry:
    """No-op registry handing out shared no-op instruments."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullMetricRegistry()
