"""Metrics exposition and service-health snapshots.

The always-on registry a live service accumulates (see
:class:`~repro.service.plane.StoreService`) is only useful if operators
can *read* it; this module is that surface:

* :func:`render_prometheus` — the registry (or any snapshot dict) in
  Prometheus text exposition format: counters and gauges as plain
  samples, categorical histograms as a label-dimensioned counter
  family, timing histograms as classic cumulative ``_bucket``/``_sum``/
  ``_count`` families. ``python -m repro.cli metrics`` prints this.
* :func:`parse_prometheus` — the inverse, used by
  :func:`verify_roundtrip`: render, parse back, and require the parsed
  values to match the snapshot — the machine check CI's exposition
  smoke runs, so a formatting regression can never ship silently.
* :class:`ServiceHealth` / :class:`SLOThresholds` — a rolled-up health
  snapshot (queue depth, req/s, p50/p99, cache hit rate, failure-reason
  rates) with per-check ``ok``/``degraded``/``unhealthy`` verdicts
  against explicit SLO thresholds. ``repro.cli top`` refreshes one per
  frame; ``repro.cli serve`` prints one as its closing line.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z0-9_:]``): the registry's dotted names (``service.requests``)
become underscored (``repro_service_requests`` under the default
prefix). Two registry names that sanitize identically would collide;
:func:`verify_roundtrip` fails loudly on that rather than exposing one
of them.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')

DEFAULT_PREFIX = "repro"


def sanitize_metric_name(name: str) -> str:
    """A registry name as a legal Prometheus metric name component."""
    return _NAME_RE.sub("_", name)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _bucket_sort_key(boundary: str) -> float:
    return math.inf if boundary == "+Inf" else float(boundary)


def render_prometheus(metrics, prefix: str = DEFAULT_PREFIX) -> str:
    """Render a registry (or its ``snapshot()`` dict) as Prometheus text.

    Counters/gauges map to their namesakes; a categorical histogram
    becomes a counter family with one ``label=...`` sample per observed
    label; a timing histogram becomes a classic Prometheus histogram
    (cumulative ``_bucket{le=...}`` samples over the non-empty bucket
    boundaries, ``_sum`` and ``_count``).
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    lines: List[str] = []

    def full_name(name: str) -> str:
        sanitized = sanitize_metric_name(name)
        return f"{prefix}_{sanitized}" if prefix else sanitized

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = full_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = full_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, counts in sorted(snapshot.get("histograms", {}).items()):
        metric = full_name(name)
        lines.append(f"# TYPE {metric} counter")
        for label, count in sorted(counts.items()):
            lines.append(
                f'{metric}{{label="{_escape_label(str(label))}"}} '
                f"{_format_value(count)}"
            )

    for name, entry in sorted(snapshot.get("timings", {}).items()):
        metric = full_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = sorted(entry.get("buckets", {}).items(),
                         key=lambda item: _bucket_sort_key(item[0]))
        for boundary, count in buckets:
            if boundary == "+Inf":
                continue  # folded into the mandatory +Inf sample below
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{boundary}"}} {cumulative}'
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {int(entry.get("count", 0))}'
        )
        lines.append(f"{metric}_sum {_format_value(entry.get('sum', 0.0))}")
        lines.append(f"{metric}_count {int(entry.get('count', 0))}")

    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition back into a snapshot-shaped dict.

    The inverse of :func:`render_prometheus` for the subset it emits:
    returns ``{"counters", "gauges", "histograms", "timings"}`` keyed by
    the *exposed* (sanitized, prefixed) metric names. Timing entries
    carry ``count``, ``sum`` and the de-cumulated per-bucket counts.
    Raises :class:`ValueError` on lines that do not parse.
    """
    types: Dict[str, str] = {}
    result: dict = {"counters": {}, "gauges": {}, "histograms": {},
                    "timings": {}}
    cumulative: Dict[str, List[Tuple[str, int]]] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {raw!r}")
        name = match.group("name")
        labels = {
            m.group("key"): _unescape_label(m.group("value"))
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        text_value = match.group("value")
        value = (math.inf if text_value == "+Inf"
                 else -math.inf if text_value == "-Inf"
                 else float(text_value))

        family = name
        suffix = None
        for candidate in ("_bucket", "_sum", "_count"):
            base = name[: -len(candidate)] if name.endswith(candidate) \
                else None
            if base and types.get(base) == "histogram":
                family, suffix = base, candidate
                break
        kind = types.get(family)
        if kind == "histogram":
            entry = result["timings"].setdefault(
                family, {"count": 0, "sum": 0.0, "buckets": {}}
            )
            if suffix == "_bucket":
                boundary = labels.get("le", "+Inf")
                cumulative.setdefault(family, []).append(
                    (boundary, int(value))
                )
            elif suffix == "_sum":
                entry["sum"] = value
            elif suffix == "_count":
                entry["count"] = int(value)
            else:
                raise ValueError(
                    f"line {lineno}: bare sample {name!r} for histogram "
                    f"family {family!r}"
                )
        elif kind == "counter" and "label" in labels:
            result["histograms"].setdefault(family, {})[
                labels["label"]
            ] = int(value)
        elif kind == "counter":
            result["counters"][family] = (
                int(value) if value == int(value) else value
            )
        elif kind == "gauge":
            result["gauges"][family] = (
                int(value) if value == int(value) else value
            )
        else:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )

    # De-cumulate histogram buckets (the exposition is cumulative).
    for family, pairs in cumulative.items():
        pairs.sort(key=lambda item: _bucket_sort_key(item[0]))
        previous = 0
        buckets = {}
        for boundary, cum in pairs:
            delta = cum - previous
            if delta < 0:
                raise ValueError(
                    f"{family}: non-monotonic cumulative buckets"
                )
            if delta and boundary != "+Inf":
                buckets[boundary] = delta
            elif delta:
                buckets["+Inf"] = delta
            previous = cum
        entry = result["timings"][family]
        entry["buckets"] = buckets
        if pairs and pairs[-1][0] == "+Inf" \
                and pairs[-1][1] != entry["count"]:
            raise ValueError(
                f"{family}: +Inf bucket {pairs[-1][1]} != count "
                f"{entry['count']}"
            )
    return result


def verify_roundtrip(metrics, prefix: str = DEFAULT_PREFIX) -> str:
    """Render, parse back, and cross-check; returns the rendered text.

    The exposition smoke check: every counter/gauge value, every
    categorical label count, and every timing's count/sum/buckets must
    survive the render -> parse round trip exactly (floats to 1e-9
    relative). Raises :class:`ValueError` naming the first mismatch.
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    text = render_prometheus(snapshot, prefix=prefix)
    parsed = parse_prometheus(text)

    def exposed(name: str) -> str:
        sanitized = sanitize_metric_name(name)
        return f"{prefix}_{sanitized}" if prefix else sanitized

    def close(a, b) -> bool:
        a, b = float(a), float(b)
        return abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1.0)

    for kind in ("counters", "gauges"):
        block = snapshot.get(kind, {})
        if len({exposed(name) for name in block}) != len(block):
            raise ValueError(f"{kind}: sanitized name collision")
        for name, value in block.items():
            got = parsed[kind].get(exposed(name))
            if got is None or not close(value, got):
                raise ValueError(
                    f"{kind}[{name!r}]: {value!r} -> {got!r}"
                )
    for name, counts in snapshot.get("histograms", {}).items():
        got = parsed["histograms"].get(exposed(name), {})
        if {str(k): int(v) for k, v in counts.items()} != got:
            raise ValueError(f"histograms[{name!r}]: {counts!r} -> {got!r}")
    for name, entry in snapshot.get("timings", {}).items():
        got = parsed["timings"].get(exposed(name))
        if got is None:
            raise ValueError(f"timings[{name!r}]: missing after parse")
        if int(entry.get("count", 0)) != got["count"]:
            raise ValueError(
                f"timings[{name!r}].count: {entry.get('count')} -> "
                f"{got['count']}"
            )
        if not close(entry.get("sum", 0.0), got["sum"]):
            raise ValueError(
                f"timings[{name!r}].sum: {entry.get('sum')} -> "
                f"{got['sum']}"
            )
        want_buckets = {
            str(k): int(v) for k, v in entry.get("buckets", {}).items()
        }
        if want_buckets != got["buckets"]:
            raise ValueError(
                f"timings[{name!r}].buckets: {want_buckets!r} -> "
                f"{got['buckets']!r}"
            )
    return text


# -- service health ----------------------------------------------------------

_VERDICT_RANK = {"ok": 0, "degraded": 1, "unhealthy": 2}


@dataclass(frozen=True)
class SLOThresholds:
    """Two-tier service-level thresholds for :class:`ServiceHealth`.

    Each check reports ``ok`` below its degraded threshold, ``degraded``
    between the two tiers, and ``unhealthy`` past the second;
    ``min_cache_hit_rate`` is a single-tier floor (``None`` disables it
    — a cold service legitimately has no hits yet).
    """

    degraded_p99_seconds: float = 0.5
    unhealthy_p99_seconds: float = 2.0
    degraded_queue_depth: int = 64
    unhealthy_queue_depth: int = 512
    degraded_failure_rate: float = 0.01
    unhealthy_failure_rate: float = 0.10
    min_cache_hit_rate: Optional[float] = None


def _tiered(value, degraded, unhealthy) -> str:
    if value > unhealthy:
        return "unhealthy"
    if value > degraded:
        return "degraded"
    return "ok"


@dataclass
class ServiceHealth:
    """One rolled-up health snapshot of a live serving plane.

    Attributes:
        verdict: the worst per-check verdict (``ok`` / ``degraded`` /
            ``unhealthy``).
        checks: verdict per SLO check (``latency``, ``queue``,
            ``failures``, and ``cache`` when the hit-rate floor is set).
        queue_depth: tickets waiting right now.
        requests_per_second: answer rate — over the sliding window when
            one is supplied, else over the service lifetime.
        p50_seconds / p99_seconds: request-latency quantiles (submit to
            answer), windowed when a window is supplied.
        cache_hit_rate: unit-cache hits / lookups (0.0 before any
            lookup).
        failure_rate: share of answers whose decode was not clean.
        failure_reasons: per-label shares of the failure-reason
            histogram (RS reason labels when a recording tracer supplied
            them, the service's clean/failed outcomes otherwise).
        window_seconds: the window length the rates cover (0.0 =
            lifetime).
    """

    verdict: str
    checks: Dict[str, str]
    queue_depth: int
    requests_per_second: float
    p50_seconds: float
    p99_seconds: float
    cache_hit_rate: float
    failure_rate: float
    failure_reasons: Dict[str, float] = field(default_factory=dict)
    window_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "checks": dict(self.checks),
            "queue_depth": self.queue_depth,
            "requests_per_second": round(self.requests_per_second, 3),
            "p50_seconds": round(self.p50_seconds, 9),
            "p99_seconds": round(self.p99_seconds, 9),
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "failure_rate": round(self.failure_rate, 6),
            "failure_reasons": {
                label: round(share, 6)
                for label, share in sorted(self.failure_reasons.items())
            },
            "window_seconds": round(self.window_seconds, 6),
        }

    def summary(self) -> str:
        """One status line: what ``serve`` prints and ``top`` headlines."""
        return (
            f"health: {self.verdict}"
            f"  req/s {self.requests_per_second:8.0f}"
            f"  p50 {self.p50_seconds * 1e3:7.2f} ms"
            f"  p99 {self.p99_seconds * 1e3:7.2f} ms"
            f"  cache {self.cache_hit_rate:6.1%}"
            f"  fail {self.failure_rate:6.2%}"
            f"  queue {self.queue_depth}"
        )


def capture_health(
    metrics,
    queue_depth: int = 0,
    cache_stats: Optional[Mapping] = None,
    window=None,
    slo: Optional[SLOThresholds] = None,
    elapsed_seconds: Optional[float] = None,
) -> ServiceHealth:
    """Build a :class:`ServiceHealth` from a service's always-on registry.

    Args:
        metrics: the registry (or snapshot dict) holding the
            ``service.*`` instruments.
        queue_depth: current queue depth.
        cache_stats: :meth:`DecodedUnitCache.stats` dict (hit rate comes
            from the counters when omitted).
        window: an optional
            :class:`~repro.observability.metrics.SlidingWindow` over the
            same registry — rates and quantiles then cover the window
            instead of the lifetime.
        slo: thresholds (defaults to :class:`SLOThresholds`).
        elapsed_seconds: lifetime seconds for the lifetime rate (ignored
            when a window is supplied).
    """
    slo = slo if slo is not None else SLOThresholds()
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    counters = snapshot.get("counters", {})
    answers = counters.get("service.answers", 0)

    if window is not None:
        window_seconds = window.window_seconds
        rate = window.rate("service.answers")
        p50 = window.quantile("service.request_seconds", 0.50)
        p99 = window.quantile("service.request_seconds", 0.99)
    else:
        window_seconds = 0.0
        rate = (answers / elapsed_seconds
                if elapsed_seconds and elapsed_seconds > 0 else 0.0)
        timing = snapshot.get("timings", {}).get(
            "service.request_seconds", {}
        )
        p50 = float(timing.get("p50", 0.0))
        p99 = float(timing.get("p99", 0.0))

    if cache_stats is not None:
        lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        hit_rate = cache_stats.get("hits", 0) / lookups if lookups else 0.0
    else:
        hits = counters.get("service.cache_unit_hits", 0)
        lookups = hits + counters.get("service.cache_unit_misses", 0)
        hit_rate = hits / lookups if lookups else 0.0

    outcomes = snapshot.get("histograms", {}).get(
        "service.read_outcomes", {}
    )
    total_outcomes = sum(outcomes.values())
    failed = sum(
        count for label, count in outcomes.items() if label != "clean"
    )
    failure_rate = failed / total_outcomes if total_outcomes else 0.0
    reasons = snapshot.get("histograms", {}).get(
        "rs.failure_reasons", outcomes
    )
    total_reasons = sum(reasons.values())
    failure_reasons = {
        label: count / total_reasons
        for label, count in reasons.items()
        if label not in ("ok", "clean")  # shares of total, failures only
    } if total_reasons else {}

    checks = {
        "latency": _tiered(p99, slo.degraded_p99_seconds,
                           slo.unhealthy_p99_seconds),
        "queue": _tiered(queue_depth, slo.degraded_queue_depth,
                         slo.unhealthy_queue_depth),
        "failures": _tiered(failure_rate, slo.degraded_failure_rate,
                            slo.unhealthy_failure_rate),
    }
    if slo.min_cache_hit_rate is not None:
        checks["cache"] = ("ok" if hit_rate >= slo.min_cache_hit_rate
                           else "degraded")
    verdict = max(checks.values(), key=_VERDICT_RANK.__getitem__)
    return ServiceHealth(
        verdict=verdict,
        checks=checks,
        queue_depth=int(queue_depth),
        requests_per_second=float(rate),
        p50_seconds=float(p50),
        p99_seconds=float(p99),
        cache_hit_rate=float(hit_rate),
        failure_rate=float(failure_rate),
        failure_reasons=failure_reasons,
        window_seconds=float(window_seconds),
    )
