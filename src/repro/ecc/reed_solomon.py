"""Systematic Reed-Solomon codec with error-and-erasure decoding.

This is the ECC used by the paper's storage architecture (its Figure 1):
each row of the encoding matrix is one RS codeword whose symbols live in
different DNA molecules. Molecule losses surface as *erasures* (the missing
column index is known), while indel/substitution noise that survives
consensus surfaces as symbol *errors* at unknown positions.

The decoder implements the classical chain — syndromes, Berlekamp–Massey
initialized with the erasure locator, Chien search, Forney algorithm — and
supports shortened codes (``n < 2^m - 1``), which the scaled experiment
configurations rely on.

Conventions: a codeword is an array ``c[0..n-1]`` of m-bit symbols;
``c[i]`` is the coefficient of ``x^(n-1-i)``, i.e. the first array element
is transmitted first and holds the highest-degree coefficient. The
generator polynomial has roots ``alpha^0 .. alpha^(nsym-1)`` (fcr = 0).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.ecc.gf import GaloisField


class DecodeFailure(Exception):
    """Raised when a codeword is uncorrectable (too many errors/erasures)."""


class ReedSolomon:
    """A systematic RS(n, k) code over GF(2^m).

    Args:
        m: symbol size in bits (field degree), 2..16.
        nsym: number of parity symbols (``n - k``). Corrects up to ``nsym``
            erasures, ``nsym // 2`` errors, or any mix with
            ``2 * errors + erasures <= nsym``.
        n: codeword length; defaults to the natural length ``2^m - 1``.
            Smaller values produce a shortened code.
    """

    def __init__(self, m: int, nsym: int, n: Optional[int] = None) -> None:
        self.field = GaloisField.get(m)
        natural_n = self.field.max_value
        if n is None:
            n = natural_n
        if not (1 <= n <= natural_n):
            raise ValueError(f"n must be in [1, {natural_n}], got {n}")
        if not (0 < nsym < n):
            raise ValueError(f"nsym must be in (0, {n}), got {nsym}")
        self.m = m
        self.n = n
        self.nsym = nsym
        self.k = n - nsym
        self._generator = self._build_generator()
        # Per-position inverse root (alpha^-(n-1-i)) used by the Chien search.
        degrees = np.arange(self.n - 1, -1, -1, dtype=np.int64)
        self._inv_roots = np.array(
            [self.field.alpha_pow(-int(d)) for d in degrees], dtype=np.int64
        )
        # Lazy caches for the batched entry points (parity_many /
        # syndromes_many); built on first use, never for decode-only codes.
        self._parity_bits: Optional[np.ndarray] = None
        self._syndrome_points: Optional[np.ndarray] = None

    def _build_generator(self) -> np.ndarray:
        """g(x) = prod_{j=0}^{nsym-1} (x - alpha^j), descending coefficients."""
        gen = np.array([1], dtype=np.int64)
        for j in range(self.nsym):
            gen = self.field.poly_mul(
                gen, np.array([1, self.field.alpha_pow(j)], dtype=np.int64)
            )
        return gen

    # -- encoding ------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Encode ``k`` data symbols into an ``n``-symbol systematic codeword.

        The returned array is ``message || parity``.
        """
        message = np.asarray(message, dtype=np.int64)
        if message.shape != (self.k,):
            raise ValueError(f"message must have {self.k} symbols, got {message.shape}")
        if message.size and (message.min() < 0 or message.max() > self.field.max_value):
            raise ValueError("message symbols out of field range")
        padded = np.concatenate([message, np.zeros(self.nsym, dtype=np.int64)])
        _, remainder = self.field.poly_divmod(padded, self._generator)
        parity = np.zeros(self.nsym, dtype=np.int64)
        parity[self.nsym - len(remainder):] = remainder
        return np.concatenate([message, parity])

    def parity(self, message: Sequence[int]) -> np.ndarray:
        """Return only the ``nsym`` parity symbols for ``message``."""
        return self.encode(message)[self.k:]

    def _parity_generator_rows(self) -> np.ndarray:
        """The systematic parity map as a ``(k, nsym)`` matrix over GF(2^m).

        Row ``i`` holds the parity of the unit message ``e_i``, i.e. the
        (descending) coefficients of ``x^(n-1-i) mod g(x)``. Built
        iteratively from degree ``nsym`` upward — each step multiplies the
        running remainder by ``x`` and reduces by ``g`` — so the whole
        matrix costs ``k`` vectorized O(nsym) steps, not ``k`` polynomial
        divisions.
        """
        low = self._generator[1:].copy()  # x^nsym mod g (g is monic)
        rows = np.empty((self.k, self.nsym), dtype=np.int64)
        remainder = low
        rows[self.k - 1] = remainder
        for degree in range(self.nsym + 1, self.n):
            lead = int(remainder[0])
            remainder = np.concatenate(
                [remainder[1:], np.zeros(1, dtype=np.int64)]
            )
            if lead:
                remainder = remainder ^ self.field.scale_vec(low, lead)
            rows[self.n - 1 - degree] = remainder
        return rows

    def _parity_bit_matrix(self) -> np.ndarray:
        """Bit-plane expansion of the parity generator matrix.

        GF(2^m) multiplication is GF(2)-linear in the bits of either
        operand (``a * c = XOR over set bits t of a of (x^t * c)``), so the
        whole batched parity computation collapses to *one* 0/1 integer
        matrix product: bit ``s`` of ``parity[b, j]`` is the mod-2 count of
        ``message`` bits hitting generator entries whose ``x^t``-scaled
        value has bit ``s`` set. The returned matrix W has shape
        ``(k * m, nsym * m)`` with ``W[i*m + t, j*m + s] = bit_s(x^t *
        G[i, j])``, stored as float64 so the product runs through BLAS.
        """
        if self._parity_bits is None:
            rows = self._parity_generator_rows()
            shifts = np.arange(self.m, dtype=np.int64)
            bits = np.empty((self.k, self.m, self.nsym, self.m),
                            dtype=np.float64)
            for t in range(self.m):
                scaled = self.field.scale_vec(rows, 1 << t)
                bits[:, t, :, :] = (scaled[:, :, None] >> shifts) & 1
            self._parity_bits = bits.reshape(self.k * self.m,
                                             self.nsym * self.m)
        return self._parity_bits

    def parity_many(self, messages: np.ndarray) -> np.ndarray:
        """Parity symbols of many messages as one GF matrix product.

        ``messages`` is ``(B, k)``; the result is ``(B, nsym)``, row-wise
        identical to :meth:`parity`. The systematic parity map is linear
        over GF(2^m), so the batch reduces to ``messages @ G_parity``,
        evaluated as a single bit-plane 0/1 matrix product (see
        :meth:`_parity_bit_matrix`) followed by a mod-2 reduction and bit
        re-packing — no per-codeword polynomial division.
        """
        messages = np.asarray(messages, dtype=np.int64)
        if messages.ndim != 2 or messages.shape[1] != self.k:
            raise ValueError(
                f"messages must be (B, {self.k}), got {messages.shape}"
            )
        if messages.size and (messages.min() < 0
                              or messages.max() > self.field.max_value):
            raise ValueError("message symbols out of field range")
        if messages.shape[0] == 0:
            return np.zeros((0, self.nsym), dtype=np.int64)
        shifts = np.arange(self.m, dtype=np.int64)
        message_bits = ((messages[:, :, None] >> shifts) & 1).reshape(
            messages.shape[0], self.k * self.m
        ).astype(np.float64)
        # Bit counts stay far below 2^53, so the float64 product is exact.
        counts = message_bits @ self._parity_bit_matrix()
        parity_bits = (counts.astype(np.int64) & 1).reshape(
            messages.shape[0], self.nsym, self.m
        )
        return (parity_bits << shifts).sum(axis=2)

    # -- decoding ------------------------------------------------------------

    def decode(
        self,
        received: Sequence[int],
        erasures: Iterable[int] = (),
    ) -> Tuple[np.ndarray, int]:
        """Correct a received word in place and return ``(message, n_corrected)``.

        Args:
            received: ``n`` symbols (erased positions may hold any value,
                conventionally 0).
            erasures: indices into ``received`` whose values are known to be
                unreliable (e.g. lost molecules).

        Returns:
            The corrected ``k`` data symbols and the number of symbols that
            were changed or filled (errors + erasures actually corrected).

        Raises:
            DecodeFailure: when ``2*errors + erasures > nsym`` or the
                locator polynomial is inconsistent.
        """
        word = np.asarray(received, dtype=np.int64).copy()
        if word.shape != (self.n,):
            raise ValueError(f"received must have {self.n} symbols, got {word.shape}")
        erasure_list = sorted(set(int(e) for e in erasures))
        for pos in erasure_list:
            if not (0 <= pos < self.n):
                raise ValueError(f"erasure index {pos} out of range [0, {self.n})")
        if len(erasure_list) > self.nsym:
            raise DecodeFailure(
                f"{len(erasure_list)} erasures exceed correction capability {self.nsym}"
            )
        # Zero out erased positions so their prior content cannot bias syndromes.
        if erasure_list:
            word[erasure_list] = 0

        syndromes = self._syndromes(word)
        if not np.any(syndromes):
            return word[: self.k], len(erasure_list)

        errata_locator = self._berlekamp_massey(syndromes, erasure_list)
        positions = self._chien_search(errata_locator)
        degree = len(errata_locator) - 1
        if len(positions) != degree:
            raise DecodeFailure(
                f"locator degree {degree} but found {len(positions)} roots"
            )
        n_errors = degree - len(erasure_list)
        if 2 * n_errors + len(erasure_list) > self.nsym:
            raise DecodeFailure(
                f"{n_errors} errors + {len(erasure_list)} erasures exceed capability"
            )
        magnitudes = self._forney(syndromes, errata_locator, positions)
        for pos, mag in zip(positions, magnitudes):
            word[pos] ^= mag
        if np.any(self._syndromes(word)):
            raise DecodeFailure("residual syndromes after correction")
        return word[: self.k], degree

    def _syndrome_bit_matrix(self) -> np.ndarray:
        """Bit-plane expansion of the syndrome map (see
        :meth:`_parity_bit_matrix` for the construction): ``S_j =
        sum_i word[i] * alpha^(j * (n-1-i))`` is GF-linear in the word,
        so all syndromes of all words reduce to one 0/1 matrix product.
        Shape ``(n * m, nsym * m)`` with ``V[i*m + t, j*m + s] =
        bit_s(x^t * alpha^(j*(n-1-i)))``, stored float64 for BLAS.
        """
        if self._syndrome_points is None:
            powers = np.array(
                [[self.field.alpha_pow(j * (self.n - 1 - i))
                  for j in range(self.nsym)] for i in range(self.n)],
                dtype=np.int64,
            )  # (n, nsym)
            shifts = np.arange(self.m, dtype=np.int64)
            bits = np.empty((self.n, self.m, self.nsym, self.m),
                            dtype=np.float64)
            for t in range(self.m):
                scaled = self.field.scale_vec(powers, 1 << t)
                bits[:, t, :, :] = (scaled[:, :, None] >> shifts) & 1
            self._syndrome_points = bits.reshape(self.n * self.m,
                                                 self.nsym * self.m)
        return self._syndrome_points

    def syndromes_many(self, words: np.ndarray) -> np.ndarray:
        """Syndromes of many received words as one GF matrix product.

        ``words`` is ``(B, n)``; the result is ``(B, nsym)``, row-wise
        identical to the scalar syndrome computation inside
        :meth:`decode`. Like :meth:`parity_many`, the GF-linear map runs
        as a single bit-plane 0/1 matrix product (mod-2 reduced and
        re-packed), so checking a whole store's codewords costs one BLAS
        call instead of ``B * n`` scalar field operations. A word is a
        valid codeword exactly when its syndrome row is all zero.
        """
        words = np.asarray(words, dtype=np.int64)
        if words.ndim != 2 or words.shape[1] != self.n:
            raise ValueError(f"words must be (B, {self.n}), got {words.shape}")
        if words.size and (words.min() < 0
                           or words.max() > self.field.max_value):
            raise ValueError("word symbols out of field range")
        shifts = np.arange(self.m, dtype=np.int64)
        word_bits = ((words[:, :, None] >> shifts) & 1).reshape(
            words.shape[0], self.n * self.m
        ).astype(np.float64)
        counts = word_bits @ self._syndrome_bit_matrix()
        syndrome_bits = (counts.astype(np.int64) & 1).reshape(
            words.shape[0], self.nsym, self.m
        )
        return (syndrome_bits << shifts).sum(axis=2)

    def check(self, word: Sequence[int]) -> bool:
        """Return True if ``word`` is a valid codeword (all syndromes zero)."""
        word = np.asarray(word, dtype=np.int64)
        if word.shape != (self.n,):
            raise ValueError(f"word must have {self.n} symbols, got {word.shape}")
        return not np.any(self._syndromes(word))

    # -- decoder internals (ascending-order polynomials) ----------------------

    def _syndromes(self, word: np.ndarray) -> np.ndarray:
        """S_j = C(alpha^j) for j = 0..nsym-1 (ascending array)."""
        xs = np.array([self.field.alpha_pow(j) for j in range(self.nsym)],
                      dtype=np.int64)
        return self.field.poly_eval_many(word, xs)

    def _erasure_locator(self, erasure_list: Sequence[int]) -> list:
        """Gamma(x) = prod (1 + alpha^d x), ascending coefficient list."""
        locator = [1]
        for pos in erasure_list:
            degree = self.n - 1 - pos
            root = self.field.alpha_pow(degree)
            # Multiply locator by (1 + root*x).
            extended = locator + [0]
            for i in range(len(locator)):
                extended[i + 1] ^= self.field.mul(locator[i], root)
            locator = extended
        return locator

    def _berlekamp_massey(
        self, syndromes: np.ndarray, erasure_list: Sequence[int]
    ) -> list:
        """Find the errata locator, seeded with the erasure locator.

        Returns the combined locator Lambda(x)*Gamma(x) as an ascending
        coefficient list with constant term 1.
        """
        rho = len(erasure_list)
        locator = self._erasure_locator(erasure_list)
        previous = list(locator)
        for k in range(rho, self.nsym):
            delta = int(syndromes[k])
            for j in range(1, len(locator)):
                if locator[j] and k - j >= 0:
                    delta ^= self.field.mul(locator[j], int(syndromes[k - j]))
            previous = [0] + previous  # multiply by x (ascending order)
            if delta != 0:
                if len(previous) > len(locator):
                    new_locator = [self.field.mul(c, delta) for c in previous]
                    inv_delta = self.field.inv(delta)
                    previous = [self.field.mul(c, inv_delta) for c in locator]
                    locator = new_locator
                scaled = [self.field.mul(c, delta) for c in previous]
                merged = [0] * max(len(locator), len(scaled))
                for i, c in enumerate(locator):
                    merged[i] ^= c
                for i, c in enumerate(scaled):
                    merged[i] ^= c
                locator = merged
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        if locator[0] != 1:
            raise DecodeFailure("locator constant term is not 1")
        return locator

    def _chien_search(self, locator: list) -> list:
        """Return received-array positions where the locator has a root."""
        loc_desc = np.array(locator[::-1], dtype=np.int64)
        evaluations = self.field.poly_eval_many(loc_desc, self._inv_roots)
        return [int(i) for i in np.nonzero(evaluations == 0)[0]]

    def _forney(
        self, syndromes: np.ndarray, locator: list, positions: Sequence[int]
    ) -> list:
        """Error magnitudes e = X * Omega(X^-1) / Lambda'(X^-1) (fcr = 0)."""
        # Omega(x) = S(x) * Lambda(x) mod x^nsym, ascending coefficients.
        omega = [0] * self.nsym
        for i in range(self.nsym):
            s = int(syndromes[i])
            if s == 0:
                continue
            for j, lam in enumerate(locator):
                if lam and i + j < self.nsym:
                    omega[i + j] ^= self.field.mul(s, lam)
        # Formal derivative keeps odd-degree terms: sum Lambda_j x^(j-1), j odd.
        derivative = [locator[j] for j in range(1, len(locator), 2)]
        magnitudes = []
        for pos in positions:
            degree = self.n - 1 - pos
            x = self.field.alpha_pow(degree)
            x_inv = self.field.inv(x)
            omega_val = self._eval_ascending(omega, x_inv)
            # Lambda'(x_inv): even powers of x_inv only (x^(j-1) with j odd).
            deriv_val = 0
            power = 1
            x_inv_sq = self.field.mul(x_inv, x_inv)
            for coeff in derivative:
                if coeff:
                    deriv_val ^= self.field.mul(coeff, power)
                power = self.field.mul(power, x_inv_sq)
            if deriv_val == 0:
                raise DecodeFailure("Forney derivative evaluated to zero")
            magnitude = self.field.mul(x, self.field.div(omega_val, deriv_val))
            magnitudes.append(magnitude)
        return magnitudes

    def _eval_ascending(self, poly: Sequence[int], x: int) -> int:
        """Evaluate an ascending-order coefficient list at ``x``."""
        result = 0
        power = 1
        for coeff in poly:
            if coeff:
                result ^= self.field.mul(coeff, power)
            power = self.field.mul(power, x)
        return result

    def __repr__(self) -> str:
        return f"ReedSolomon(m={self.m}, n={self.n}, k={self.k}, nsym={self.nsym})"
