"""Systematic Reed-Solomon codec with error-and-erasure decoding.

This is the ECC used by the paper's storage architecture (its Figure 1):
each row of the encoding matrix is one RS codeword whose symbols live in
different DNA molecules. Molecule losses surface as *erasures* (the missing
column index is known), while indel/substitution noise that survives
consensus surfaces as symbol *errors* at unknown positions.

The decoder implements the classical chain — syndromes, Berlekamp–Massey
initialized with the erasure locator, Chien search, Forney algorithm — and
supports shortened codes (``n < 2^m - 1``), which the scaled experiment
configurations rely on. The chain itself runs batched: :meth:`ReedSolomon.
decode_many` moves every dirty codeword of a whole store through each
stage in lockstep (:mod:`repro.ecc.batched`), and the scalar
:meth:`ReedSolomon.decode` is a one-row wrapper around it. The original
per-codeword chain is frozen in :mod:`repro.ecc.reference`
(:class:`~repro.ecc.reference.ReferenceReedSolomon`), pinned
byte-identical by ``tests/ecc/test_batched_vs_reference.py``.

Conventions: a codeword is an array ``c[0..n-1]`` of m-bit symbols;
``c[i]`` is the coefficient of ``x^(n-1-i)``, i.e. the first array element
is transmitted first and holds the highest-degree coefficient. The
generator polynomial has roots ``alpha^0 .. alpha^(nsym-1)`` (fcr = 0).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.ecc import batched as _batched
from repro.ecc.gf import GaloisField


class DecodeFailure(Exception):
    """Raised when a codeword is uncorrectable (too many errors/erasures)."""


class ReedSolomon:
    """A systematic RS(n, k) code over GF(2^m).

    Args:
        m: symbol size in bits (field degree), 2..16.
        nsym: number of parity symbols (``n - k``). Corrects up to ``nsym``
            erasures, ``nsym // 2`` errors, or any mix with
            ``2 * errors + erasures <= nsym``.
        n: codeword length; defaults to the natural length ``2^m - 1``.
            Smaller values produce a shortened code.
    """

    def __init__(self, m: int, nsym: int, n: Optional[int] = None) -> None:
        self.field = GaloisField.get(m)
        natural_n = self.field.max_value
        if n is None:
            n = natural_n
        if not (1 <= n <= natural_n):
            raise ValueError(f"n must be in [1, {natural_n}], got {n}")
        if not (0 < nsym < n):
            raise ValueError(f"nsym must be in (0, {n}), got {nsym}")
        self.m = m
        self.n = n
        self.nsym = nsym
        self.k = n - nsym
        self._generator = self._build_generator()
        # Per-position roots used across the errata chain: alpha^(n-1-i)
        # (erasure-locator factors, Forney's X), its inverse (Chien
        # search, Forney evaluation points) and the syndrome evaluation
        # points alpha^j — all constructor-time so neither the batched
        # chain nor the frozen scalar reference pays per-codeword
        # allocation.
        degrees = np.arange(self.n - 1, -1, -1, dtype=np.int64)
        self._roots = np.array(
            [self.field.alpha_pow(int(d)) for d in degrees], dtype=np.int64
        )
        self._inv_roots = np.array(
            [self.field.alpha_pow(-int(d)) for d in degrees], dtype=np.int64
        )
        self._syndrome_xs = np.array(
            [self.field.alpha_pow(j) for j in range(self.nsym)],
            dtype=np.int64,
        )
        # Lazy caches for the batched entry points (parity_many /
        # syndromes_many); built on first use, never for decode-only codes.
        self._parity_bits: Optional[np.ndarray] = None
        self._syndrome_points: Optional[np.ndarray] = None

    def _build_generator(self) -> np.ndarray:
        """g(x) = prod_{j=0}^{nsym-1} (x - alpha^j), descending coefficients."""
        gen = np.array([1], dtype=np.int64)
        for j in range(self.nsym):
            gen = self.field.poly_mul(
                gen, np.array([1, self.field.alpha_pow(j)], dtype=np.int64)
            )
        return gen

    # -- encoding ------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Encode ``k`` data symbols into an ``n``-symbol systematic codeword.

        The returned array is ``message || parity``.
        """
        message = np.asarray(message, dtype=np.int64)
        if message.shape != (self.k,):
            raise ValueError(f"message must have {self.k} symbols, got {message.shape}")
        if message.size and (message.min() < 0 or message.max() > self.field.max_value):
            raise ValueError("message symbols out of field range")
        padded = np.concatenate([message, np.zeros(self.nsym, dtype=np.int64)])
        _, remainder = self.field.poly_divmod(padded, self._generator)
        parity = np.zeros(self.nsym, dtype=np.int64)
        parity[self.nsym - len(remainder):] = remainder
        return np.concatenate([message, parity])

    def parity(self, message: Sequence[int]) -> np.ndarray:
        """Return only the ``nsym`` parity symbols for ``message``."""
        return self.encode(message)[self.k:]

    def _parity_generator_rows(self) -> np.ndarray:
        """The systematic parity map as a ``(k, nsym)`` matrix over GF(2^m).

        Row ``i`` holds the parity of the unit message ``e_i``, i.e. the
        (descending) coefficients of ``x^(n-1-i) mod g(x)``. Built
        iteratively from degree ``nsym`` upward — each step multiplies the
        running remainder by ``x`` and reduces by ``g`` — so the whole
        matrix costs ``k`` vectorized O(nsym) steps, not ``k`` polynomial
        divisions.
        """
        low = self._generator[1:].copy()  # x^nsym mod g (g is monic)
        rows = np.empty((self.k, self.nsym), dtype=np.int64)
        remainder = low
        rows[self.k - 1] = remainder
        for degree in range(self.nsym + 1, self.n):
            lead = int(remainder[0])
            remainder = np.concatenate(
                [remainder[1:], np.zeros(1, dtype=np.int64)]
            )
            if lead:
                remainder = remainder ^ self.field.scale_vec(low, lead)
            rows[self.n - 1 - degree] = remainder
        return rows

    def _parity_bit_matrix(self) -> np.ndarray:
        """Bit-plane expansion of the parity generator matrix.

        GF(2^m) multiplication is GF(2)-linear in the bits of either
        operand (``a * c = XOR over set bits t of a of (x^t * c)``), so the
        whole batched parity computation collapses to *one* 0/1 integer
        matrix product: bit ``s`` of ``parity[b, j]`` is the mod-2 count of
        ``message`` bits hitting generator entries whose ``x^t``-scaled
        value has bit ``s`` set. The returned matrix W has shape
        ``(k * m, nsym * m)`` with ``W[i*m + t, j*m + s] = bit_s(x^t *
        G[i, j])``, stored as float64 so the product runs through BLAS.
        """
        if self._parity_bits is None:
            rows = self._parity_generator_rows()
            shifts = np.arange(self.m, dtype=np.int64)
            bits = np.empty((self.k, self.m, self.nsym, self.m),
                            dtype=np.float64)
            for t in range(self.m):
                scaled = self.field.scale_vec(rows, 1 << t)
                bits[:, t, :, :] = (scaled[:, :, None] >> shifts) & 1
            self._parity_bits = bits.reshape(self.k * self.m,
                                             self.nsym * self.m)
        return self._parity_bits

    def parity_many(self, messages: np.ndarray) -> np.ndarray:
        """Parity symbols of many messages as one GF matrix product.

        ``messages`` is ``(B, k)``; the result is ``(B, nsym)``, row-wise
        identical to :meth:`parity`. The systematic parity map is linear
        over GF(2^m), so the batch reduces to ``messages @ G_parity``,
        evaluated as a single bit-plane 0/1 matrix product (see
        :meth:`_parity_bit_matrix`) followed by a mod-2 reduction and bit
        re-packing — no per-codeword polynomial division.
        """
        messages = np.asarray(messages, dtype=np.int64)
        if messages.ndim != 2 or messages.shape[1] != self.k:
            raise ValueError(
                f"messages must be (B, {self.k}), got {messages.shape}"
            )
        if messages.size and (messages.min() < 0
                              or messages.max() > self.field.max_value):
            raise ValueError("message symbols out of field range")
        if messages.shape[0] == 0:
            return np.zeros((0, self.nsym), dtype=np.int64)
        shifts = np.arange(self.m, dtype=np.int64)
        message_bits = ((messages[:, :, None] >> shifts) & 1).reshape(
            messages.shape[0], self.k * self.m
        ).astype(np.float64)
        # Bit counts stay far below 2^53, so the float64 product is exact.
        counts = message_bits @ self._parity_bit_matrix()
        parity_bits = (counts.astype(np.int64) & 1).reshape(
            messages.shape[0], self.nsym, self.m
        )
        return (parity_bits << shifts).sum(axis=2)

    # -- decoding ------------------------------------------------------------

    def decode(
        self,
        received: Sequence[int],
        erasures: Iterable[int] = (),
    ) -> Tuple[np.ndarray, int]:
        """Correct a received word and return ``(message, n_corrected)``.

        A one-row wrapper around :meth:`decode_many`; output (and the
        failure set) is pinned byte-identical to the frozen scalar chain
        (:class:`~repro.ecc.reference.ReferenceReedSolomon`).

        Args:
            received: ``n`` symbols (erased positions may hold any value,
                conventionally 0).
            erasures: indices into ``received`` whose values are known to be
                unreliable (e.g. lost molecules).

        Returns:
            The corrected ``k`` data symbols and the number of symbols that
            were changed or filled (errors + erasures actually corrected).

        Raises:
            DecodeFailure: when ``2*errors + erasures > nsym`` or the
                locator polynomial is inconsistent.
        """
        word = np.asarray(received, dtype=np.int64)
        if word.shape != (self.n,):
            raise ValueError(f"received must have {self.n} symbols, got {word.shape}")
        erasure_list = sorted(set(int(e) for e in erasures))
        for pos in erasure_list:
            if not (0 <= pos < self.n):
                raise ValueError(f"erasure index {pos} out of range [0, {self.n})")
        if len(erasure_list) > self.nsym:
            raise DecodeFailure(
                f"{len(erasure_list)} erasures exceed correction capability {self.nsym}"
            )
        result = self.decode_many(word[None, :], [erasure_list])
        if not result.ok[0]:
            raise DecodeFailure(_batched.REASON_LABELS[int(result.reasons[0])])
        return result.messages[0], int(result.n_corrected[0])

    def decode_many(
        self,
        words: np.ndarray,
        erasure_table: "_batched.ErasureTable" = None,
    ) -> "_batched.BatchDecodeResult":
        """Error-and-erasure decode many received words in lockstep.

        The batched errata chain (:mod:`repro.ecc.batched`): one
        bit-plane syndrome product routes clean rows through a fast
        path, and the dirty remainder moves through erasure-locator
        construction, Berlekamp–Massey, the Chien search and Forney as a
        single ``(D, ...)`` computation per stage — no per-codeword
        Python loop. Failures are per-row flags instead of exceptions,
        so one uncorrectable codeword cannot serialize the batch.

        Args:
            words: ``(D, n)`` received words.
            erasure_table: per-row erasures — ``None``, a ``(D, n)``
                boolean mask, or one index sequence per row (duplicates
                collapse; indices are range-checked).

        Returns:
            A :class:`~repro.ecc.batched.BatchDecodeResult`; row ``d``
            carries exactly what :meth:`decode` would return for
            ``words[d]`` (or the reason it would raise
            :class:`DecodeFailure`).
        """
        words = np.asarray(words, dtype=np.int64)
        if words.ndim != 2 or words.shape[1] != self.n:
            raise ValueError(f"words must be (B, {self.n}), got {words.shape}")
        if words.size and (words.min() < 0
                           or words.max() > self.field.max_value):
            raise ValueError("word symbols out of field range")
        mask = _batched.as_erasure_mask(
            erasure_table, words.shape[0], self.n
        )
        return _batched.decode_words(self, words, mask)

    def _syndrome_bit_matrix(self) -> np.ndarray:
        """Bit-plane expansion of the syndrome map (see
        :meth:`_parity_bit_matrix` for the construction): ``S_j =
        sum_i word[i] * alpha^(j * (n-1-i))`` is GF-linear in the word,
        so all syndromes of all words reduce to one 0/1 matrix product.
        Shape ``(n * m, nsym * m)`` with ``V[i*m + t, j*m + s] =
        bit_s(x^t * alpha^(j*(n-1-i)))``, stored float64 for BLAS.
        """
        if self._syndrome_points is None:
            powers = np.array(
                [[self.field.alpha_pow(j * (self.n - 1 - i))
                  for j in range(self.nsym)] for i in range(self.n)],
                dtype=np.int64,
            )  # (n, nsym)
            shifts = np.arange(self.m, dtype=np.int64)
            bits = np.empty((self.n, self.m, self.nsym, self.m),
                            dtype=np.float64)
            for t in range(self.m):
                scaled = self.field.scale_vec(powers, 1 << t)
                bits[:, t, :, :] = (scaled[:, :, None] >> shifts) & 1
            self._syndrome_points = bits.reshape(self.n * self.m,
                                                 self.nsym * self.m)
        return self._syndrome_points

    def syndromes_many(self, words: np.ndarray) -> np.ndarray:
        """Syndromes of many received words as one GF matrix product.

        ``words`` is ``(B, n)``; the result is ``(B, nsym)``, row-wise
        identical to the scalar syndrome computation inside
        :meth:`decode`. Like :meth:`parity_many`, the GF-linear map runs
        as a single bit-plane 0/1 matrix product (mod-2 reduced and
        re-packed), so checking a whole store's codewords costs one BLAS
        call instead of ``B * n`` scalar field operations. A word is a
        valid codeword exactly when its syndrome row is all zero.
        """
        words = np.asarray(words, dtype=np.int64)
        if words.ndim != 2 or words.shape[1] != self.n:
            raise ValueError(f"words must be (B, {self.n}), got {words.shape}")
        if words.size and (words.min() < 0
                           or words.max() > self.field.max_value):
            raise ValueError("word symbols out of field range")
        shifts = np.arange(self.m, dtype=np.int64)
        word_bits = ((words[:, :, None] >> shifts) & 1).reshape(
            words.shape[0], self.n * self.m
        ).astype(np.float64)
        counts = word_bits @ self._syndrome_bit_matrix()
        syndrome_bits = (counts.astype(np.int64) & 1).reshape(
            words.shape[0], self.nsym, self.m
        )
        return (syndrome_bits << shifts).sum(axis=2)

    def check(self, word: Sequence[int]) -> bool:
        """Return True if ``word`` is a valid codeword (all syndromes zero)."""
        word = np.asarray(word, dtype=np.int64)
        if word.shape != (self.n,):
            raise ValueError(f"word must have {self.n} symbols, got {word.shape}")
        return not np.any(self._syndromes(word))

    def _syndromes(self, word: np.ndarray) -> np.ndarray:
        """S_j = C(alpha^j) for j = 0..nsym-1 (ascending array)."""
        return self.field.poly_eval_many(word, self._syndrome_xs)

    def __repr__(self) -> str:
        return f"ReedSolomon(m={self.m}, n={self.n}, k={self.k}, nsym={self.nsym})"
