"""GF(2^m) finite-field arithmetic over log/antilog tables.

Supports field sizes from GF(4) to GF(65536). Elements are represented as
Python ints / numpy integer arrays in ``[0, 2^m)``. Multiplication and
division go through exponential/logarithm tables indexed by a primitive
element alpha, which makes both scalar and vectorized operations O(1) per
element.

The paper's storage architecture uses GF(2^16) (65,535-symbol codewords);
the scaled experiment configurations in this repository default to GF(2^8).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

# Primitive polynomials (with the x^m term included), one per supported m.
# These are the conventional choices, e.g. 0x11D for GF(256) as used by CCSDS.
_PRIMITIVE_POLYS: Dict[int, int] = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0x11D,                # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0x1100B,             # x^16 + x^12 + x^3 + x + 1
}

_FIELD_CACHE: Dict[int, "GaloisField"] = {}


class GaloisField:
    """Arithmetic in GF(2^m) with a fixed primitive element alpha.

    Instances are immutable and cached per ``m`` (table construction for
    GF(2^16) costs a few hundred milliseconds, so reuse matters).

    Attributes:
        m: field extension degree (symbols are m-bit).
        order: number of field elements, ``2^m``.
        max_value: largest symbol value, ``2^m - 1`` (also the multiplicative
            group order, i.e. the natural Reed-Solomon codeword length).
    """

    def __init__(self, m: int) -> None:
        if m not in _PRIMITIVE_POLYS:
            supported = sorted(_PRIMITIVE_POLYS)
            raise ValueError(f"unsupported field degree m={m}; supported: {supported}")
        self.m = m
        self.order = 1 << m
        self.max_value = self.order - 1
        self._poly = _PRIMITIVE_POLYS[m]
        self._exp, self._log = self._build_tables()

    @classmethod
    def get(cls, m: int) -> "GaloisField":
        """Return the cached field of degree ``m`` (building it on first use)."""
        if m not in _FIELD_CACHE:
            _FIELD_CACHE[m] = cls(m)
        return _FIELD_CACHE[m]

    def _build_tables(self) -> tuple:
        """Build exp/log tables by repeated multiplication by alpha (x)."""
        size = self.order
        # exp has 2*(size-1) entries so that exp[log a + log b] needs no modulo.
        exp = np.zeros(2 * (size - 1), dtype=np.int64)
        log = np.zeros(size, dtype=np.int64)
        value = 1
        for power in range(size - 1):
            exp[power] = value
            log[value] = power
            value <<= 1
            if value & size:  # degree-m term appeared: reduce by the polynomial
                value ^= self._poly
        exp[size - 1:] = exp[: size - 1]
        log[0] = -1  # sentinel: log(0) is undefined
        return exp, log

    # -- scalar ops ---------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction) is XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] - self._log[b]) % self.max_value])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return int(self._exp[self.max_value - self._log[a]])

    def pow(self, a: int, exponent: int) -> int:
        """Raise ``a`` to an integer power (negative exponents allowed)."""
        if a == 0:
            if exponent < 0:
                raise ZeroDivisionError("0 cannot be raised to a negative power")
            return 0 if exponent != 0 else 1
        return int(self._exp[(self._log[a] * exponent) % self.max_value])

    def alpha_pow(self, exponent: int) -> int:
        """Return alpha^exponent for the field's primitive element."""
        return int(self._exp[exponent % self.max_value])

    def log_alpha(self, a: int) -> int:
        """Return the discrete log of ``a`` base alpha."""
        if a == 0:
            raise ValueError("log(0) is undefined")
        return int(self._log[a])

    # -- vector ops ---------------------------------------------------------

    def log_vec(self, a: np.ndarray) -> np.ndarray:
        """Discrete logs of a symbol array; raises ValueError on any zero."""
        a = np.asarray(a, dtype=np.int64)
        if np.any(a == 0):
            raise ValueError("log(0) is undefined")
        return self._log[a]

    def alpha_pow_vec(self, exponents: np.ndarray) -> np.ndarray:
        """alpha^e for an array of integer exponents (negatives allowed)."""
        exponents = np.asarray(exponents, dtype=np.int64)
        return self._exp[exponents % self.max_value]

    def inv_vec(self, a: np.ndarray) -> np.ndarray:
        """Elementwise multiplicative inverse; raises on any zero."""
        a = np.asarray(a, dtype=np.int64)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.max_value - self._log[a]]

    def div_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``a / b`` (broadcasting); raises on any zero in b."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^m)")
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        a_b, b_b = np.broadcast_arrays(a, b)
        nonzero = a_b != 0
        if np.any(nonzero):
            idx = (self._log[a_b[nonzero]] - self._log[b_b[nonzero]]) \
                % self.max_value
            out[nonzero] = self._exp[idx]
        return out

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product of two symbol arrays (broadcasting allowed)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nonzero = (a != 0) & (b != 0)
        if np.any(nonzero):
            a_nz, b_nz = np.broadcast_arrays(a, b)
            idx = self._log[a_nz[nonzero]] + self._log[b_nz[nonzero]]
            out[nonzero] = self._exp[idx]
        return out

    def scale_vec(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every element of ``a`` by one scalar."""
        a = np.asarray(a, dtype=np.int64)
        if scalar == 0:
            return np.zeros_like(a)
        out = np.zeros_like(a)
        nonzero = a != 0
        out[nonzero] = self._exp[self._log[a[nonzero]] + self._log[scalar]]
        return out

    # -- polynomial ops (coefficient arrays, highest degree first) ----------

    def poly_eval(self, poly: np.ndarray, x: int) -> int:
        """Evaluate a polynomial at a point (Horner's method)."""
        result = 0
        for coeff in np.asarray(poly, dtype=np.int64):
            result = self.mul(result, x) ^ int(coeff)
        return result

    def poly_eval_many(self, poly: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """Evaluate a polynomial at many points at once (vector Horner)."""
        xs = np.asarray(xs, dtype=np.int64)
        result = np.zeros_like(xs)
        for coeff in np.asarray(poly, dtype=np.int64):
            result = self.mul_vec(result, xs) ^ int(coeff)
        return result

    def poly_eval_grid(self, polys: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """Evaluate many polynomials at many points in one Horner sweep.

        ``polys`` is ``(D, C)`` with descending coefficients (leading
        zeros are harmless — Horner just carries a zero accumulator), and
        ``xs`` is ``(P,)``; the result is ``(D, P)`` with
        ``out[d, p] = polys[d](xs[p])``. This is the batched Chien-search
        primitive: one many-polynomials-at-many-points product per
        coefficient instead of ``D`` scalar Horner loops.
        """
        polys = np.asarray(polys, dtype=np.int64)
        xs = np.asarray(xs, dtype=np.int64)
        result = np.zeros((polys.shape[0], xs.shape[0]), dtype=np.int64)
        for c in range(polys.shape[1]):
            result = self.mul_vec(result, xs[None, :]) ^ polys[:, c: c + 1]
        return result

    def poly_mul(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Multiply two polynomials."""
        p = np.asarray(p, dtype=np.int64)
        q = np.asarray(q, dtype=np.int64)
        out = np.zeros(len(p) + len(q) - 1, dtype=np.int64)
        for i, coeff in enumerate(p):
            if coeff != 0:
                out[i: i + len(q)] ^= self.scale_vec(q, int(coeff))
        return out

    def poly_add(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Add two polynomials (XOR of aligned coefficients)."""
        p = np.asarray(p, dtype=np.int64)
        q = np.asarray(q, dtype=np.int64)
        if len(p) < len(q):
            p, q = q, p
        out = p.copy()
        out[len(p) - len(q):] ^= q
        return out

    def poly_divmod(self, dividend: np.ndarray, divisor: np.ndarray) -> tuple:
        """Polynomial long division; returns (quotient, remainder)."""
        dividend = np.asarray(dividend, dtype=np.int64).copy()
        divisor = np.asarray(divisor, dtype=np.int64)
        divisor = np.trim_zeros(divisor, "f")
        if divisor.size == 0:
            raise ZeroDivisionError("polynomial division by zero")
        if len(dividend) < len(divisor):
            return np.zeros(1, dtype=np.int64), dividend
        lead_inv = self.inv(int(divisor[0]))
        quotient = np.zeros(len(dividend) - len(divisor) + 1, dtype=np.int64)
        for i in range(len(quotient)):
            coeff = self.mul(int(dividend[i]), lead_inv)
            quotient[i] = coeff
            if coeff != 0:
                dividend[i: i + len(divisor)] ^= self.scale_vec(divisor, coeff)
        remainder = dividend[len(quotient):]
        return quotient, remainder

    def __repr__(self) -> str:
        return f"GaloisField(2^{self.m}, poly=0x{self._poly:X})"
