"""Batched RS errata decoding: BM/Chien/Forney across many codewords.

The scalar decoder (frozen in :mod:`repro.ecc.reference`) walks one
codeword at a time through Berlekamp–Massey, the Chien search and the
Forney algorithm — the last per-codeword Python loop on the decode path.
This module runs the whole chain across *all dirty codewords of all
units* in lockstep:

* the erasure locator is built as a vectorized polynomial product — one
  ``(D, nsym+2)`` coefficient matrix, one masked multiply-by-``(1 +
  root·x)`` step per erasure rank;
* Berlekamp–Massey runs as at most ``nsym`` lockstep iterations over the
  same coefficient matrix — each row joins the iteration at ``k = rho``
  (its erasure count, so fully-erased rows never iterate at all), with
  the conditional swap/update applied as masked row operations and the
  discrepancy's inner product bounded by the longest live locator;
* the Chien search is one many-polynomials-at-many-points evaluation
  (:meth:`~repro.ecc.gf.GaloisField.poly_eval_grid` over the cached
  inverse roots);
* Forney evaluates all rows' Omega products and locator derivatives at
  every root in one flattened ``(row, root)`` pass.

Failures are per-row *flags* instead of exceptions — the same verdicts
the scalar chain raises (`erasure budget exceeded`, `locator degree
mismatch`, `capability overflow`, `zero Forney derivative`, `residual
syndromes`) become reason codes so one bad codeword cannot serialize the
batch. ``tests/ecc/test_batched_vs_reference.py`` pins the whole result —
corrected symbols, corrected counts, and the failure set — byte-identical
to the frozen scalar reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from repro.observability.trace import get_tracer

#: Per-row failure reasons (``BatchDecodeResult.reasons``). ``OK`` is 0 so
#: ``reasons.astype(bool)`` is the failure mask.
OK = 0
TOO_MANY_ERASURES = 1
BAD_LOCATOR = 2
DEGREE_MISMATCH = 3
CAPABILITY_EXCEEDED = 4
DERIVATIVE_ZERO = 5
RESIDUAL_SYNDROMES = 6

REASON_LABELS = {
    OK: "ok",
    TOO_MANY_ERASURES: "erasures exceed correction capability",
    BAD_LOCATOR: "locator constant term is not 1",
    DEGREE_MISMATCH: "locator degree does not match root count",
    CAPABILITY_EXCEEDED: "errors + erasures exceed capability",
    DERIVATIVE_ZERO: "Forney derivative evaluated to zero",
    RESIDUAL_SYNDROMES: "residual syndromes after correction",
}


def reason_counts(reasons: np.ndarray) -> Dict[str, int]:
    """Collapse a reason-code array into a ``{label: count}`` dict.

    Only labels that actually occur appear; the single bincount here is
    shared by :meth:`BatchDecodeResult.reason_counts` and the metrics
    layer's RS failure-reason histogram, so the two can never disagree.
    """
    reasons = np.asarray(reasons, dtype=np.int64)
    if reasons.size == 0:
        return {}
    counts = np.bincount(reasons, minlength=len(REASON_LABELS))
    return {
        REASON_LABELS[code]: int(count)
        for code, count in enumerate(counts)
        if count
    }


@dataclass
class BatchDecodeResult:
    """Outcome of one :meth:`ReedSolomon.decode_many` call.

    Attributes:
        messages: ``(D, k)`` corrected data symbols. Rows that failed
            hold the erasure-zeroed received prefix (callers must gate on
            ``ok``).
        n_corrected: ``(D,)`` symbols corrected per row (errata-locator
            degree on the dirty path, the erasure count on the clean
            fast path) — exactly the scalar decoder's second return.
        ok: ``(D,)`` True where the row decoded.
        reasons: ``(D,)`` failure reason codes (see module constants);
            0 (``OK``) for successful rows.
    """

    messages: np.ndarray
    n_corrected: np.ndarray
    ok: np.ndarray
    reasons: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.ok.shape[0]

    def failed_rows(self) -> np.ndarray:
        """Indices of rows that did not decode, ascending."""
        return np.flatnonzero(~self.ok)

    def reason_counts(self) -> Dict[str, int]:
        """Per-row outcomes as ``{label: count}`` (see
        :func:`reason_counts`); ``"ok"`` counts the successful rows."""
        return reason_counts(self.reasons)


ErasureTable = Union[None, np.ndarray, Sequence[Sequence[int]]]


def as_erasure_mask(
    erasure_table: ErasureTable, n_rows: int, n: int
) -> np.ndarray:
    """Normalize any accepted erasure form into a ``(D, n)`` boolean mask.

    Accepts ``None`` (no erasures), a boolean mask (used as-is), or one
    index sequence per row (duplicates collapse, like the scalar
    decoder's ``sorted(set(...))``). Raises ValueError on out-of-range
    indices or a shape mismatch.
    """
    if erasure_table is None:
        return np.zeros((n_rows, n), dtype=bool)
    if isinstance(erasure_table, np.ndarray) and erasure_table.dtype == bool:
        if erasure_table.shape != (n_rows, n):
            raise ValueError(
                f"erasure mask must be ({n_rows}, {n}), "
                f"got {erasure_table.shape}"
            )
        return erasure_table
    if len(erasure_table) != n_rows:
        raise ValueError(
            f"erasure table must have one entry per row ({n_rows}), "
            f"got {len(erasure_table)}"
        )
    mask = np.zeros((n_rows, n), dtype=bool)
    for row, erasures in enumerate(erasure_table):
        positions = np.asarray(list(erasures), dtype=np.int64)
        if positions.size and (positions.min() < 0 or positions.max() >= n):
            raise ValueError(
                f"row {row}: erasure index out of range [0, {n})"
            )
        mask[row, positions] = True
    return mask


def decode_words(
    rs, words: np.ndarray, erasure_mask: np.ndarray
) -> BatchDecodeResult:
    """Decode ``(D, n)`` received words with per-row erasure masks.

    ``rs`` is the owning :class:`~repro.ecc.reed_solomon.ReedSolomon`
    (field tables, cached roots, ``syndromes_many``). Row ``d`` is
    decoded exactly as ``rs``'s scalar reference would decode
    ``words[d]`` with ``np.flatnonzero(erasure_mask[d])`` as erasures —
    same corrected symbols, same counts, same failure verdicts — but the
    whole batch moves through each chain stage together.
    """
    nsym, k = rs.nsym, rs.k
    n_rows = words.shape[0]

    with get_tracer().span("rs.decode_words", n_rows=n_rows) as span:
        rho = erasure_mask.sum(axis=1).astype(np.int64)
        reasons = np.zeros(n_rows, dtype=np.int64)
        reasons[rho > nsym] = TOO_MANY_ERASURES

        zeroed = np.where(erasure_mask, 0, words)
        messages = zeroed[:, :k].copy()
        if n_rows == 0:
            return BatchDecodeResult(
                messages=messages,
                n_corrected=np.zeros(0, dtype=np.int64),
                ok=np.ones(0, dtype=bool),
                reasons=reasons,
            )

        syndromes = rs.syndromes_many(zeroed)
        dirty = np.any(syndromes != 0, axis=1)
        # Clean fast path: the zeroed word already is a codeword, so every
        # erased symbol was genuinely zero. Count matches the scalar early
        # return (the erasure count).
        n_corrected = np.where(dirty, 0, rho)

        rows = np.flatnonzero(dirty & (reasons == OK))
        span.set(n_dirty=rows.size)
        if rows.size:
            sub = _decode_dirty(rs, zeroed[rows], syndromes[rows],
                                erasure_mask[rows], rho[rows])
            messages[rows] = sub.messages
            n_corrected[rows] = sub.n_corrected
            reasons[rows] = sub.reasons

        ok = reasons == OK
    return BatchDecodeResult(
        messages=messages, n_corrected=n_corrected, ok=ok, reasons=reasons
    )


def _decode_dirty(
    rs, zeroed: np.ndarray, syndromes: np.ndarray,
    erasure_mask: np.ndarray, rho: np.ndarray,
) -> BatchDecodeResult:
    """The errata chain over an already-compacted dirty batch."""
    field = rs.field
    nsym, k = rs.nsym, rs.k
    n_rows = zeroed.shape[0]
    reasons = np.zeros(n_rows, dtype=np.int64)

    locator, _ = _berlekamp_massey_many(rs, syndromes, erasure_mask, rho)

    # Trailing-zero trim: the locator degree is the last nonzero index
    # (the scalar chain pops trailing zeros; constant term stays).
    nonzero = locator != 0
    width = locator.shape[1]
    degree = np.where(
        nonzero.any(axis=1),
        width - 1 - np.argmax(nonzero[:, ::-1], axis=1),
        0,
    )
    reasons[locator[:, 0] != 1] = BAD_LOCATOR

    # Chien search: every locator at every received position at once.
    evaluations = field.poly_eval_grid(locator[:, ::-1], rs._inv_roots)
    root_mask = evaluations == 0
    n_roots = root_mask.sum(axis=1)
    live = reasons == OK
    reasons[live & (n_roots != degree)] = DEGREE_MISMATCH
    live = reasons == OK
    n_errors = degree - rho
    reasons[live & (2 * n_errors + rho > nsym)] = CAPABILITY_EXCEEDED

    corrected = zeroed.copy()
    surv = np.flatnonzero(reasons == OK)
    if surv.size:
        deriv_zero_rows, row_ids, positions, magnitudes = _forney_many(
            rs, syndromes[surv], locator[surv], root_mask[surv]
        )
        reasons[surv[deriv_zero_rows]] = DERIVATIVE_ZERO
        keep = ~np.isin(row_ids, deriv_zero_rows)
        corrected[surv[row_ids[keep]], positions[keep]] ^= magnitudes[keep]

    surv = np.flatnonzero(reasons == OK)
    if surv.size:
        residual = np.any(rs.syndromes_many(corrected[surv]) != 0, axis=1)
        reasons[surv[residual]] = RESIDUAL_SYNDROMES

    ok = reasons == OK
    return BatchDecodeResult(
        messages=np.where(ok[:, None], corrected[:, :k], zeroed[:, :k]),
        n_corrected=np.where(ok, degree, 0),
        ok=ok,
        reasons=reasons,
    )


def _erasure_locators_many(
    rs, erasure_mask: np.ndarray, rho: np.ndarray, width: int
) -> np.ndarray:
    """Every row's Gamma(x) = prod (1 + alpha^d x) as one coefficient
    matrix (ascending columns), built in ``max(rho)`` vectorized steps.

    Step ``t`` multiplies each row that still has a ``t``-th erasure by
    its ``(1 + root_t x)`` factor; rows past their erasure count carry a
    zero root, making the masked update a no-op.
    """
    field = rs.field
    n_rows = erasure_mask.shape[0]
    locator = np.zeros((n_rows, width), dtype=np.int64)
    locator[:, 0] = 1
    max_rho = int(rho.max()) if n_rows else 0
    if max_rho == 0:
        return locator
    # Rank the erased positions within each row (np.nonzero is row-major,
    # so positions come out ascending per row, matching the scalar
    # sorted-set order).
    row_ids, positions = np.nonzero(erasure_mask)
    offsets = np.concatenate([[0], np.cumsum(rho)[:-1]])
    ranks = np.arange(row_ids.size) - np.repeat(offsets, rho)
    roots = np.zeros((n_rows, max_rho), dtype=np.int64)
    roots[row_ids, ranks] = rs._roots[positions]
    for t in range(max_rho):
        locator[:, 1:] ^= field.mul_vec(locator[:, :-1], roots[:, t: t + 1])
    return locator


def _berlekamp_massey_many(
    rs, syndromes: np.ndarray, erasure_mask: np.ndarray, rho: np.ndarray
):
    """Lockstep Berlekamp–Massey seeded with the erasure locators.

    Returns ``(locator, len_loc)``: the ``(D, nsym+2)`` ascending
    coefficient matrix and the scalar chain's *list length* per row (the
    length bookkeeping — not the polynomial degree — drives the
    conditional swap, so it is tracked explicitly).
    """
    field = rs.field
    nsym = rs.nsym
    n_rows = syndromes.shape[0]
    # nsym+2 columns: list lengths never exceed nsym+1, so the final
    # column only ever absorbs the multiply-by-x shift of a zero.
    width = nsym + 2
    locator = _erasure_locators_many(rs, erasure_mask, rho, width)
    previous = locator.copy()
    len_loc = rho + 1
    len_prev = rho + 1

    start = int(rho.min()) if n_rows else nsym
    for step in range(start, nsym):
        active = step >= rho
        if not np.any(active):
            continue
        # Discrepancy: delta = S_k ^ sum_j L_j * S_{k-j}. The inner
        # product only needs j below the longest live locator list —
        # rows at their fixed point (all later coefficients zero)
        # contribute nothing beyond it.
        delta = syndromes[:, step].copy()
        j_hi = min(step, int(len_loc.max()) - 1, width - 1)
        for j in range(1, j_hi + 1):
            delta ^= field.mul_vec(locator[:, j], syndromes[:, step - j])

        # previous *= x (ascending shift) for the active rows.
        previous[active, 1:] = previous[active, :-1]
        previous[active, 0] = 0
        len_prev[active] += 1

        update = active & (delta != 0)
        if not np.any(update):
            continue
        swap = update & (len_prev > len_loc)
        if np.any(swap):
            delta_swap = delta[swap][:, None]
            new_locator = field.mul_vec(previous[swap], delta_swap)
            new_previous = field.mul_vec(
                locator[swap], field.inv_vec(delta[swap])[:, None]
            )
            locator[swap] = new_locator
            previous[swap] = new_previous
            len_loc_swap = len_loc[swap]
            len_loc[swap] = len_prev[swap]
            len_prev[swap] = len_loc_swap
        locator[update] ^= field.mul_vec(
            previous[update], delta[update][:, None]
        )
        len_loc[update] = np.maximum(len_loc[update], len_prev[update])
    return locator, len_loc


def _forney_many(rs, syndromes: np.ndarray, locator: np.ndarray,
                 root_mask: np.ndarray):
    """Batched Forney: magnitudes for every (row, root) pair at once.

    Returns ``(deriv_zero_rows, row_ids, positions, magnitudes)`` —
    rows whose locator derivative vanishes at any of their roots (the
    scalar chain's DecodeFailure), and the flattened correction triples
    for all roots.
    """
    field = rs.field
    nsym = rs.nsym
    n_rows = syndromes.shape[0]
    width = locator.shape[1]

    # Omega(x) = S(x) * Lambda(x) mod x^nsym, ascending — one vectorized
    # diagonal per locator coefficient instead of a per-row convolution.
    omega = np.zeros((n_rows, nsym), dtype=np.int64)
    for j in range(min(width, nsym)):
        omega[:, j:] ^= field.mul_vec(
            locator[:, j: j + 1], syndromes[:, : nsym - j]
        )

    row_ids, positions = np.nonzero(root_mask)
    if row_ids.size == 0:
        return (np.zeros(0, dtype=np.int64), row_ids, positions,
                np.zeros(0, dtype=np.int64))
    x_inv = rs._inv_roots[positions]
    x = rs._roots[positions]

    # Omega(x_inv), all pairs in one Horner sweep (descending order).
    omega_val = np.zeros(row_ids.size, dtype=np.int64)
    for c in range(nsym - 1, -1, -1):
        omega_val = field.mul_vec(omega_val, x_inv) ^ omega[row_ids, c]

    # Lambda'(x_inv): odd ascending coefficients evaluated at x_inv^2.
    derivative = locator[:, 1::2]
    x_inv_sq = field.mul_vec(x_inv, x_inv)
    deriv_val = np.zeros(row_ids.size, dtype=np.int64)
    for c in range(derivative.shape[1] - 1, -1, -1):
        deriv_val = field.mul_vec(deriv_val, x_inv_sq) \
            ^ derivative[row_ids, c]

    zero = deriv_val == 0
    deriv_zero_rows = np.unique(row_ids[zero])
    magnitudes = np.zeros(row_ids.size, dtype=np.int64)
    good = ~zero
    if np.any(good):
        magnitudes[good] = field.mul_vec(
            x[good], field.div_vec(omega_val[good], deriv_val[good])
        )
    return deriv_zero_rows, row_ids, positions, magnitudes
