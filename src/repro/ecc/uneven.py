"""Unequal error correction — the strawman of the paper's Section 4.1.

Under unequal ECC (the paper's Figure 7) each row of the encoding matrix is
still one Reed-Solomon codeword, but rows receive *different* amounts of
parity: rows mapped to reliable molecule positions (the ends) get little
redundancy while rows in the unreliable middle get a lot.

The paper's argument — which the Fig-12-style experiments in this repo
reproduce — is that this only works if the skew magnitude assumed at
*encoding* time matches the skew realized at *decoding* time, potentially
millennia later under a different sequencing technology and coverage. The
classes here exist so that the mismatch can be evaluated: you provision for
one skew profile and decode under another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ecc.reed_solomon import DecodeFailure, ReedSolomon


def redundancy_profile_for_skew(
    skew_curve: Sequence[float],
    total_parity: int,
    min_per_row: int = 0,
    max_per_row: Optional[int] = None,
) -> List[int]:
    """Allocate a parity budget across rows proportionally to expected error.

    Args:
        skew_curve: expected per-row error intensity (any non-negative scale;
            only proportions matter). One entry per matrix row.
        total_parity: total number of parity symbols to distribute.
        min_per_row: lower bound per row (e.g. 0 or 2).
        max_per_row: optional upper bound per row (e.g. the codeword length
            minus one data symbol).

    Returns:
        A list of per-row parity counts summing to ``total_parity``,
        allocated by the largest-remainder method.
    """
    curve = np.asarray(skew_curve, dtype=np.float64)
    if curve.ndim != 1 or curve.size == 0:
        raise ValueError("skew_curve must be a non-empty 1-D sequence")
    if np.any(curve < 0):
        raise ValueError("skew_curve entries must be non-negative")
    n_rows = curve.size
    if total_parity < min_per_row * n_rows:
        raise ValueError("total_parity too small for the per-row minimum")
    if max_per_row is not None and total_parity > max_per_row * n_rows:
        raise ValueError("total_parity too large for the per-row maximum")

    remaining = total_parity - min_per_row * n_rows
    weights = curve / curve.sum() if curve.sum() > 0 else np.full(n_rows, 1.0 / n_rows)
    ideal = weights * remaining
    allocation = np.floor(ideal).astype(int)
    shortfall = remaining - int(allocation.sum())
    # Hand out the leftover symbols to the rows with the largest remainders.
    remainders = ideal - allocation
    for row in np.argsort(-remainders)[:shortfall]:
        allocation[row] += 1
    result = (allocation + min_per_row).tolist()
    if max_per_row is not None:
        result = _rebalance_to_cap(result, max_per_row)
    return result


def _rebalance_to_cap(allocation: List[int], cap: int) -> List[int]:
    """Push any allocation above ``cap`` onto the least-loaded rows."""
    allocation = list(allocation)
    overflow = 0
    for i, value in enumerate(allocation):
        if value > cap:
            overflow += value - cap
            allocation[i] = cap
    while overflow > 0:
        target = min(range(len(allocation)), key=lambda i: allocation[i])
        if allocation[target] >= cap:
            raise ValueError("cannot satisfy per-row cap")
        allocation[target] += 1
        overflow -= 1
    return allocation


@dataclass
class _RowCodec:
    codec: Optional[ReedSolomon]  # None when the row has zero parity
    nsym: int


class UnevenEccScheme:
    """A matrix ECC scheme with per-row Reed-Solomon parity counts.

    Each row is a shortened RS codeword of length ``n_columns`` with its own
    ``nsym``; rows with ``nsym == 0`` are stored unprotected.

    Args:
        m: RS symbol size in bits.
        n_columns: number of molecules (codeword length of every row).
        parity_per_row: parity symbols for each row, e.g. the output of
            :func:`redundancy_profile_for_skew`.
    """

    def __init__(self, m: int, n_columns: int, parity_per_row: Sequence[int]) -> None:
        self.m = m
        self.n_columns = n_columns
        self.parity_per_row = [int(p) for p in parity_per_row]
        self._rows: List[_RowCodec] = []
        for nsym in self.parity_per_row:
            if nsym < 0 or nsym >= n_columns:
                raise ValueError(f"per-row parity must be in [0, {n_columns}), got {nsym}")
            codec = ReedSolomon(m, nsym=nsym, n=n_columns) if nsym > 0 else None
            self._rows.append(_RowCodec(codec=codec, nsym=nsym))

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def data_symbols_per_row(self) -> List[int]:
        """Data capacity of each row (columns minus that row's parity)."""
        return [self.n_columns - row.nsym for row in self._rows]

    @property
    def total_data_symbols(self) -> int:
        return sum(self.data_symbols_per_row)

    def encode(self, data: Sequence[int]) -> np.ndarray:
        """Encode a flat symbol stream into an (n_rows, n_columns) matrix.

        Data fills rows top to bottom; each row appends its own parity.
        """
        data = np.asarray(data, dtype=np.int64)
        if data.shape != (self.total_data_symbols,):
            raise ValueError(
                f"expected {self.total_data_symbols} data symbols, got {data.shape}"
            )
        matrix = np.zeros((self.n_rows, self.n_columns), dtype=np.int64)
        cursor = 0
        for r, row in enumerate(self._rows):
            k = self.n_columns - row.nsym
            message = data[cursor: cursor + k]
            cursor += k
            if row.codec is None:
                matrix[r] = message
            else:
                matrix[r] = row.codec.encode(message)
        return matrix

    def decode(
        self,
        matrix: np.ndarray,
        erasures: Sequence[int] = (),
    ) -> Tuple[np.ndarray, List[bool]]:
        """Decode a received matrix; returns (data stream, per-row success).

        Rows that fail to decode contribute their received data symbols
        verbatim (possibly corrupt), which is what lets the evaluation
        measure graceful-versus-catastrophic degradation.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.shape != (self.n_rows, self.n_columns):
            raise ValueError(
                f"expected matrix {(self.n_rows, self.n_columns)}, got {matrix.shape}"
            )
        pieces = []
        row_ok: List[bool] = []
        for r, row in enumerate(self._rows):
            k = self.n_columns - row.nsym
            if row.codec is None:
                pieces.append(matrix[r, :k])
                row_ok.append(True)
                continue
            try:
                message, _ = row.codec.decode(matrix[r], erasures=erasures)
                pieces.append(message)
                row_ok.append(True)
            except DecodeFailure:
                pieces.append(matrix[r, :k])
                row_ok.append(False)
        return np.concatenate(pieces), row_ok

    def __repr__(self) -> str:
        return (
            f"UnevenEccScheme(m={self.m}, n_columns={self.n_columns}, "
            f"rows={self.n_rows}, parity={sum(self.parity_per_row)})"
        )
