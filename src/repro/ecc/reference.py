"""Frozen reference implementation of the scalar RS errata decoder.

This is the original per-codeword error-and-erasure chain — syndromes,
erasure-locator product, Berlekamp–Massey seeded with it, Chien search,
Forney — exactly as it ran inside :class:`~repro.ecc.reed_solomon.
ReedSolomon.decode` before the chain was vectorized across whole batches
of dirty codewords (:mod:`repro.ecc.batched`). It processes one codeword
per call and loops coefficient-by-coefficient, which makes it easy to
audit against the textbook algorithm — and deliberately slow.

Like :mod:`repro.consensus.reference` and :mod:`repro.cluster.reference`,
it exists so correctness of the batched decoder is checkable by
construction: ``tests/ecc/test_batched_vs_reference.py`` asserts that
:meth:`ReedSolomon.decode_many` matches this chain row for row —
corrected symbols, corrected counts, and which rows fail. Do not optimize
this module; its value is that it never changes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.ecc.reed_solomon import DecodeFailure, ReedSolomon


class ReferenceReedSolomon(ReedSolomon):
    """The original scalar error-and-erasure decoder, frozen verbatim.

    Construction, encoding and the syndrome helpers are shared with
    :class:`ReedSolomon`; only the errata chain differs — this class runs
    the per-codeword Python loops the batched decoder replaced.
    """

    def decode(
        self,
        received: Sequence[int],
        erasures: Iterable[int] = (),
    ) -> Tuple[np.ndarray, int]:
        """Correct a received word and return ``(message, n_corrected)``.

        See :meth:`ReedSolomon.decode` for the contract; this is the
        original implementation.
        """
        word = np.asarray(received, dtype=np.int64).copy()
        if word.shape != (self.n,):
            raise ValueError(f"received must have {self.n} symbols, got {word.shape}")
        erasure_list = sorted(set(int(e) for e in erasures))
        for pos in erasure_list:
            if not (0 <= pos < self.n):
                raise ValueError(f"erasure index {pos} out of range [0, {self.n})")
        if len(erasure_list) > self.nsym:
            raise DecodeFailure(
                f"{len(erasure_list)} erasures exceed correction capability {self.nsym}"
            )
        # Zero out erased positions so their prior content cannot bias syndromes.
        if erasure_list:
            word[erasure_list] = 0

        syndromes = self._syndromes(word)
        if not np.any(syndromes):
            return word[: self.k], len(erasure_list)

        errata_locator = self._berlekamp_massey(syndromes, erasure_list)
        positions = self._chien_search(errata_locator)
        degree = len(errata_locator) - 1
        if len(positions) != degree:
            raise DecodeFailure(
                f"locator degree {degree} but found {len(positions)} roots"
            )
        n_errors = degree - len(erasure_list)
        if 2 * n_errors + len(erasure_list) > self.nsym:
            raise DecodeFailure(
                f"{n_errors} errors + {len(erasure_list)} erasures exceed capability"
            )
        magnitudes = self._forney(syndromes, errata_locator, positions)
        for pos, mag in zip(positions, magnitudes):
            word[pos] ^= mag
        if np.any(self._syndromes(word)):
            raise DecodeFailure("residual syndromes after correction")
        return word[: self.k], degree

    # -- decoder internals (ascending-order polynomials) ----------------------

    def _erasure_locator(self, erasure_list: Sequence[int]) -> list:
        """Gamma(x) = prod (1 + alpha^d x), ascending coefficient list."""
        locator = [1]
        for pos in erasure_list:
            degree = self.n - 1 - pos
            root = self.field.alpha_pow(degree)
            # Multiply locator by (1 + root*x).
            extended = locator + [0]
            for i in range(len(locator)):
                extended[i + 1] ^= self.field.mul(locator[i], root)
            locator = extended
        return locator

    def _berlekamp_massey(
        self, syndromes: np.ndarray, erasure_list: Sequence[int]
    ) -> list:
        """Find the errata locator, seeded with the erasure locator.

        Returns the combined locator Lambda(x)*Gamma(x) as an ascending
        coefficient list with constant term 1.
        """
        rho = len(erasure_list)
        locator = self._erasure_locator(erasure_list)
        previous = list(locator)
        for k in range(rho, self.nsym):
            delta = int(syndromes[k])
            for j in range(1, len(locator)):
                if locator[j] and k - j >= 0:
                    delta ^= self.field.mul(locator[j], int(syndromes[k - j]))
            previous = [0] + previous  # multiply by x (ascending order)
            if delta != 0:
                if len(previous) > len(locator):
                    new_locator = [self.field.mul(c, delta) for c in previous]
                    inv_delta = self.field.inv(delta)
                    previous = [self.field.mul(c, inv_delta) for c in locator]
                    locator = new_locator
                scaled = [self.field.mul(c, delta) for c in previous]
                merged = [0] * max(len(locator), len(scaled))
                for i, c in enumerate(locator):
                    merged[i] ^= c
                for i, c in enumerate(scaled):
                    merged[i] ^= c
                locator = merged
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        if locator[0] != 1:
            raise DecodeFailure("locator constant term is not 1")
        return locator

    def _chien_search(self, locator: list) -> list:
        """Return received-array positions where the locator has a root."""
        loc_desc = np.array(locator[::-1], dtype=np.int64)
        evaluations = self.field.poly_eval_many(loc_desc, self._inv_roots)
        return [int(i) for i in np.nonzero(evaluations == 0)[0]]

    def _forney(
        self, syndromes: np.ndarray, locator: list, positions: Sequence[int]
    ) -> list:
        """Error magnitudes e = X * Omega(X^-1) / Lambda'(X^-1) (fcr = 0)."""
        # Omega(x) = S(x) * Lambda(x) mod x^nsym, ascending coefficients.
        omega = [0] * self.nsym
        for i in range(self.nsym):
            s = int(syndromes[i])
            if s == 0:
                continue
            for j, lam in enumerate(locator):
                if lam and i + j < self.nsym:
                    omega[i + j] ^= self.field.mul(s, lam)
        # Formal derivative keeps odd-degree terms: sum Lambda_j x^(j-1), j odd.
        derivative = [locator[j] for j in range(1, len(locator), 2)]
        magnitudes = []
        for pos in positions:
            degree = self.n - 1 - pos
            x = self.field.alpha_pow(degree)
            x_inv = self.field.inv(x)
            omega_val = self._eval_ascending(omega, x_inv)
            # Lambda'(x_inv): even powers of x_inv only (x^(j-1) with j odd).
            deriv_val = 0
            power = 1
            x_inv_sq = self.field.mul(x_inv, x_inv)
            for coeff in derivative:
                if coeff:
                    deriv_val ^= self.field.mul(coeff, power)
                power = self.field.mul(power, x_inv_sq)
            if deriv_val == 0:
                raise DecodeFailure("Forney derivative evaluated to zero")
            magnitude = self.field.mul(x, self.field.div(omega_val, deriv_val))
            magnitudes.append(magnitude)
        return magnitudes

    def _eval_ascending(self, poly: Sequence[int], x: int) -> int:
        """Evaluate an ascending-order coefficient list at ``x``."""
        result = 0
        power = 1
        for coeff in poly:
            if coeff:
                result ^= self.field.mul(coeff, power)
            power = self.field.mul(power, x)
        return result

    def __repr__(self) -> str:
        return (f"ReferenceReedSolomon(m={self.m}, n={self.n}, "
                f"k={self.k}, nsym={self.nsym})")
