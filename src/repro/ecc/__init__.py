"""Error-correction substrate: GF(2^m) arithmetic and Reed-Solomon codes.

The paper's storage architecture (its Figure 1) protects data with
Reed-Solomon codewords laid across DNA molecules. This subpackage provides:

* :class:`repro.ecc.gf.GaloisField` — GF(2^m) arithmetic over log/antilog
  tables, vectorized with numpy, for m up to 16 (the paper uses m=16; the
  scaled-down experiment configs use m=8).
* :class:`repro.ecc.reed_solomon.ReedSolomon` — a systematic RS codec with
  combined error-and-erasure decoding (Berlekamp–Massey + Chien + Forney)
  and support for shortened codes. :meth:`~repro.ecc.reed_solomon.
  ReedSolomon.decode_many` runs the whole errata chain across a batch of
  codewords in lockstep (:mod:`repro.ecc.batched`), returning per-row
  failure flags instead of raising.
* :class:`repro.ecc.reference.ReferenceReedSolomon` — the frozen scalar
  decoder the batched chain is differentially pinned against.
* :class:`repro.ecc.uneven.UnevenEccScheme` — the unequal-error-correction
  strawman of the paper's Section 4.1, used as an evaluated baseline.
"""

from repro.ecc.batched import BatchDecodeResult
from repro.ecc.gf import GaloisField
from repro.ecc.reed_solomon import DecodeFailure, ReedSolomon
from repro.ecc.reference import ReferenceReedSolomon
from repro.ecc.uneven import UnevenEccScheme, redundancy_profile_for_skew

__all__ = [
    "GaloisField",
    "ReedSolomon",
    "ReferenceReedSolomon",
    "BatchDecodeResult",
    "DecodeFailure",
    "UnevenEccScheme",
    "redundancy_profile_for_skew",
]
