"""Perfect (oracle) clustering, as used by the paper's simulations.

In simulation the source strand of every read is known, so clustering is
exact by construction — "our data is perfectly clustered, which allows us
to eliminate the effects of imperfect clustering algorithms" (Section
6.1.2). This module just regroups tagged reads.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.channel.sequencer import ReadCluster


def perfect_clusters(
    tagged_reads: Sequence[Tuple[int, str]], n_strands: int
) -> List[ReadCluster]:
    """Group (source_index, read) pairs into one cluster per source strand.

    Args:
        tagged_reads: reads tagged with the index of their source strand.
        n_strands: total number of source strands; sources with no reads
            produce empty clusters (strand dropout).
    """
    buckets: Dict[int, List[str]] = {index: [] for index in range(n_strands)}
    for source_index, read in tagged_reads:
        if not (0 <= source_index < n_strands):
            raise ValueError(
                f"source index {source_index} out of range [0, {n_strands})"
            )
        buckets[source_index].append(read)
    return [
        ReadCluster(source_index=index, reads=buckets[index])
        for index in range(n_strands)
    ]
