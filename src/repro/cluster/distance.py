"""Levenshtein (edit) distance — full and banded variants.

Edit distance is the similarity metric of DNA storage clustering (the
minimum number of insertions, deletions and substitutions converting one
string into the other). The full DP is O(n*m); the banded variant bounds
the alignment to a diagonal band of half-width ``band`` and is what the
greedy clusterer uses, since reads of the same cluster differ by a small
number of edits.
"""

from __future__ import annotations

import numpy as np

from repro.codec.basemap import bases_to_indices


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance between two DNA strings."""
    return edit_distance_indices(
        bases_to_indices(a) if a else np.zeros(0, dtype=np.uint8),
        bases_to_indices(b) if b else np.zeros(0, dtype=np.uint8),
    )


def edit_distance_indices(a: np.ndarray, b: np.ndarray) -> int:
    """Exact Levenshtein distance between two symbol-index arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0:
        return int(b.size)
    if b.size == 0:
        return int(a.size)
    if a.size < b.size:
        a, b = b, a  # keep the inner (vectorized) dimension the larger one
    m = b.size
    offsets = np.arange(m + 1, dtype=np.int64)
    row = offsets.copy()
    for symbol in a:
        candidates = np.empty(m + 1, dtype=np.int64)
        candidates[0] = row[0] + 1
        substitution = (b != symbol).astype(np.int64)
        candidates[1:] = np.minimum(row[:-1] + substitution, row[1:] + 1)
        row = np.minimum.accumulate(candidates - offsets) + offsets
    return int(row[-1])


def banded_edit_distance(a: str, b: str, band: int) -> int:
    """Edit distance restricted to a diagonal band of half-width ``band``.

    Returns the exact distance when it is at most ``band``; otherwise
    returns a value strictly greater than ``band`` (a certificate that the
    strings are farther apart than the band, not the true distance). The
    length difference alone decides when it already exceeds the band.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    return banded_edit_distance_indices(
        bases_to_indices(a) if a else np.zeros(0, dtype=np.uint8),
        bases_to_indices(b) if b else np.zeros(0, dtype=np.uint8),
        band,
    )


def banded_edit_distance_indices(a: np.ndarray, b: np.ndarray,
                                 band: int) -> int:
    """Banded edit distance between two symbol-index arrays.

    Same contract as :func:`banded_edit_distance`; the batched clustering
    path calls this directly so no string ever materializes. The
    horizontal (insertion) pass uses the same ``np.minimum.accumulate``
    offset trick as :func:`edit_distance_indices` — with unit gap costs,
    ``row[j] = min_k<=j (cand[k] + j - k)`` — instead of a per-cell
    Python loop over the band.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    a = np.asarray(a)
    b = np.asarray(b)
    n, m = a.size, b.size
    if abs(n - m) > band:
        return abs(n - m)
    if n == 0 or m == 0:
        return max(n, m)
    big = band + 1
    # row[j] for j in [max(0, i-band), min(m, i+band)] kept in a dense array.
    previous = np.full(m + 1, big, dtype=np.int64)
    upper = min(m, band)
    previous[: upper + 1] = np.arange(upper + 1)
    for i in range(1, n + 1):
        current = np.full(m + 1, big, dtype=np.int64)
        low = max(1, i - band)
        high = min(m, i + band)
        if i <= band:
            current[0] = i
        segment = np.minimum(
            previous[low - 1: high] + (b[low - 1: high] != a[i - 1]),
            previous[low: high + 1] + 1,
        )
        window = np.empty(high - low + 2, dtype=np.int64)
        window[0] = current[low - 1]
        window[1:] = segment
        offsets = np.arange(window.size, dtype=np.int64)
        current[low - 1: high + 1] = \
            np.minimum.accumulate(window - offsets) + offsets
        previous = current
        if previous[max(0, i - band): min(m, i + band) + 1].min() > band:
            return big  # the whole band exceeded the threshold; bail out
    return int(min(previous[m], big))


def banded_edit_distances_stack(
    queries: np.ndarray,
    query_lengths: np.ndarray,
    targets: np.ndarray,
    target_lengths: np.ndarray,
    band: int,
) -> np.ndarray:
    """Banded edit distance for a whole stack of pairs, advanced in lockstep.

    Pair ``k`` compares ``queries[k, :query_lengths[k]]`` against
    ``targets[k, :target_lengths[k]]``; entries past a sequence's end are
    sentinels (any value that matches nothing, e.g. ``-1`` from
    :meth:`~repro.channel.readbatch.ReadBatch.padded_matrix`). Returns one
    ``int64`` distance per pair under the :func:`banded_edit_distance`
    contract: exact when at most ``band``, some value strictly greater
    than ``band`` otherwise.

    This is the clustering counterpart of
    ``consensus.iterative._edit_matrix_stack``, kept truly *banded*: the
    rolling DP row holds only the ``2 * band + 1`` diagonal-band cells of
    every pair. In band coordinates cell ``d`` of target row ``i`` is
    query column ``j = i + d - band``, so the diagonal predecessor stays
    at ``d``, the vertical one at ``d + 1``, the horizontal pass is the
    usual ``np.minimum.accumulate`` offset trick along ``d`` — and
    because every pair shares the row index ``i``, the band's query
    window is one contiguous slice of the (sentinel-padded) query stack,
    no per-row gather. Pairs drop out of the active stack as soon as
    they finish (their target is exhausted) or bail out (their entire
    band row exceeds ``band`` — row minima are non-decreasing, so the
    final distance can only be larger).
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    queries = np.asarray(queries)
    targets = np.asarray(targets)
    qlen = np.asarray(query_lengths, dtype=np.int64)
    tlen = np.asarray(target_lengths, dtype=np.int64)
    n_pairs, qw = queries.shape if queries.ndim == 2 else (0, 0)
    if not (qlen.shape == tlen.shape == (n_pairs,)):
        raise ValueError("lengths must align with the query/target stacks")
    big = band + 1
    results = np.full(n_pairs, big, dtype=np.int64)
    # Pairs whose length gap alone exceeds the band can never return.
    active = np.flatnonzero(np.abs(qlen - tlen) <= band)
    if active.size == 0:
        return results
    width = 2 * band + 1
    #: Acts as +infinity: out-of-band cells must lose every minimum.
    huge = np.int32(1 << 20)
    # Query stack shifted right by ``band`` inside a sentinel pad, so the
    # band window of target row ``i`` (query columns ``i - band .. i +
    # band``, char of column ``j`` at padded index ``j - 1 + band``) is
    # the plain slice ``[i - 1 : i - 1 + width]``.
    max_rows = int(tlen[active].max())
    padded = np.full((active.size, max(qw, max_rows) + 2 * band),
                     -1, dtype=np.int16)
    padded[:, band: band + qw] = queries[active]
    t_active = np.ascontiguousarray(targets[active], dtype=np.int16)
    # Row 0 in band coordinates: D[0, j] = j inside the band, +inf left
    # of it; one spare +inf column on the right serves as the vertical
    # predecessor of the band's right edge.
    row = np.empty((active.size, width + 1), dtype=np.int32)
    row[:, :band] = huge
    row[:, band:] = np.arange(band + 2, dtype=np.int32)
    row[:, width] = huge
    offsets = np.arange(width, dtype=np.int32)
    finished = tlen[active] == 0
    if finished.any():
        done = active[finished]
        results[done] = np.minimum(row[finished, qlen[done] + band], big)
        keep = ~finished
        active, row = active[keep], row[keep]
        padded, t_active = padded[keep], t_active[keep]
    i = 0
    while active.size:
        i += 1
        substitution = padded[:, i - 1: i - 1 + width] \
            != t_active[:, i - 1, None]
        candidates = np.minimum(
            row[:, :width] + substitution, row[:, 1:] + 1
        )
        row[:, :width] = np.minimum.accumulate(
            candidates - offsets, axis=1
        ) + offsets
        if i <= band:
            # Cells left of query column 0 exist only as padding; force
            # them back to +inf so nothing leaks in from outside.
            row[:, : band - i] = huge
        finished = tlen[active] == i
        if finished.any():
            done = active[finished]
            d = qlen[done] - i + band  # |qlen - tlen| <= band keeps d valid
            results[done] = np.minimum(row[finished, d], big)
        # Early bail-out: a pair whose whole band row exceeds the band
        # can never come back under it (row minima are non-decreasing).
        keep = ~finished & (row[:, :width].min(axis=1) <= band)
        if not keep.all():
            active, row = active[keep], row[keep]
            padded, t_active = padded[keep], t_active[keep]
    return results
