"""Levenshtein (edit) distance — full and banded variants.

Edit distance is the similarity metric of DNA storage clustering (the
minimum number of insertions, deletions and substitutions converting one
string into the other). The full DP is O(n*m); the banded variant bounds
the alignment to a diagonal band of half-width ``band`` and is what the
greedy clusterer uses, since reads of the same cluster differ by a small
number of edits.
"""

from __future__ import annotations

import numpy as np

from repro.codec.basemap import bases_to_indices


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance between two DNA strings."""
    return edit_distance_indices(
        bases_to_indices(a) if a else np.zeros(0, dtype=np.uint8),
        bases_to_indices(b) if b else np.zeros(0, dtype=np.uint8),
    )


def edit_distance_indices(a: np.ndarray, b: np.ndarray) -> int:
    """Exact Levenshtein distance between two symbol-index arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0:
        return int(b.size)
    if b.size == 0:
        return int(a.size)
    if a.size < b.size:
        a, b = b, a  # keep the inner (vectorized) dimension the larger one
    m = b.size
    offsets = np.arange(m + 1, dtype=np.int64)
    row = offsets.copy()
    for symbol in a:
        candidates = np.empty(m + 1, dtype=np.int64)
        candidates[0] = row[0] + 1
        substitution = (b != symbol).astype(np.int64)
        candidates[1:] = np.minimum(row[:-1] + substitution, row[1:] + 1)
        row = np.minimum.accumulate(candidates - offsets) + offsets
    return int(row[-1])


def banded_edit_distance(a: str, b: str, band: int) -> int:
    """Edit distance restricted to a diagonal band of half-width ``band``.

    Returns the exact distance when it is at most ``band``; otherwise
    returns a value strictly greater than ``band`` (a certificate that the
    strings are farther apart than the band, not the true distance). The
    length difference alone decides when it already exceeds the band.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    n, m = len(a), len(b)
    if abs(n - m) > band:
        return abs(n - m)
    if n == 0 or m == 0:
        return max(n, m)
    a_idx = bases_to_indices(a)
    b_idx = bases_to_indices(b)
    big = band + 1
    # row[j] for j in [max(0, i-band), min(m, i+band)] kept in a dense array.
    previous = np.full(m + 1, big, dtype=np.int64)
    upper = min(m, band)
    previous[: upper + 1] = np.arange(upper + 1)
    for i in range(1, n + 1):
        current = np.full(m + 1, big, dtype=np.int64)
        low = max(1, i - band)
        high = min(m, i + band)
        if i <= band:
            current[0] = i
        segment = np.minimum(
            previous[low - 1: high] + (b_idx[low - 1: high] != a_idx[i - 1]),
            previous[low: high + 1] + 1,
        )
        # Horizontal pass within the band (sequential, but the band is short).
        running = current[low - 1]
        for j, value in zip(range(low, high + 1), segment):
            running = min(value, running + 1)
            current[j] = running
        previous = current
        if previous[max(0, i - band): min(m, i + band) + 1].min() > band:
            return big  # the whole band exceeded the threshold; bail out
    return int(min(previous[m], big))
