"""Sub-linear LSH-banded clustering with exact edit-distance verification.

:class:`~repro.cluster.batched.BatchedGreedyClusterer` is
assignment-identical to the sequential greedy scan, but its candidate
set is O(pool × clusters) whenever the length-gap/L1 prefilters cannot
prune — the wall between unlabeled-pool decode and million-read pools.
The clusterer here makes candidate generation sub-linear with the
standard minhash-banding recipe, while keeping the *output* exact in the
sense that matters: every pair that ends up in one cluster was verified
by the exact banded edit-distance kernel.

1. **Signatures.** Each read's q-gram *set* comes from the one-pass
   sparse COO kernel (:func:`~repro.cluster.signatures
   .batch_signatures_sparse`), so the 4**q code space is never
   materialized.
2. **Banding.** Every minhash row owns a fixed RNG substream
   (``SeedSequence(seed, spawn_key=(row,))``) that draws an odd
   multiplier for multiply-shift hashing; a band's key is the mix of its
   ``rows_per_band`` minhash values. Two reads land in the same bin of a
   band with probability ≈ their q-gram Jaccard similarity to the
   ``rows_per_band``-th power — high for noisy copies of one strand,
   vanishing for reads of different strands. Single-row *rescue bands*
   run after the paired bands to also catch very dissimilar true pairs
   (heavy error rates, coverage-2 pools).
3. **Candidates from collisions only.** Within a bin, each current
   component is collapsed to one *delegate* (its lowest content
   fingerprint — merging components needs one edge, so more members
   per component is pure waste). Delegates are then sorted inside
   their bin by three *other* minhash rows (ties by fingerprint) and
   only *adjacent* same-bin pairs become candidates — linear in bin
   size by construction, never quadratic. Same-strand delegates agree
   on most sketch rows, so the sort pulls them into adjacent runs and
   the chain of verified adjacent edges unions each run transitively.
   Everything keys off content, never row indices, so the edge set is
   invariant under read-order shuffles.
4. **Exact verification.** A candidate pair must survive two
   exact-safe screens — length gap within the threshold, and agreement
   on ``min_sketch_matches`` of the minhash rows the banding already
   computed (a free unbiased Jaccard estimate) — then runs through
   :func:`~repro.cluster.distance.banded_edit_distances_stack`; only
   pairs at exact edit distance ≤ ``threshold`` are united. Pairs that
   fail the DP are memoized and never verified again.
5. **Vectorized union-find.** Components resolve by min-label hooking
   (``np.minimum.at``) plus pointer jumping — no Python loop over edges.

The output is a partition, not the greedy scan's first-match
assignment, so the differential anchor stays
:class:`BatchedGreedyClusterer`; LSH correctness is pinned by recovery
quality (``tests/cluster/test_recovery.py``: pair precision 1.0 by
construction, recall bounds across channels) and by end-to-end
unlabeled decode staying byte-identical to labeled decode.

Instrumentation (under the same ``cluster.batch``/``cluster.pools``
spans the greedy path uses): ``cluster.lsh.bins`` occupied bins across
bands, ``cluster.lsh.candidate_pairs`` collision edges generated,
``cluster.lsh.verified_pairs`` edges that actually reached the DP.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.cluster.batched import padded_int16_matrix, relabel_batch
from repro.cluster.distance import banded_edit_distances_stack
from repro.cluster.signatures import batch_signatures_sparse
from repro.observability.trace import get_tracer

_FNV_PRIME = np.uint64(1099511628211)
_FNV_OFFSET = np.uint64(14695981039346656037)
#: Minhash of a read with no q-grams (shorter than ``q``): all such
#: reads share one sentinel bin per band and go straight to exact
#: verification.
_EMPTY_MINHASH = np.uint64(0xFFFFFFFFFFFFFFFF)


def _content_fingerprints(matrix: np.ndarray,
                          lengths: np.ndarray) -> np.ndarray:
    """A 64-bit content hash per read row, independent of row order.

    FNV-style polynomial over the padded columns (sentinel -1 shifted
    into range) seeded with the read length. Used only to pick each
    bin's representative deterministically by *content*, which makes the
    whole candidate edge set — and therefore the final partition —
    invariant under read-order shuffles.
    """
    fp = np.full(lengths.size, _FNV_OFFSET, dtype=np.uint64)
    fp = fp * _FNV_PRIME + lengths.astype(np.uint64)
    for j in range(matrix.shape[1]):
        column = (matrix[:, j].astype(np.int64) + 2).astype(np.uint64)
        fp = fp * _FNV_PRIME + column
    return fp


def _union_components(labels: np.ndarray, u: np.ndarray,
                      v: np.ndarray) -> np.ndarray:
    """Merge the components containing ``u[i]`` and ``v[i]`` for every i.

    ``labels`` maps each element to the minimum element index of its
    component and must be flat on entry (``labels[labels] == labels``);
    the return value is flat again. Min-label hooking over the edge
    endpoints plus pointer jumping — converges in O(log n) rounds, all
    array ops.
    """
    while True:
        lu, lv = labels[u], labels[v]
        if np.array_equal(lu, lv):
            return labels
        merged = np.minimum(lu, lv)
        np.minimum.at(labels, lu, merged)
        np.minimum.at(labels, lv, merged)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped


class LSHClusterer:
    """Minhash-banded clustering over a :class:`ReadBatch`.

    Drop-in for :class:`~repro.cluster.batched.BatchedGreedyClusterer`
    everywhere a ``clusterer=`` is accepted (``ReadRequest``,
    ``StoreService.put``, ``decode_pool``): same
    ``assign``/``cluster_batch``/``cluster_pools`` surface, same
    relabeled-spanning-batch outputs. Candidate pairs come from LSH bin
    collisions instead of pool × representative scans, so work grows
    near-linearly with pool size; every pair placed in one cluster was
    verified at exact edit distance ≤ ``threshold``.

    Args:
        threshold: maximum exact edit distance for two reads to share a
            cluster (same meaning as the greedy clusterer's).
        q: q-gram length for the minhash signatures. Larger q separates
            foreign strands into different bins (less wasted
            verification) but lowers same-strand collision rates.
        n_bands: number of independent hash bands. More bands raise
            recall (a pair needs to collide in just one) at linearly
            more hashing work.
        rows_per_band: minhash rows combined into one band key.
            ``2`` suppresses the giant common-q-gram bins that
            single-row banding produces on skewed pools.
        n_rescue_bands: single-row bands run *after* the paired bands.
            A pair of very noisy reads (or a coverage-2 pool with no
            transitivity to lean on) can have too little q-gram overlap
            to ever agree on two rows at once; colliding on one row is
            an order of magnitude likelier. Running these last keeps
            them affordable: by then most of the pool is merged and
            each band compares only one delegate per (bin, component).
        min_sketch_matches: before paying for the DP, a candidate pair
            must agree on at least this many of the total minhash rows
            (an unbiased Jaccard estimate the banding already
            computed). Noisy copies of one strand agree on dozens of
            rows; reads of different strands on ~zero — this is what
            keeps exact verification from going quadratic on large
            pools. ``0`` disables the filter (every collision is
            DP-verified).
        seed: root of the fixed per-band RNG substreams. Same pool +
            same seed ⇒ identical assignments, run to run.
    """

    def __init__(self, threshold: int, q: int = 8, n_bands: int = 48,
                 rows_per_band: int = 2, n_rescue_bands: int = 16,
                 min_sketch_matches: int = 4, seed: int = 2022) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        if n_bands <= 0:
            raise ValueError(f"n_bands must be positive, got {n_bands}")
        if rows_per_band <= 0:
            raise ValueError(
                f"rows_per_band must be positive, got {rows_per_band}")
        if n_rescue_bands < 0:
            raise ValueError(
                f"n_rescue_bands must be non-negative, got {n_rescue_bands}")
        n_rows = n_bands * rows_per_band + n_rescue_bands
        if not 0 <= min_sketch_matches <= n_rows:
            raise ValueError(
                f"min_sketch_matches must lie in [0, {n_rows}], "
                f"got {min_sketch_matches}")
        self.threshold = threshold
        self.q = q
        self.n_bands = n_bands
        self.rows_per_band = rows_per_band
        self.n_rescue_bands = n_rescue_bands
        self.min_sketch_matches = min_sketch_matches
        self.seed = seed

    @classmethod
    def for_strand_length(cls, length: int, **kwargs) -> "LSHClusterer":
        """A clusterer with the default threshold for designed strands of
        ``length`` bases — the same quarter-strand rule
        :meth:`BatchedGreedyClusterer.for_strand_length` uses, so the two
        paths accept exactly the same pairs."""
        return cls(threshold=max(2, length // 4), **kwargs)

    # -- banding -------------------------------------------------------------

    def _minhash_rows(self, batch: ReadBatch) -> np.ndarray:
        """``(n_bands * rows_per_band, n_reads)`` minhash matrix.

        Row ``r`` multiply-shift-hashes every read's distinct q-gram
        codes with an odd multiplier drawn from the fixed substream
        ``SeedSequence(seed, spawn_key=(r,))`` and takes the per-read
        minimum (one segmented ``minimum.reduceat`` over the sorted COO
        triples). Depends only on read *content*, never on row order or
        pool structure, so it is computed once per batch.
        """
        read_ids, codes, _ = batch_signatures_sparse(batch, self.q)
        n_reads = batch.n_reads
        bounds = np.searchsorted(read_ids, np.arange(n_reads + 1))
        nonempty = bounds[1:] > bounds[:-1]
        seg_starts = bounds[:-1][nonempty]
        shifted = codes.astype(np.uint64) + np.uint64(1)
        n_rows = self.n_bands * self.rows_per_band + self.n_rescue_bands
        mins = np.full((n_rows, n_reads), _EMPTY_MINHASH, dtype=np.uint64)
        for row in range(n_rows):
            substream = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(row,)
            )
            rng = np.random.default_rng(substream)
            multiplier = np.uint64(
                int(rng.integers(0, 2 ** 62, dtype=np.uint64)) * 2 + 1
            )
            if seg_starts.size:
                hashed = shifted * multiplier
                mins[row, nonempty] = np.minimum.reduceat(hashed, seg_starts)
        return mins

    def _band_keys(self, mins: np.ndarray) -> np.ndarray:
        """One key row per band: paired bands first, rescue bands after.

        Band ``b < n_bands`` mixes minhash rows ``[b * rows_per_band,
        (b + 1) * rows_per_band)``; rescue band ``i`` is minhash row
        ``n_bands * rows_per_band + i`` alone (re-mixed so a rescue key
        never collides with a paired key by construction).
        """
        r = self.rows_per_band
        n_total = self.n_bands + self.n_rescue_bands
        keys = np.empty((n_total, mins.shape[1]), dtype=np.uint64)
        for band in range(self.n_bands):
            mixed = np.full(mins.shape[1], _FNV_OFFSET, dtype=np.uint64)
            for j in range(r):
                mixed = mixed * _FNV_PRIME + mins[band * r + j]
            keys[band] = mixed
        for i in range(self.n_rescue_bands):
            keys[self.n_bands + i] = (
                mins[self.n_bands * r + i] * _FNV_PRIME + np.uint64(i)
            )
        return keys

    # -- assignment ----------------------------------------------------------

    def assign(self, batch: ReadBatch) -> Tuple[np.ndarray, int]:
        """Cluster id of every read of ``batch``, treated as one pool.

        The batch's own cluster structure is ignored. Returns
        ``(assignment, n_clusters)``; ids are in order of each
        component's first read, so a pool that happens to arrive sorted
        by true cluster gets the familiar 0,0,..,1,1,.. shape.
        """
        matrix, lengths = padded_int16_matrix(batch)
        mins = self._minhash_rows(batch)
        band_keys = self._band_keys(mins)
        fingerprints = _content_fingerprints(matrix, lengths)
        return self._assign_rows(0, batch.n_reads, matrix, lengths,
                                 band_keys, mins, fingerprints)

    def _assign_rows(
        self,
        start: int,
        stop: int,
        matrix: np.ndarray,
        lengths: np.ndarray,
        band_keys: np.ndarray,
        mins: np.ndarray,
        fingerprints: np.ndarray,
    ) -> Tuple[np.ndarray, int]:
        """Cluster the read rows ``[start, stop)`` as one pool.

        Band by band: bin the rows by band key, collapse each
        (bin, component) to its lowest-fingerprint delegate, chain the
        delegates by sketch-row sort order and emit the adjacent
        same-bin pairs as candidates, screen them (length gap, sketch
        agreement, failed-pair memo — all exact-safe), verify the rest
        with the banded DP stack, and union the pairs at distance ≤
        threshold. Returns ``(assignment, n_clusters)``.
        """
        n = stop - start
        if n == 0:
            return np.zeros(0, dtype=np.int64), 0
        threshold = self.threshold
        fp = fingerprints[start:stop]
        lens = lengths[start:stop]
        labels = np.arange(n, dtype=np.int64)
        n_rows = mins.shape[0]
        n_bins = n_candidates = n_verified = 0
        # Pairs that reached the DP once and failed never pay for it
        # again: without the memo, a pair of sketch-similar but distant
        # reads re-verifies in every band whose bins chain them
        # adjacently. A plain set beats an array membership test here —
        # ``np.isin`` re-hashes the whole memo on every call.
        failed_pairs: set = set()
        n_u64 = np.uint64(n)
        for band in range(self.n_bands + self.n_rescue_bands):
            # Bin by band key; within a bin, collapse each current
            # component to one *delegate* (its lowest-fingerprint
            # member) — merging components only needs one edge, so
            # comparing more than one member per component is pure
            # waste, and the collapse is what keeps late (and rescue)
            # bands near-free once most of the pool has merged.
            keys = band_keys[band, start:stop]
            order = np.lexsort((fp, labels, keys))
            sorted_keys = keys[order]
            new_bin = np.empty(n, dtype=bool)
            new_bin[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_bin[1:])
            n_bins += int(np.count_nonzero(new_bin))
            sorted_labels = labels[order]
            new_group = new_bin.copy()
            new_group[1:] |= sorted_labels[1:] != sorted_labels[:-1]
            delegate_pos = np.flatnonzero(new_group)
            delegate_read = order[delegate_pos]
            if delegate_read.size < 2:
                continue
            # Candidate edges are *adjacent* delegate pairs after an
            # in-bin sort by other minhash rows — linear in bin size by
            # construction, never quadratic. Same-strand delegates
            # agree on most sketch rows, so the sort pulls them into
            # adjacent runs and the chain of verified adjacent edges
            # unions the whole run transitively; foreign neighbours
            # fail the sketch screen or the DP. (A bin of all reads
            # sharing one *popular* q-gram — every rescue band has
            # them, and they grow linearly with the pool — would cost
            # a quadratic number of representative comparisons
            # otherwise.) All sort keys are content-derived, so the
            # edge set stays invariant under read-order shuffles.
            delegate_key = sorted_keys[delegate_pos]
            s1 = mins[(2 * band + 1) % n_rows, start + delegate_read]
            s2 = mins[(2 * band + 7) % n_rows, start + delegate_read]
            s3 = mins[(2 * band + 13) % n_rows, start + delegate_read]
            chain = np.lexsort((fp[delegate_read], s3, s2, s1, delegate_key))
            chained = delegate_read[chain]
            chained_key = delegate_key[chain]
            same_bin = chained_key[1:] == chained_key[:-1]
            u = chained[:-1][same_bin]
            v = chained[1:][same_bin]
            n_candidates += u.size
            # Exact-safe screens before the DP. Adjacent delegates are
            # distinct components by construction, so no connectivity
            # check is needed — straight to the length gap, then the
            # sketch: reads of different strands agree on ~zero minhash
            # rows, noisy copies of one strand on dozens (a free
            # unbiased Jaccard estimate the banding already computed).
            close = np.abs(lens[u] - lens[v]) <= threshold
            u, v = u[close], v[close]
            if u.size and self.min_sketch_matches:
                agreeing = np.count_nonzero(
                    mins[:, start + u] == mins[:, start + v], axis=0
                )
                similar = agreeing >= self.min_sketch_matches
                u, v = u[similar], v[similar]
            if u.size == 0:
                continue
            pair_keys = (
                np.minimum(u, v).astype(np.uint64) * n_u64
                + np.maximum(u, v).astype(np.uint64)
            )
            if failed_pairs:
                fresh = np.fromiter(
                    (key not in failed_pairs
                     for key in pair_keys.tolist()),
                    dtype=bool, count=pair_keys.size,
                )
                u, v = u[fresh], v[fresh]
                pair_keys = pair_keys[fresh]
            if u.size == 0:
                continue
            n_verified += u.size
            distances = banded_edit_distances_stack(
                matrix[start + v], lens[v],
                matrix[start + u], lens[u],
                band=threshold,
            )
            within = distances <= threshold
            if not within.all():
                failed_pairs.update(pair_keys[~within].tolist())
            if within.any():
                labels = _union_components(labels, u[within], v[within])
        components, assignment = np.unique(labels, return_inverse=True)
        tracer = get_tracer()
        if tracer.is_recording:
            metrics = tracer.metrics
            metrics.counter("cluster.reads_in").add(n)
            metrics.counter("cluster.lsh.bins").add(n_bins)
            metrics.counter("cluster.lsh.candidate_pairs").add(n_candidates)
            metrics.counter("cluster.lsh.verified_pairs").add(n_verified)
        return assignment.astype(np.int64), int(components.size)

    # -- batch entry points --------------------------------------------------

    def cluster_batch(self, batch: ReadBatch) -> ReadBatch:
        """Cluster every read of ``batch`` as one unlabeled pool.

        Returns a re-labeled batch sharing the input buffer zero-copy —
        the same contract as
        :meth:`BatchedGreedyClusterer.cluster_batch`, consumable
        unchanged by ``pipeline.receive`` / ``DnaStore.read``.
        """
        with get_tracer().span(
            "cluster.batch", n_reads=batch.n_reads
        ) as span:
            assignment, n_clusters = self.assign(batch)
            span.set(n_clusters=n_clusters)
            return relabel_batch(batch, assignment, n_clusters)

    def cluster_pools(
        self,
        batch: ReadBatch,
        pool_boundaries: Optional[np.ndarray] = None,
    ) -> Tuple[ReadBatch, np.ndarray]:
        """Cluster each pool of ``batch`` independently.

        Same contract as
        :meth:`BatchedGreedyClusterer.cluster_pools`: pools are the
        batch's clusters (or groups of them via ``pool_boundaries``),
        reads never cluster across pool borders, and the result is the
        ``(labeled, boundaries)`` pair ``receive_many`` consumes. The
        minhash matrix and fingerprints are computed once for the whole
        batch (they depend only on read content); each pool then bins
        and verifies only its own rows.
        """
        if pool_boundaries is None:
            pool_boundaries = np.arange(batch.n_clusters + 1, dtype=np.int64)
        tracer = get_tracer()
        with tracer.span(
            "cluster.pools", n_reads=batch.n_reads,
            n_pools=pool_boundaries.size - 1,
        ) as span:
            row_bounds = batch.group_rows(pool_boundaries)
            matrix, lengths = padded_int16_matrix(batch)
            mins = self._minhash_rows(batch)
            band_keys = self._band_keys(mins)
            fingerprints = _content_fingerprints(matrix, lengths)
            n_pools = row_bounds.size - 1
            assignment = np.full(batch.n_reads, -1, dtype=np.int64)
            source_parts = []
            counts = np.zeros(n_pools, dtype=np.int64)
            offset = 0
            for p in range(n_pools):
                pool_start = int(row_bounds[p])
                pool_stop = int(row_bounds[p + 1])
                local, k = self._assign_rows(pool_start, pool_stop, matrix,
                                             lengths, band_keys, mins,
                                             fingerprints)
                assignment[pool_start:pool_stop] = local + offset
                source_parts.append(np.arange(k, dtype=np.int64))
                counts[p] = k
                offset += k
            boundaries = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
            source_indices = (np.concatenate(source_parts) if source_parts
                              else np.zeros(0, dtype=np.int64))
            span.set(n_clusters=int(offset))
            if tracer.is_recording:
                tracer.metrics.counter("cluster.recovered_clusters").add(
                    int(offset)
                )
            labeled = relabel_batch(batch, assignment, int(offset),
                                    source_indices=source_indices)
        return labeled, boundaries
