"""Clustering quality against ground truth: pairwise precision/recall.

The standard external measures for read clustering (e.g. Rashtchian et
al.): treat every pair of reads as a binary decision. A pair the
clusterer puts together is a true positive when the reads really share a
source strand; *precision* is then the purity of the recovered clusters
(merges hurt it) and *recall* their completeness (splits hurt it). Both
are computed from the truth-vs-predicted contingency table via one
``bincount`` — no pair enumeration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pair_precision_recall(
    truth: np.ndarray, predicted: np.ndarray
) -> Tuple[float, float]:
    """Pairwise precision and recall of a clustering vs ground truth.

    Args:
        truth: per-read ground-truth cluster label (any integers).
        predicted: per-read recovered cluster label, aligned with
            ``truth``.

    Returns:
        ``(precision, recall)`` over unordered read pairs; degenerate
        denominators (no co-clustered pair exists) count as 1.0.
    """
    truth = np.asarray(truth, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if truth.shape != predicted.shape or truth.ndim != 1:
        raise ValueError("truth and predicted must be aligned 1-D arrays")

    def pairs(counts: np.ndarray) -> int:
        return int((counts * (counts - 1) // 2).sum())

    _, t_ids = np.unique(truth, return_inverse=True)
    _, p_ids = np.unique(predicted, return_inverse=True)
    n_p = int(p_ids.max()) + 1 if p_ids.size else 0
    together = pairs(np.bincount(
        t_ids * n_p + p_ids, minlength=(int(t_ids.max()) + 1) * n_p
    )) if truth.size else 0
    predicted_pairs = pairs(np.bincount(p_ids)) if truth.size else 0
    truth_pairs = pairs(np.bincount(t_ids)) if truth.size else 0
    precision = together / predicted_pairs if predicted_pairs else 1.0
    recall = together / truth_pairs if truth_pairs else 1.0
    return precision, recall
