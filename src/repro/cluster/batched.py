"""Greedy clustering on the columnar read plane, batched per cluster.

The string-plane :class:`~repro.cluster.greedy.GreedyClusterer` scans
representatives one Python iteration at a time for every read. The
clusterer here produces the *exact same assignments* straight off a
:class:`~repro.channel.readbatch.ReadBatch` buffer, restructured around
one round per **cluster** instead of one step per read:

1. the lowest-indexed unassigned read founds the next cluster (it is, by
   induction, exactly the read that would found it in the sequential
   scan: every read before it has already been assigned or has founded
   an earlier cluster);
2. every remaining unassigned read is screened against that one new
   representative — the length-gap and q-gram L1 prefilters as whole-pool
   array ops over signatures precomputed in a single pass
   (:func:`~repro.cluster.signatures.batch_signatures`), then one
   stacked banded edit-distance sweep
   (:func:`~repro.cluster.distance.banded_edit_distances_stack`) that
   advances every surviving candidate's DP in lockstep with early
   bail-out;
3. matching reads join the new cluster and drop out of the active set.

A read assigned in round ``r`` matched representative ``r`` and, having
survived rounds ``0..r-1``, matched none before it — the sequential
first-match rule. Founders strictly increase in read order, so every
comparison a round makes is one the sequential scan would also have made.
The equivalence is pinned by the differential suite
(``tests/cluster/test_batched.py``) against the frozen
:class:`~repro.cluster.reference.ReferenceGreedyClusterer`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.channel.readbatch import ReadBatch
from repro.cluster.distance import banded_edit_distances_stack
from repro.cluster.signatures import batch_signatures, l1_distances
from repro.observability.trace import get_tracer


def padded_int16_matrix(batch: ReadBatch) -> Tuple[np.ndarray, np.ndarray]:
    """The batch's padded read matrix, narrowed for the DP sweeps.

    Base indices and the -1 sentinel fit comfortably in int16; the
    stacked kernel's row arithmetic runs in int32 regardless. Shared by
    every columnar clusterer (batched greedy and LSH).
    """
    matrix, lengths = batch.padded_matrix()
    return matrix.astype(np.int16), lengths


def relabel_batch(
    batch: ReadBatch,
    assignment: np.ndarray,
    n_clusters: int,
    source_indices: Optional[np.ndarray] = None,
) -> ReadBatch:
    """Regroup the batch's read rows by assigned cluster (zero-copy).

    Cluster ``c`` holds the reads ``assignment`` put there, reads keeping
    their input order within each cluster (stable sort)."""
    order = np.argsort(assignment, kind="stable")
    return ReadBatch(
        batch.buffer,
        batch.offsets[order],
        batch.lengths[order],
        assignment[order],
        n_clusters=n_clusters,
        source_indices=source_indices,
    )


class BatchedGreedyClusterer:
    """Greedy edit-distance clustering over a :class:`ReadBatch`.

    Assignment-identical to :class:`~repro.cluster.greedy.GreedyClusterer`
    (and the frozen reference) at any ``threshold``/``qgram_size``; the
    work is vectorized across the whole pool.

    Args:
        threshold: maximum edit distance to a cluster representative.
        qgram_size: q-gram length for the L1 prefilter (0 disables it).
    """

    def __init__(self, threshold: int, qgram_size: int = 3) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if qgram_size < 0:
            raise ValueError(f"qgram_size must be non-negative, got {qgram_size}")
        self.threshold = threshold
        self.qgram_size = qgram_size

    @classmethod
    def for_strand_length(cls, length: int,
                          qgram_size: int = 3) -> "BatchedGreedyClusterer":
        """A clusterer with the default threshold for designed strands of
        ``length`` bases: a quarter of the strand — comfortably above the
        edit distance between noisy reads of one strand at the error
        rates this repository simulates, and far below the distance
        between reads of different (near-random) strands."""
        return cls(threshold=max(2, length // 4), qgram_size=qgram_size)

    # -- assignment ----------------------------------------------------------

    def assign(self, batch: ReadBatch) -> Tuple[np.ndarray, int]:
        """Greedy cluster id of every read of ``batch``, in read order.

        The batch's own cluster structure is ignored — all reads form one
        unlabeled pool, processed in row order. Returns ``(assignment,
        n_clusters)`` where ``assignment[i]`` is the id (creation order)
        of the cluster read ``i`` joins.
        """
        matrix, lengths = self._padded_int16(batch)
        signatures = (batch_signatures(batch, self.qgram_size)
                      if self.qgram_size else None)
        return self._assign_rows(0, batch.n_reads, matrix, lengths, signatures)

    def _assign_rows(
        self,
        start: int,
        stop: int,
        matrix: np.ndarray,
        lengths: np.ndarray,
        signatures: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """One greedy pass over the read rows ``[start, stop)``, in order.

        Returns ``(assignment, n_clusters)`` with ``assignment[i]`` the
        cluster of row ``start + i``.
        """
        threshold = self.threshold
        assignment = np.full(stop - start, -1, dtype=np.int64)
        active = np.arange(start, stop, dtype=np.int64)
        n_clusters = 0
        # Round-loop counters accumulate in local ints (one add per
        # *founder round*, never per read) and emit once per call.
        screened = pruned = dp_rows = 0
        while active.size:
            founder = int(active[0])
            cluster_id = n_clusters
            n_clusters += 1
            assignment[founder - start] = cluster_id
            rest = active[1:]
            if rest.size == 0:
                break
            # Exact-safe prefilters, one array op each over the pool: the
            # length gap lower-bounds the distance, and so does L1/(2q)
            # over the precomputed signatures.
            candidate_mask = \
                np.abs(lengths[rest] - lengths[founder]) <= threshold
            if signatures is not None:
                l1 = l1_distances(signatures[rest], signatures[founder])
                candidate_mask &= l1 <= 2 * self.qgram_size * threshold
            candidates = rest[candidate_mask]
            screened += rest.size
            pruned += rest.size - candidates.size
            dp_rows += candidates.size
            matched = np.zeros(rest.size, dtype=bool)
            if candidates.size:
                distances = banded_edit_distances_stack(
                    matrix[candidates], lengths[candidates],
                    np.broadcast_to(matrix[founder],
                                    (candidates.size, matrix.shape[1])),
                    np.full(candidates.size, lengths[founder],
                            dtype=np.int64),
                    band=threshold,
                )
                within = distances <= threshold
                assignment[candidates[within] - start] = cluster_id
                matched[candidate_mask] = within
            active = rest[~matched]
        tracer = get_tracer()
        if tracer.is_recording:
            metrics = tracer.metrics
            metrics.counter("cluster.reads_in").add(stop - start)
            metrics.counter("cluster.founder_rounds").add(n_clusters)
            metrics.counter("cluster.pairs_screened").add(screened)
            metrics.counter("cluster.prefilter_pruned").add(pruned)
            metrics.counter("cluster.dp_comparisons").add(dp_rows)
        return assignment, n_clusters

    # -- batch entry points --------------------------------------------------

    def cluster_batch(self, batch: ReadBatch) -> ReadBatch:
        """Cluster every read of ``batch`` as one unlabeled pool.

        Returns a re-labeled batch sharing the input buffer zero-copy:
        cluster ``c`` holds the reads greedy assignment put there (reads
        keep their pool order within each cluster), and
        ``source_indices`` is the creation order — there is no ground
        truth, exactly like ``GreedyClusterer.cluster``. The result is a
        spanning batch any consumer of labeled reads
        (``pipeline.receive``, ``DnaStore.decode`` via
        :meth:`~repro.core.store.DnaStore.decode_pool`) takes unchanged.
        """
        with get_tracer().span(
            "cluster.batch", n_reads=batch.n_reads
        ) as span:
            assignment, n_clusters = self.assign(batch)
            span.set(n_clusters=n_clusters)
            return self._relabel(batch, assignment, n_clusters)

    def cluster_pools(
        self,
        batch: ReadBatch,
        pool_boundaries: Optional[np.ndarray] = None,
    ) -> Tuple[ReadBatch, np.ndarray]:
        """Cluster each pool of ``batch`` independently.

        Pools are the batch's clusters (what ``SequencingSimulator.
        sequence_store(..., labeled=False)`` emits: one shuffled
        amplification pool per encoding unit); ``pool_boundaries`` — a
        cluster-granular table like ``receive_many``'s unit boundaries —
        groups several input clusters into one pool instead. Reads never
        cluster across pool borders (units are separately amplifiable,
        so pool membership is physical).

        Returns ``(labeled, boundaries)``: one spanning re-labeled batch
        with every pool's recovered clusters back to back, and the
        recovered-cluster boundary table (pool ``p`` owns cluster slots
        ``boundaries[p] .. boundaries[p + 1]``) — exactly the pair
        :meth:`~repro.core.pipeline.DnaStoragePipeline.receive_many`
        consumes.
        """
        if pool_boundaries is None:
            pool_boundaries = np.arange(batch.n_clusters + 1, dtype=np.int64)
        tracer = get_tracer()
        with tracer.span(
            "cluster.pools", n_reads=batch.n_reads,
            n_pools=pool_boundaries.size - 1,
        ) as span:
            row_bounds = batch.group_rows(pool_boundaries)
            matrix, lengths = self._padded_int16(batch)
            signatures = (batch_signatures(batch, self.qgram_size)
                          if self.qgram_size else None)
            n_pools = row_bounds.size - 1
            assignment = np.full(batch.n_reads, -1, dtype=np.int64)
            source_parts = []
            counts = np.zeros(n_pools, dtype=np.int64)
            offset = 0
            for p in range(n_pools):
                start, stop = int(row_bounds[p]), int(row_bounds[p + 1])
                local, k = self._assign_rows(start, stop, matrix, lengths,
                                             signatures)
                assignment[start:stop] = local + offset
                source_parts.append(np.arange(k, dtype=np.int64))
                counts[p] = k
                offset += k
            boundaries = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
            source_indices = (np.concatenate(source_parts) if source_parts
                              else np.zeros(0, dtype=np.int64))
            span.set(n_clusters=int(offset))
            if tracer.is_recording:
                tracer.metrics.counter("cluster.recovered_clusters").add(
                    int(offset)
                )
            labeled = self._relabel(batch, assignment, int(offset),
                                    source_indices=source_indices)
        return labeled, boundaries

    # Shared columnar helpers, kept as aliases for existing call sites.
    _padded_int16 = staticmethod(padded_int16_matrix)
    _relabel = staticmethod(relabel_batch)
