"""Frozen string-plane greedy clustering (the differential reference).

This is the original per-read, per-character implementation of
:class:`~repro.cluster.greedy.GreedyClusterer`, kept verbatim — like the
per-cluster reconstructors in :mod:`repro.consensus.reference` and the
per-unit store loop ``DnaStore.decode_units`` — as the baseline the
columnar clustering subsystem is pinned against:

* :func:`_qgram_signature` is the per-character rolling-code loop the
  vectorized kernel (:mod:`repro.cluster.signatures`) must reproduce bit
  for bit;
* :class:`ReferenceGreedyClusterer` is the sequential first-match greedy
  scan whose cluster assignments
  :class:`~repro.cluster.batched.BatchedGreedyClusterer` must reproduce
  exactly (``tests/cluster/test_batched.py``).

Do not optimize this module; it exists to stay slow and obviously
correct.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.sequencer import ReadCluster
from repro.cluster.distance import banded_edit_distance


def _qgram_signature(read: str, q: int = 3) -> np.ndarray:
    """Histogram of q-gram codes; L1 distance lower-bounds edit moves."""
    if len(read) < q:
        return np.zeros(4**q, dtype=np.int32)
    codes = np.zeros(4**q, dtype=np.int32)
    value = 0
    mapping = {"A": 0, "C": 1, "G": 2, "T": 3}
    mask = 4 ** (q - 1)
    for i, char in enumerate(read):
        value = (value % mask) * 4 + mapping[char]
        if i >= q - 1:
            codes[value] += 1
    return codes


class ReferenceGreedyClusterer:
    """Single-pass greedy clustering by banded edit distance (frozen).

    Args:
        threshold: maximum edit distance to a cluster representative.
        qgram_size: q-gram length for the prefilter (0 disables it).
    """

    def __init__(self, threshold: int, qgram_size: int = 3) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if qgram_size < 0:
            raise ValueError(f"qgram_size must be non-negative, got {qgram_size}")
        self.threshold = threshold
        self.qgram_size = qgram_size

    def cluster(self, reads: Sequence[str]) -> List[ReadCluster]:
        """Group reads into clusters; cluster ids are assigned in order.

        The returned clusters carry ``source_index`` equal to their creation
        order (there is no ground truth here).
        """
        representatives: List[str] = []
        signatures: List[Optional[np.ndarray]] = []
        members: List[List[str]] = []
        for read in reads:
            assigned = self._find_cluster(read, representatives, signatures)
            if assigned is None:
                representatives.append(read)
                signatures.append(
                    _qgram_signature(read, self.qgram_size)
                    if self.qgram_size else None
                )
                members.append([read])
            else:
                members[assigned].append(read)
        return [
            ReadCluster(source_index=index, reads=cluster_reads)
            for index, cluster_reads in enumerate(members)
        ]

    def _find_cluster(
        self,
        read: str,
        representatives: List[str],
        signatures: List[Optional[np.ndarray]],
    ) -> Optional[int]:
        signature = (
            _qgram_signature(read, self.qgram_size) if self.qgram_size else None
        )
        for index, representative in enumerate(representatives):
            if signature is not None and signatures[index] is not None:
                # Each edit changes at most 2*q q-gram counts (q new grams
                # appear / q disappear), so L1/(2q) lower-bounds the distance.
                l1 = int(np.abs(signature - signatures[index]).sum())
                if l1 > 2 * self.qgram_size * self.threshold:
                    continue
            distance = banded_edit_distance(read, representative, self.threshold)
            if distance <= self.threshold:
                return index
        return None
