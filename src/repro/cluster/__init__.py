"""Read clustering: edit distance and cluster assignment.

After sequencing, reads must be grouped so that all noisy copies of one
original strand land in one cluster (the paper's Section 2.1, following
Rashtchian et al.). The simulation methodology (Section 6.1.2) uses
*perfect* clustering — each read is tagged with its source strand — to
isolate consensus behaviour from clustering errors; the greedy
edit-distance clusterer is provided as the realistic alternative.
"""

from repro.cluster.distance import banded_edit_distance, edit_distance
from repro.cluster.greedy import GreedyClusterer
from repro.cluster.perfect import perfect_clusters

__all__ = [
    "edit_distance",
    "banded_edit_distance",
    "GreedyClusterer",
    "perfect_clusters",
]
