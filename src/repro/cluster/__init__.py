"""Read clustering: edit distance and cluster assignment.

After sequencing, reads must be grouped so that all noisy copies of one
original strand land in one cluster (the paper's Section 2.1, following
Rashtchian et al.). The simulation methodology (Section 6.1.2) uses
*perfect* clustering — each read is tagged with its source strand — to
isolate consensus behaviour from clustering errors; the greedy
edit-distance clusterer is provided as the realistic alternative.

The realistic path is columnar: :class:`BatchedGreedyClusterer` runs the
greedy scan straight off a :class:`~repro.channel.readbatch.ReadBatch`
buffer — signatures for the whole pool in one pass
(:mod:`repro.cluster.signatures`), one stacked banded edit-DP per
cluster round (:func:`banded_edit_distances_stack`) — with assignments
identical to the string-plane :class:`GreedyClusterer` (itself pinned
against the frozen original in :mod:`repro.cluster.reference`). That is
what opens the unlabeled-pool workload: ``sequence_store(...,
labeled=False)`` → cluster → ``DnaStore.decode_pool``.

For pools too large for the greedy scan's O(pool × clusters) candidate
set, :class:`LSHClusterer` (:mod:`repro.cluster.lsh`) generates
candidates from minhash-band bin collisions only and verifies every
collision with the exact banded DP — near-linear work, same
``assign``/``cluster_batch``/``cluster_pools`` surface, output clusters
still exact-edit-distance-verified.
"""

from repro.cluster.batched import BatchedGreedyClusterer
from repro.cluster.distance import (
    banded_edit_distance,
    banded_edit_distance_indices,
    banded_edit_distances_stack,
    edit_distance,
    edit_distance_indices,
)
from repro.cluster.greedy import GreedyClusterer
from repro.cluster.lsh import LSHClusterer
from repro.cluster.metrics import pair_precision_recall
from repro.cluster.perfect import perfect_clusters
from repro.cluster.reference import ReferenceGreedyClusterer
from repro.cluster.signatures import (
    batch_signatures,
    batch_signatures_sparse,
    qgram_signature,
)

__all__ = [
    "edit_distance",
    "edit_distance_indices",
    "banded_edit_distance",
    "banded_edit_distance_indices",
    "banded_edit_distances_stack",
    "GreedyClusterer",
    "BatchedGreedyClusterer",
    "LSHClusterer",
    "ReferenceGreedyClusterer",
    "perfect_clusters",
    "pair_precision_recall",
    "batch_signatures",
    "batch_signatures_sparse",
    "qgram_signature",
]
