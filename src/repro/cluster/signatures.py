"""Vectorized k-mer (q-gram) signatures over the columnar read plane.

A read's q-gram signature is the histogram of its length-``q`` windows,
each window encoded as a base-4 integer; the L1 distance between two
signatures lower-bounds ``2 * q`` times their edit distance (one edit
creates/destroys at most ``q`` windows on each side), which is the
prefilter the greedy clusterers use to skip hopeless representative
comparisons.

The kernel here computes the signatures of *every read of a batch* in one
pass over the flat base buffer: rolling base-4 window codes as one
sliding-window dot product (no per-character Python loop, no dict
lookups), window validity (windows must not straddle a read boundary) as
one segmented comparison, and all reads' histograms via a single
``bincount`` over ``read * 4**q + code`` keys. The single-read helper
:func:`qgram_signature` rides the same rolling-code kernel, so the
string-plane :class:`~repro.cluster.greedy.GreedyClusterer` and the
columnar :class:`~repro.cluster.batched.BatchedGreedyClusterer` share
one signature definition (pinned against the frozen per-character loop
in :mod:`repro.cluster.reference` by the differential suite).

Dense histograms are ``(n_reads, n_alphabet**q)`` and explode
combinatorially in ``q`` — a million reads at ``q=8`` would need a
quarter terabyte — so :func:`batch_signatures` enforces a byte budget,
and :func:`batch_signatures_sparse` provides the ``(read_id, code,
count)`` COO form whose size follows the reads, not the code space.
The sparse form is what the LSH clusterer's minhash banding consumes
(:mod:`repro.cluster.lsh`).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.channel.readbatch import ReadBatch

#: Anything the batch kernel accepts: a ReadBatch or a raw columnar
#: ``(buffer, offsets, lengths)`` triple.
ColumnarReads = Union[ReadBatch, Tuple[np.ndarray, np.ndarray, np.ndarray]]

#: Byte budget for one dense signature matrix (int32 cells). Generous for
#: every prefilter-sized ``q`` (a million reads at q=3 is 256 MB) while
#: catching the silent q >= 8 blow-ups long before the allocation.
DENSE_SIGNATURE_BYTE_BUDGET = 1 << 30


def rolling_qgram_codes(
    flat: np.ndarray, q: int, n_alphabet: int = 4
) -> np.ndarray:
    """Base-``n_alphabet`` codes of every length-``q`` window of ``flat``.

    Window ``i`` covers ``flat[i : i + q]``, big-endian (the first base is
    the most significant digit — the same code the per-character rolling
    loop of the frozen reference produces). Returns an ``int64`` array of
    ``len(flat) - q + 1`` codes (empty when ``flat`` is shorter than
    ``q``): one sliding-window dot product against the base-``n_alphabet``
    place values, exact in int64.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    flat = np.asarray(flat)
    n_windows = flat.size - q + 1
    if n_windows <= 0:
        return np.zeros(0, dtype=np.int64)
    place_values = n_alphabet ** np.arange(q - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(
        np.ascontiguousarray(flat, dtype=np.int64), q
    )
    return windows @ place_values


def qgram_signature(
    read: np.ndarray, q: int, n_alphabet: int = 4
) -> np.ndarray:
    """Histogram of one read's q-gram codes, ``(n_alphabet**q,)`` int32.

    Bit-identical to the frozen per-character loop
    (``repro.cluster.reference._qgram_signature``) on index arrays; reads
    shorter than ``q`` give the all-zero signature.
    """
    codes = rolling_qgram_codes(read, q, n_alphabet)
    return np.bincount(codes, minlength=n_alphabet ** q).astype(np.int32)


def _as_columnar(reads: ColumnarReads) -> Tuple[np.ndarray, np.ndarray,
                                                np.ndarray]:
    if isinstance(reads, ReadBatch):
        return reads.buffer, reads.offsets, reads.lengths
    buffer, offsets, lengths = reads
    return (np.asarray(buffer), np.asarray(offsets, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64))


def _valid_window_codes(
    reads: ColumnarReads, q: int, n_alphabet: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """``(owners, codes, n_reads)`` of every in-read q-gram window.

    The shared kernel behind both signature layouts: reads are gathered
    tight (a no-op when the batch already is), window codes roll across
    the whole buffer, and windows straddling a read boundary are masked
    out by one segmented comparison. ``owners`` is sorted ascending.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    buffer, offsets, lengths = _as_columnar(reads)
    n_reads = lengths.size
    total = int(lengths.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, n_reads
    tight_starts = np.cumsum(lengths) - lengths
    read_of_base = np.repeat(np.arange(n_reads, dtype=np.int64), lengths)
    if buffer.size == total and np.array_equal(offsets, tight_starts):
        flat = buffer
    else:
        within = np.arange(total, dtype=np.int64) \
            - tight_starts[read_of_base]
        flat = buffer[offsets[read_of_base] + within]
    codes = rolling_qgram_codes(flat, q, n_alphabet)
    if codes.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, n_reads
    # A window starting at flat position p belongs to read r iff it fits
    # entirely inside r: (p - start_r) + q <= len_r.
    owners = read_of_base[: codes.size]
    positions = np.arange(codes.size, dtype=np.int64)
    valid = positions - tight_starts[owners] + q <= lengths[owners]
    return owners[valid], codes[valid], n_reads


def batch_signatures(
    reads: ColumnarReads,
    q: int,
    n_alphabet: int = 4,
    max_bytes: int = DENSE_SIGNATURE_BYTE_BUDGET,
) -> np.ndarray:
    """Signatures of every read of a batch, ``(n_reads, n_alphabet**q)``.

    One pass over the flat base buffer: reads are gathered tight (a no-op
    when the batch already is), window codes roll across the whole
    buffer, windows straddling a read boundary are masked out by one
    segmented comparison, and every read's histogram comes from a single
    flat ``bincount``. Row ``i`` equals ``qgram_signature(read_i, q)``.

    The dense matrix costs ``n_reads * n_alphabet**q`` int32 cells
    regardless of how few of them are nonzero, so the call refuses (with
    a ``ValueError``) any request beyond ``max_bytes`` — at q >= 8 even
    modest pools cross a gigabyte. Large-``q`` consumers should switch
    to :func:`batch_signatures_sparse`.
    """
    buffer, offsets, lengths = _as_columnar(reads)
    n_reads = lengths.size
    n_bins = n_alphabet ** q if q > 0 else 0
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    dense_bytes = n_reads * n_bins * np.dtype(np.int32).itemsize
    if dense_bytes > max_bytes:
        raise ValueError(
            f"dense q-gram signatures for n_reads={n_reads}, q={q} need "
            f"{dense_bytes} bytes ({n_reads} x {n_bins} int32), over the "
            f"{max_bytes}-byte budget; use batch_signatures_sparse for "
            f"large q or raise max_bytes explicitly"
        )
    owners, codes, n_reads = _valid_window_codes(
        (buffer, offsets, lengths), q, n_alphabet
    )
    if codes.size == 0:
        return np.zeros((n_reads, n_bins), dtype=np.int32)
    keys = owners * n_bins + codes
    counts = np.bincount(keys, minlength=n_reads * n_bins)
    return counts.reshape(n_reads, n_bins).astype(np.int32)


def batch_signatures_sparse(
    reads: ColumnarReads, q: int, n_alphabet: int = 4
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse COO signatures: ``(read_ids, codes, counts)`` triples.

    The same histograms as :func:`batch_signatures`, but holding only
    the nonzero cells: entry ``j`` says read ``read_ids[j]`` contains
    q-gram ``codes[j]`` exactly ``counts[j]`` times. Triples are sorted
    by ``(read_id, code)``, so each read's run is contiguous
    (``np.searchsorted(read_ids, ...)`` recovers per-read boundaries)
    and size follows the reads — ``O(total_bases)`` worst case — never
    the ``n_alphabet**q`` code space. Reads shorter than ``q``
    contribute no triples.
    """
    owners, codes, _ = _valid_window_codes(reads, q, n_alphabet)
    if codes.size == 0:
        empty64 = np.zeros(0, dtype=np.int64)
        return empty64, empty64, np.zeros(0, dtype=np.int32)
    n_bins = n_alphabet ** q
    keys, counts = np.unique(owners * n_bins + codes, return_counts=True)
    read_ids, sparse_codes = np.divmod(keys, n_bins)
    return read_ids, sparse_codes, counts.astype(np.int32)


def l1_distances(signatures: np.ndarray, target: np.ndarray) -> np.ndarray:
    """L1 distance of every signature row to ``target``, one array op.

    ``l1 / (2 * q)`` lower-bounds the edit distance, so rows with
    ``l1 > 2 * q * threshold`` can be skipped without changing any greedy
    assignment.
    """
    return np.abs(signatures.astype(np.int64) - target.astype(np.int64)) \
        .sum(axis=1)
