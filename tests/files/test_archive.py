"""Tests for the archive container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.files import (
    ArchiveError,
    FileEntry,
    pack_archive,
    unpack_archive,
    unpack_archive_robust,
)
from repro.files.archive import directory_size_bits


def _entries(*pairs):
    return [FileEntry(name=name, data=data) for name, data in pairs]


class TestPackUnpack:
    def test_roundtrip(self):
        entries = _entries(("a.bin", b"hello"), ("b.bin", b"world!!"))
        packed = pack_archive(entries)
        assert unpack_archive(packed.data) == entries

    def test_empty_archive(self):
        packed = pack_archive([])
        assert unpack_archive(packed.data) == []

    def test_empty_file(self):
        entries = _entries(("empty", b""))
        assert unpack_archive(pack_archive(entries).data) == entries

    def test_unicode_names(self):
        entries = _entries(("フォト.jpg", b"\x00\x01"))
        assert unpack_archive(pack_archive(entries).data) == entries

    def test_segment_bits_match_layout(self):
        entries = _entries(("x", b"12345"), ("y", b"678"))
        packed = pack_archive(entries)
        assert packed.segment_bits[1] == 5 * 8
        assert packed.segment_bits[2] == 3 * 8
        assert sum(packed.segment_bits) == packed.n_bits

    def test_directory_segment_index(self):
        assert pack_archive([]).directory_segment == 0

    @settings(max_examples=40)
    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=20), st.binary(max_size=200)),
        max_size=6,
    ))
    def test_roundtrip_property(self, pairs):
        entries = [FileEntry(name=f"{i}_{name}", data=data)
                   for i, (name, data) in enumerate(pairs)]
        assert unpack_archive(pack_archive(entries).data) == entries


class TestDirectorySizeBits:
    def test_matches_segment_zero(self):
        packed = pack_archive(_entries(("a", b"xyz"), ("bb", b"")))
        assert directory_size_bits(packed.data) == packed.segment_bits[0]

    def test_bad_magic(self):
        with pytest.raises(ArchiveError):
            directory_size_bits(b"XXX" + b"\x00" * 10)

    def test_too_short(self):
        with pytest.raises(ArchiveError):
            directory_size_bits(b"AR1")


class TestStrictUnpackErrors:
    def test_truncated_header(self):
        with pytest.raises(ArchiveError):
            unpack_archive(b"AR1\x00")

    def test_bad_magic(self):
        packed = pack_archive(_entries(("a", b"1")))
        with pytest.raises(ArchiveError):
            unpack_archive(b"XR1" + packed.data[3:])

    def test_truncated_payload(self):
        packed = pack_archive(_entries(("a", b"123456")))
        with pytest.raises(ArchiveError):
            unpack_archive(packed.data[:-3])

    def test_trailing_garbage(self):
        packed = pack_archive(_entries(("a", b"1")))
        with pytest.raises(ArchiveError):
            unpack_archive(packed.data + b"zz")

    def test_directory_overflow(self):
        packed = bytearray(pack_archive(_entries(("a", b"1"))).data)
        packed[3:7] = (10**6).to_bytes(4, "big")  # absurd directory length
        with pytest.raises(ArchiveError):
            unpack_archive(bytes(packed))


class TestRobustUnpack:
    def test_corrupt_payload_is_contained(self):
        entries = _entries(("a", b"A" * 50), ("b", b"B" * 50))
        packed = bytearray(pack_archive(entries).data)
        packed[-10] ^= 0xFF  # corrupt inside file b's payload
        recovered = unpack_archive_robust(bytes(packed))
        assert recovered[0].data == entries[0].data  # file a untouched
        assert recovered[1].data != entries[1].data
        assert len(recovered[1].data) == 50

    def test_truncated_payload_zero_padded(self):
        packed = pack_archive(_entries(("a", b"123456"))).data
        recovered = unpack_archive_robust(packed[:-2])
        assert recovered[0].data == b"1234\x00\x00"

    def test_corrupt_directory_still_raises(self):
        packed = bytearray(pack_archive(_entries(("a", b"1"))).data)
        packed[0] = 0  # destroy the magic
        with pytest.raises(ArchiveError):
            unpack_archive_robust(bytes(packed))

    def test_name_too_long_rejected_at_pack(self):
        with pytest.raises(ArchiveError):
            pack_archive(_entries(("x" * 5000, b"")))
