"""Tests for FASTA/FASTQ serialization."""

import pytest

from repro.channel import ErrorModel, FixedCoverage, ReadCluster, SequencingSimulator
from repro.codec.basemap import random_bases
from repro.files.fasta import (
    clusters_from_records,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)


class TestFasta:
    def test_roundtrip(self, tmp_path, rng):
        strands = [random_bases(30, rng) for _ in range(5)]
        path = tmp_path / "strands.fasta"
        write_fasta(path, strands)
        records = read_fasta(path)
        assert [name for name, _ in records] == [
            f"strand_{i}" for i in range(5)
        ]
        assert [seq for _, seq in records] == strands

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fasta"
        write_fasta(path, [])
        assert read_fasta(path) == []

    def test_multiline_sequences(self, tmp_path):
        path = tmp_path / "multi.fasta"
        path.write_text(">x\nACGT\nACGT\n>y\nTTTT\n")
        records = read_fasta(path)
        assert records == [("x", "ACGTACGT"), ("y", "TTTT")]

    def test_rejects_invalid_characters(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "bad.fasta", ["ACGX"])

    def test_rejects_headerless_data(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)


class TestFastq:
    def test_roundtrip_through_clusters(self, tmp_path, rng):
        strands = [random_bases(40, rng) for _ in range(4)]
        simulator = SequencingSimulator(ErrorModel.uniform(0.05),
                                        FixedCoverage(3))
        clusters = simulator.sequence(strands, rng)
        path = tmp_path / "reads.fastq"
        write_fastq(path, clusters)
        records = read_fastq(path)
        assert len(records) == 12
        rebuilt = clusters_from_records(records, n_strands=4)
        for original, recovered in zip(clusters, rebuilt):
            assert recovered.reads == original.reads

    def test_quality_line_length(self, tmp_path):
        cluster = ReadCluster(source_index=0, reads=["ACGTAC"])
        path = tmp_path / "r.fastq"
        write_fastq(path, [cluster])
        lines = path.read_text().splitlines()
        assert len(lines[3]) == 6

    def test_bad_quality_char(self, tmp_path):
        with pytest.raises(ValueError):
            write_fastq(tmp_path / "r.fastq", [], quality_char="II")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@x\nACGT\n+\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_quality_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@x\nACGT\n+\nIII\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_unknown_read_id_rejected(self):
        with pytest.raises(ValueError):
            clusters_from_records([("weird", "ACGT")], n_strands=1)

    def test_cluster_index_out_of_range(self):
        with pytest.raises(ValueError):
            clusters_from_records([("read_5_0", "ACGT")], n_strands=2)

    def test_empty_clusters_preserved(self):
        clusters = clusters_from_records([("read_1_0", "AC")], n_strands=3)
        assert clusters[0].is_lost
        assert clusters[1].reads == ["AC"]
        assert clusters[2].is_lost
