"""Fuzzing the robust JPEG decoders: corruption must never crash them."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media import ColorJpegCodec, JpegCodec, synth_image, synth_image_rgb


@pytest.fixture(scope="module")
def gray_compressed():
    return JpegCodec(quality=60).encode(synth_image(40, 40, rng=1))


@pytest.fixture(scope="module")
def color_compressed():
    return ColorJpegCodec(quality=60).encode(synth_image_rgb(40, 40, rng=1))


class TestGrayFuzz:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=400))
    def test_random_bytes_never_crash(self, data):
        image, stats = JpegCodec().decode_robust(data)
        assert image.dtype == np.uint8
        assert stats.blocks_decoded <= stats.blocks_total

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**9), st.integers(1, 40))
    def test_multibyte_corruption_never_crashes(self, seed, n_corrupt):
        data = bytearray(JpegCodec(quality=60).encode(synth_image(24, 24, rng=3)))
        rng = np.random.default_rng(seed)
        for position in rng.choice(len(data), min(n_corrupt, len(data)),
                                   replace=False):
            data[position] = int(rng.integers(0, 256))
        image, _ = JpegCodec(quality=60).decode_robust(bytes(data))
        assert image.dtype == np.uint8

    def test_truncation_ladder(self, gray_compressed):
        """Decoded block count never increases as the stream is cut."""
        codec = JpegCodec(quality=60)
        previous = None
        for keep in range(len(gray_compressed), 6, -16):
            _, stats = codec.decode_robust(gray_compressed[:keep])
            if previous is not None:
                assert stats.blocks_decoded <= previous
            previous = stats.blocks_decoded

    def test_empty_input(self):
        image, stats = JpegCodec().decode_robust(b"")
        assert stats.blocks_decoded == 0


class TestColorFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash(self, data):
        image, stats = ColorJpegCodec().decode_robust(data)
        assert image.dtype == np.uint8

    def test_plane_boundary_truncations(self, color_compressed):
        """Cutting anywhere — including inside the chroma planes — returns
        a full-geometry image."""
        codec = ColorJpegCodec(quality=60)
        clean = codec.decode(color_compressed)
        for fraction in (0.95, 0.7, 0.5, 0.3, 0.1):
            cut = color_compressed[: int(len(color_compressed) * fraction)]
            image, _ = codec.decode_robust(cut)
            assert image.shape == clean.shape
