"""Tests for the PSNR quality metric."""

import numpy as np
import pytest

from repro.media import psnr, quality_loss_db


class TestPsnr:
    def test_identical_images_infinite(self):
        image = np.full((8, 8), 100, dtype=np.uint8)
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 16.0)  # MSE = 256 -> PSNR = 10*log10(255^2/256)
        assert psnr(a, b) == pytest.approx(10 * np.log10(255**2 / 256))

    def test_monotone_in_noise(self, rng):
        image = rng.integers(0, 256, (32, 32)).astype(np.float64)
        small = image + rng.normal(0, 2, image.shape)
        large = image + rng.normal(0, 20, image.shape)
        assert psnr(image, small) > psnr(image, large)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_custom_peak(self):
        a = np.zeros((4, 4))
        b = np.ones((4, 4))
        assert psnr(a, b, peak=1.0) == pytest.approx(0.0)


class TestQualityLoss:
    def test_zero_loss_for_identical_decode(self, rng):
        original = rng.integers(0, 256, (16, 16)).astype(np.float64)
        clean = original + 1.0
        assert quality_loss_db(original, clean, clean.copy()) == 0.0

    def test_positive_loss_for_degradation(self, rng):
        original = rng.integers(0, 256, (16, 16)).astype(np.float64)
        clean = original + rng.normal(0, 1, original.shape)
        corrupted = original + rng.normal(0, 25, original.shape)
        assert quality_loss_db(original, clean, corrupted) > 0

    def test_floored_at_zero(self, rng):
        original = rng.integers(0, 256, (16, 16)).astype(np.float64)
        clean = original + rng.normal(0, 10, original.shape)
        better = original + rng.normal(0, 1, original.shape)
        assert quality_loss_db(original, clean, better) == 0.0

    def test_lossless_reference_uses_ceiling(self):
        original = np.zeros((8, 8))
        corrupted = np.full((8, 8), 50.0)
        loss = quality_loss_db(original, original.copy(), corrupted)
        assert loss > 0 and np.isfinite(loss)
