"""Tests for JPEG constant tables."""

import numpy as np
import pytest

from repro.media.jpeg.tables import (
    AC_LUMA_BITS,
    AC_LUMA_VALUES,
    BASE_LUMA_QUANT,
    DC_LUMA_BITS,
    DC_LUMA_VALUES,
    INVERSE_ZIGZAG,
    ZIGZAG,
    build_huffman_codes,
    build_huffman_decoder,
    quant_table,
)


class TestQuantTable:
    def test_quality_50_is_base(self):
        np.testing.assert_array_equal(quant_table(50), BASE_LUMA_QUANT)

    def test_higher_quality_smaller_steps(self):
        assert (quant_table(90) <= quant_table(50)).all()

    def test_lower_quality_bigger_steps(self):
        assert (quant_table(10) >= quant_table(50)).all()

    def test_steps_within_byte_range(self):
        for quality in (1, 25, 75, 100):
            table = quant_table(quality)
            assert table.min() >= 1 and table.max() <= 255

    def test_quality_range_enforced(self):
        with pytest.raises(ValueError):
            quant_table(0)
        with pytest.raises(ValueError):
            quant_table(101)


class TestZigzag:
    def test_is_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))

    def test_inverse(self):
        np.testing.assert_array_equal(ZIGZAG[INVERSE_ZIGZAG], np.arange(64))

    def test_standard_prefix(self):
        # The first entries of the standard zigzag scan: (0,0) (0,1) (1,0)
        # (2,0) (1,1) (0,2) ...
        assert ZIGZAG[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_ends_at_bottom_right(self):
        assert ZIGZAG[63] == 63


class TestHuffmanTables:
    def test_dc_table_counts(self):
        assert sum(DC_LUMA_BITS) == len(DC_LUMA_VALUES) == 12

    def test_ac_table_counts(self):
        assert sum(AC_LUMA_BITS) == len(AC_LUMA_VALUES) == 162

    def test_codes_are_prefix_free(self):
        codes = build_huffman_codes(AC_LUMA_BITS, AC_LUMA_VALUES)
        as_strings = [
            format(code, f"0{length}b") for code, length in codes.values()
        ]
        for i, a in enumerate(as_strings):
            for j, b in enumerate(as_strings):
                if i != j:
                    assert not b.startswith(a)

    def test_decoder_inverts_encoder(self):
        codes = build_huffman_codes(DC_LUMA_BITS, DC_LUMA_VALUES)
        decoder = build_huffman_decoder(DC_LUMA_BITS, DC_LUMA_VALUES)
        for symbol, (code, length) in codes.items():
            assert decoder[(code, length)] == symbol

    def test_known_dc_code(self):
        # In the Annex K DC table, category 0 has the 2-bit code 00.
        codes = build_huffman_codes(DC_LUMA_BITS, DC_LUMA_VALUES)
        assert codes[0] == (0b00, 2)

    def test_bits_spec_validated(self):
        with pytest.raises(ValueError):
            build_huffman_codes([1] * 15, [0])
        with pytest.raises(ValueError):
            build_huffman_codes([1] + [0] * 15, [0, 1])
