"""Tests for blockwise DCT plumbing."""

import numpy as np
import pytest

from repro.media.jpeg.dct import blockify, forward_dct, inverse_dct, unblockify


class TestBlockify:
    def test_exact_multiple(self):
        image = np.arange(256).reshape(16, 16)
        blocks, padded_shape, grid = blockify(image)
        assert blocks.shape == (4, 8, 8)
        assert padded_shape == (16, 16)
        assert grid == (2, 2)

    def test_padding_replicates_edges(self):
        image = np.ones((10, 12))
        blocks, padded_shape, grid = blockify(image)
        assert padded_shape == (16, 16)
        reassembled = unblockify(blocks, padded_shape, grid, (10, 12))
        np.testing.assert_array_equal(reassembled, image)

    def test_block_content(self):
        image = np.arange(64).reshape(8, 8)
        blocks, _, _ = blockify(image)
        np.testing.assert_array_equal(blocks[0], image)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((4, 4, 3)))

    def test_roundtrip_odd_shapes(self, rng):
        for shape in [(17, 23), (8, 9), (31, 8)]:
            image = rng.integers(0, 256, shape)
            blocks, padded_shape, grid = blockify(image)
            back = unblockify(blocks, padded_shape, grid, shape)
            np.testing.assert_array_equal(back, image)


class TestDct:
    def test_inverse_of_forward(self, rng):
        blocks = rng.normal(0, 50, (6, 8, 8))
        np.testing.assert_allclose(
            inverse_dct(forward_dct(blocks)), blocks, atol=1e-9
        )

    def test_constant_block_energy_in_dc(self):
        blocks = np.full((1, 8, 8), 10.0)
        coefficients = forward_dct(blocks)
        assert coefficients[0, 0, 0] == pytest.approx(80.0)  # 10 * 8
        assert np.abs(coefficients[0]).sum() == pytest.approx(80.0)

    def test_parseval_energy_preserved(self, rng):
        blocks = rng.normal(0, 30, (3, 8, 8))
        coefficients = forward_dct(blocks)
        np.testing.assert_allclose(
            (blocks**2).sum(), (coefficients**2).sum(), rtol=1e-9
        )
