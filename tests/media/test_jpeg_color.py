"""Tests for the color JPEG codec (YCbCr 4:2:0)."""

import numpy as np
import pytest

from repro.media import ColorJpegCodec, psnr, synth_image_rgb
from repro.media.jpeg.color import (
    chroma_quant_table,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.utils.bitio import bits_to_bytes, bytes_to_bits


@pytest.fixture(scope="module")
def image():
    return synth_image_rgb(80, 64, rng=21)


@pytest.fixture(scope="module")
def codec():
    return ColorJpegCodec(quality=75)


@pytest.fixture(scope="module")
def compressed(image, codec):
    return codec.encode(image)


class TestColorConversions:
    def test_roundtrip(self, rng):
        rgb = rng.integers(0, 256, (16, 16, 3)).astype(np.uint8)
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 2

    def test_gray_has_neutral_chroma(self):
        gray = np.full((4, 4, 3), 100, dtype=np.uint8)
        ycbcr = rgb_to_ycbcr(gray)
        np.testing.assert_allclose(ycbcr[..., 1], 128.0, atol=1e-9)
        np.testing.assert_allclose(ycbcr[..., 2], 128.0, atol=1e-9)

    def test_luma_weights(self):
        red = np.zeros((1, 1, 3)); red[0, 0, 0] = 255
        assert rgb_to_ycbcr(red)[0, 0, 0] == pytest.approx(0.299 * 255)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            ycbcr_to_rgb(np.zeros((4, 4)))


class TestSubsampling:
    def test_box_average(self):
        plane = np.array([[0, 4], [8, 4]], dtype=np.float64)
        assert subsample_420(plane)[0, 0] == 4.0

    def test_odd_dimensions_padded(self):
        plane = np.ones((5, 7))
        assert subsample_420(plane).shape == (3, 4)

    def test_upsample_crop(self):
        small = np.arange(6, dtype=np.float64).reshape(2, 3)
        up = upsample_420(small, (3, 5))
        assert up.shape == (3, 5)
        assert up[0, 0] == small[0, 0]
        assert up[2, 4] == small[1, 2]

    def test_down_up_roundtrip_on_smooth_plane(self):
        ys, xs = np.mgrid[0:16, 0:16]
        plane = (ys + xs).astype(np.float64)
        up = upsample_420(subsample_420(plane), (16, 16))
        assert np.abs(up - plane).mean() < 1.5


class TestChromaQuant:
    def test_quality_scaling(self):
        assert (chroma_quant_table(90) <= chroma_quant_table(50)).all()

    def test_range(self):
        for quality in (1, 50, 100):
            table = chroma_quant_table(quality)
            assert table.min() >= 1 and table.max() <= 255

    def test_validation(self):
        with pytest.raises(ValueError):
            chroma_quant_table(0)


class TestColorCodec:
    def test_roundtrip_quality(self, image, codec, compressed):
        decoded = codec.decode(compressed)
        assert decoded.shape == image.shape
        assert psnr(image, decoded) > 25.0

    def test_compresses(self, image, compressed):
        assert len(compressed) < image.size

    def test_color_survives(self, codec):
        """A saturated red block must still be red after the roundtrip."""
        red = np.zeros((16, 16, 3), dtype=np.uint8)
        red[..., 0] = 200
        decoded = codec.decode(codec.encode(red))
        assert decoded[..., 0].mean() > 150
        assert decoded[..., 1].mean() < 80

    def test_rejects_grayscale_input(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros((8, 8), dtype=np.uint8))

    def test_odd_dimensions(self, codec):
        image = synth_image_rgb(33, 29, rng=5)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape

    def test_strict_decode_raises_on_truncation(self, codec, compressed):
        with pytest.raises(ValueError):
            codec.decode(compressed[: len(compressed) // 2])

    def test_robust_decode_never_raises(self, codec, compressed, rng):
        bits = bytes_to_bits(compressed)
        for _ in range(15):
            flipped = bits.copy()
            for position in rng.choice(len(bits), 4, replace=False):
                flipped[position] ^= 1
            decoded, stats = codec.decode_robust(bits_to_bytes(flipped))
            assert decoded.dtype == np.uint8

    def test_destroyed_header_fallback(self, codec, compressed):
        decoded, stats = codec.decode_robust(b"XX" + compressed[2:])
        assert stats.blocks_decoded == 0

    def test_stream_tail_is_least_critical(self, codec, image, rng):
        """Corruption damage is bounded by what follows it in the stream:
        flips in the final sliver of the entropy stream (the very end of
        the Cr plane) hurt far less than flips in the header region or
        the early luma stream. (Unlike grayscale, *mid*-stream flips can
        be very damaging here — an aborted chroma plane becomes a global
        color cast — so the sharp property is head-vs-tail.)"""
        compressed = codec.encode(image)
        clean, _ = codec.decode_robust(compressed)
        bits = bytes_to_bits(compressed)
        n = len(bits)

        def mean_psnr(lo, hi):
            values = []
            span = np.arange(lo, hi)
            for position in rng.choice(span, min(30, len(span)), replace=False):
                flipped = bits.copy()
                flipped[position] ^= 1
                decoded, _ = codec.decode_robust(bits_to_bytes(flipped))
                if decoded.shape != clean.shape:
                    values.append(5.0)
                else:
                    values.append(min(psnr(clean, decoded), 60.0))
            return np.mean(values)

        head = mean_psnr(0, n // 10)        # header + first luma blocks
        tail = mean_psnr(n - n // 20, n)    # last 5% of the stream
        assert tail > head


class TestSynthRgb:
    def test_shape_and_dtype(self):
        image = synth_image_rgb(32, 48, rng=0)
        assert image.shape == (32, 48, 3)
        assert image.dtype == np.uint8

    def test_is_colorful(self):
        image = synth_image_rgb(64, 64, rng=1).astype(float)
        channel_spread = np.abs(image[..., 0] - image[..., 2]).mean()
        assert channel_spread > 5.0

    def test_deterministic(self):
        np.testing.assert_array_equal(
            synth_image_rgb(32, 32, rng=9), synth_image_rgb(32, 32, rng=9)
        )
