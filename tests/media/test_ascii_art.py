"""Tests for ASCII image rendering."""

import numpy as np
import pytest

from repro.media.ascii_art import ascii_render, side_by_side


class TestAsciiRender:
    def test_dimensions(self):
        image = np.zeros((64, 64))
        art = ascii_render(image, width=32)
        lines = art.splitlines()
        assert all(len(line) == 32 for line in lines)
        assert len(lines) == 16  # aspect-corrected: half the width

    def test_flat_image_is_uniform(self):
        art = ascii_render(np.full((16, 16), 42), width=16)
        assert len(set(art.replace("\n", ""))) == 1

    def test_gradient_uses_ramp_extremes(self):
        image = np.tile(np.linspace(0, 255, 64), (32, 1))
        art = ascii_render(image, width=32)
        assert " " in art and "@" in art

    def test_invert_swaps_extremes(self):
        image = np.tile(np.linspace(0, 255, 64), (32, 1))
        normal = ascii_render(image, width=32).splitlines()[0]
        inverted = ascii_render(image, width=32, invert=True).splitlines()[0]
        assert normal[0] != inverted[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_render(np.zeros((4, 4, 3)))
        with pytest.raises(ValueError):
            ascii_render(np.zeros((4, 4)), width=1)


class TestSideBySide:
    def test_panels_aligned(self):
        panels = {"a": np.zeros((16, 16)), "b": np.ones((16, 16))}
        output = side_by_side(panels, width=10, gap=2)
        lines = output.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row is padded to the same width

    def test_different_heights_padded(self):
        panels = {"tall": np.zeros((40, 16)), "short": np.zeros((8, 16))}
        output = side_by_side(panels, width=10)
        assert output  # no crash; alignment verified by splitlines below
        lines = output.splitlines()[1:]
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            side_by_side({})
