"""Tests for the JPEG codec container and robust decoding."""

import numpy as np
import pytest

from repro.media import JpegCodec, psnr, synth_image
from repro.utils.bitio import bits_to_bytes, bytes_to_bits


@pytest.fixture(scope="module")
def image():
    return synth_image(96, 80, rng=11)


@pytest.fixture(scope="module")
def codec():
    return JpegCodec(quality=75)


@pytest.fixture(scope="module")
def compressed(image, codec):
    return codec.encode(image)


class TestEncode:
    def test_compresses(self, image, compressed):
        assert len(compressed) < image.size

    def test_deterministic(self, image, codec):
        assert codec.encode(image) == codec.encode(image)

    def test_quality_size_tradeoff(self, image):
        small = JpegCodec(quality=20).encode(image)
        large = JpegCodec(quality=95).encode(image)
        assert len(small) < len(large)

    def test_rejects_non_2d(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_rejects_empty(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros((0, 8), dtype=np.uint8))

    def test_non_multiple_of_eight_dimensions(self, codec):
        image = synth_image(33, 47, rng=2)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape


class TestDecode:
    def test_roundtrip_quality(self, image, codec, compressed):
        decoded = codec.decode(compressed)
        assert decoded.shape == image.shape
        assert psnr(image, decoded) > 28.0

    def test_higher_quality_higher_psnr(self, image):
        low = JpegCodec(quality=20)
        high = JpegCodec(quality=95)
        psnr_low = psnr(image, low.decode(low.encode(image)))
        psnr_high = psnr(image, high.decode(high.encode(image)))
        assert psnr_high > psnr_low + 3.0

    def test_flat_image_nearly_lossless(self, codec):
        flat = np.full((32, 32), 77, dtype=np.uint8)
        decoded = codec.decode(codec.encode(flat))
        assert np.abs(decoded.astype(int) - 77).max() <= 1

    def test_strict_decode_raises_on_truncation(self, codec, compressed):
        with pytest.raises(ValueError):
            codec.decode(compressed[: len(compressed) // 2])


class TestRobustDecode:
    def test_clean_stream_fully_decodes(self, codec, compressed, image):
        decoded, stats = codec.decode_robust(compressed)
        assert not stats.failed
        assert stats.blocks_decoded == stats.blocks_total
        assert decoded.shape == image.shape

    def test_truncated_stream_partial_decode(self, codec, compressed, image):
        decoded, stats = codec.decode_robust(compressed[: len(compressed) // 3])
        assert stats.failed
        assert 0 < stats.blocks_decoded < stats.blocks_total
        assert decoded.shape == image.shape  # geometry survives

    def test_destroyed_header_gives_fallback(self, codec, compressed):
        corrupted = b"XX" + compressed[2:]
        decoded, stats = codec.decode_robust(corrupted)
        assert stats.blocks_decoded == 0

    def test_never_raises_on_random_corruption(self, codec, compressed, rng):
        bits = bytes_to_bits(compressed)
        for _ in range(25):
            flipped = bits.copy()
            for position in rng.choice(len(bits), 5, replace=False):
                flipped[position] ^= 1
            decoded, stats = codec.decode_robust(bits_to_bytes(flipped))
            assert decoded.dtype == np.uint8

    def test_early_corruption_worse_than_late(self, codec, image, rng):
        """The Figure 10 trend, aggregated over many single-bit flips."""
        compressed = codec.encode(image)
        clean = codec.decode(compressed)
        bits = bytes_to_bits(compressed)
        n = len(bits)

        def mean_loss(window):
            losses = []
            for position in rng.choice(window, 40, replace=False):
                flipped = bits.copy()
                flipped[position] ^= 1
                decoded, _ = codec.decode_robust(bits_to_bytes(flipped))
                if decoded.shape != clean.shape:
                    losses.append(48.0)
                else:
                    value = psnr(clean, decoded)
                    losses.append(0.0 if value == float("inf")
                                  else max(0.0, 60.0 - value))
            return np.mean(losses)

        early = mean_loss(np.arange(72, n // 5))
        late = mean_loss(np.arange(4 * n // 5, n))
        assert early > late
