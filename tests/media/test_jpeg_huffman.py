"""Tests for the JPEG entropy layer."""

import numpy as np
import pytest

from repro.media.jpeg import huffman
from repro.media.jpeg.huffman import (
    EntropyDecodeError,
    decode_block,
    decode_magnitude,
    encode_block,
    encode_magnitude,
    magnitude_category,
)
from repro.utils.bitio import BitReader, BitWriter


class TestMagnitudeCategory:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (255, 8), (-1024, 11),
    ])
    def test_known_values(self, value, expected):
        assert magnitude_category(value) == expected


class TestMagnitudeCoding:
    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 127, -127, 1023, -1023])
    def test_roundtrip(self, value):
        writer = BitWriter()
        category = magnitude_category(value)
        encode_magnitude(writer, value, category)
        reader = BitReader.from_bits(writer.to_bit_array())
        assert decode_magnitude(reader, category) == value

    def test_truncated_stream_raises(self):
        reader = BitReader.from_bits(np.array([1], dtype=np.uint8))
        with pytest.raises(EntropyDecodeError):
            decode_magnitude(reader, 5)


class TestBlockCoding:
    def _roundtrip(self, coefficients, previous_dc=0):
        writer = BitWriter()
        encode_block(writer, coefficients, previous_dc)
        reader = BitReader.from_bits(writer.to_bit_array())
        return decode_block(reader, previous_dc)

    def test_all_zero_block(self):
        assert self._roundtrip([0] * 64) == [0] * 64

    def test_dc_only(self):
        block = [37] + [0] * 63
        assert self._roundtrip(block) == block

    def test_negative_dc_diff(self):
        block = [-12] + [0] * 63
        assert self._roundtrip(block, previous_dc=100) == block

    def test_sparse_ac(self):
        block = [5] + [0] * 63
        block[3] = -2
        block[20] = 7
        block[63] = 1
        assert self._roundtrip(block) == block

    def test_long_zero_run_uses_zrl(self):
        block = [0] * 64
        block[0] = 1
        block[40] = 3  # a 39-zero run needs two ZRL symbols
        assert self._roundtrip(block) == block

    def test_dense_block(self, rng):
        block = [int(v) for v in rng.integers(-80, 80, 64)]
        assert self._roundtrip(block) == block

    def test_dc_chain(self, rng):
        """DPCM threading across consecutive blocks."""
        writer = BitWriter()
        blocks = []
        previous = 0
        for _ in range(5):
            block = [int(rng.integers(-200, 200))] + [0] * 63
            blocks.append(block)
            previous = encode_block(writer, block, previous)
        reader = BitReader.from_bits(writer.to_bit_array())
        previous = 0
        for block in blocks:
            decoded = decode_block(reader, previous)
            assert decoded == block
            previous = decoded[0]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            encode_block(BitWriter(), [0] * 63, 0)

    def test_oversized_dc_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_block(BitWriter(), [5000] + [0] * 63, 0)

    def test_oversized_ac_rejected_at_encode(self):
        block = [0] * 64
        block[5] = 2000
        with pytest.raises(ValueError):
            encode_block(BitWriter(), block, 0)


class TestDecodeDefensiveness:
    def test_empty_stream(self):
        reader = BitReader(b"")
        with pytest.raises(EntropyDecodeError):
            decode_block(reader, 0)

    def test_garbage_stream_raises_not_crashes(self, rng):
        for _ in range(20):
            data = rng.bytes(30)
            reader = BitReader(data)
            previous = 0
            try:
                while True:
                    block = decode_block(reader, previous)
                    previous = block[0]
            except EntropyDecodeError:
                pass  # the only acceptable failure mode

    def test_dc_wander_detected(self):
        """A decoded DC outside the baseline range raises (desync guard)."""
        writer = BitWriter()
        encode_block(writer, [1000] + [0] * 63, 0)
        reader = BitReader.from_bits(writer.to_bit_array())
        with pytest.raises(EntropyDecodeError):
            decode_block(reader, 1500)  # 1500 + 1000 > 2047
