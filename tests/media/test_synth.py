"""Tests for the synthetic image generator."""

import numpy as np
import pytest

from repro.media import synth_image


class TestSynthImage:
    def test_shape_and_dtype(self):
        image = synth_image(48, 64, rng=0)
        assert image.shape == (48, 64)
        assert image.dtype == np.uint8

    def test_deterministic(self):
        np.testing.assert_array_equal(
            synth_image(32, 32, rng=5), synth_image(32, 32, rng=5)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            synth_image(32, 32, rng=1), synth_image(32, 32, rng=2)
        )

    def test_uses_dynamic_range(self):
        image = synth_image(128, 128, rng=3)
        assert image.max() - image.min() > 60

    def test_has_structure_not_noise(self):
        """Neighbouring pixels correlate far more than in white noise."""
        image = synth_image(128, 128, rng=4).astype(np.float64)
        horizontal_diff = np.abs(np.diff(image, axis=1)).mean()
        assert horizontal_diff < 20  # white noise would be ~85

    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            synth_image(8, 64)

    def test_compressibility(self):
        """Synthetic photos must compress like photos (JPEG gets traction)."""
        from repro.media import JpegCodec
        image = synth_image(128, 128, rng=6)
        compressed = JpegCodec(quality=75).encode(image)
        assert len(compressed) < image.size / 2
