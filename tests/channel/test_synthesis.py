"""Tests for the two-stage (synthesis + sequencing) channel."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage
from repro.channel.synthesis import SynthesisSimulator, TwoStageSequencer
from repro.codec.basemap import random_bases
from repro.consensus import TwoWayReconstructor


class TestSynthesisSimulator:
    def test_noiseless_is_identity(self, rng):
        strands = [random_bases(40, rng) for _ in range(3)]
        simulator = SynthesisSimulator(ErrorModel.uniform(0.0))
        assert simulator.synthesize(strands, rng) == strands

    def test_mutations_applied_once(self, rng):
        strands = [random_bases(200, rng)]
        simulator = SynthesisSimulator(ErrorModel.uniform(0.1))
        synthesized = simulator.synthesize(strands, rng)
        assert synthesized[0] != strands[0]

    def test_deterministic(self, rng):
        strands = [random_bases(60, rng)]
        simulator = SynthesisSimulator(ErrorModel.uniform(0.2))
        assert (simulator.synthesize(strands, rng=5)
                == simulator.synthesize(strands, rng=5))


class TestTwoStageSequencer:
    def test_cluster_structure(self, rng):
        strands = [random_bases(50, rng) for _ in range(4)]
        channel = TwoStageSequencer(
            ErrorModel.uniform(0.02), ErrorModel.uniform(0.05),
            FixedCoverage(6),
        )
        clusters = channel.sequence(strands, rng)
        assert len(clusters) == 4
        assert all(c.coverage == 6 for c in clusters)

    def test_synthesis_errors_are_shared_across_reads(self, rng):
        """With zero sequencing noise, all reads equal the mutated molecule
        — consensus cannot undo a synthesis error no matter the coverage."""
        strand = random_bases(150, rng)
        channel = TwoStageSequencer(
            ErrorModel.uniform(0.10), ErrorModel.uniform(0.0),
            FixedCoverage(20),
        )
        clusters = channel.sequence([strand], rng)
        reads = clusters[0].reads
        assert len(set(reads)) == 1       # identical reads
        assert reads[0] != strand         # but not the designed strand
        consensus = TwoWayReconstructor().reconstruct(reads, len(strand))
        errors = sum(a != b for a, b in zip(consensus, strand))
        assert errors > 0                 # coverage did not help

    def test_sequencing_errors_average_out(self, rng):
        """With zero synthesis noise, enough coverage recovers the strand."""
        strand = random_bases(120, rng)
        channel = TwoStageSequencer(
            ErrorModel.uniform(0.0), ErrorModel.uniform(0.05),
            FixedCoverage(12),
        )
        clusters = channel.sequence([strand], rng)
        consensus = TwoWayReconstructor().reconstruct(
            clusters[0].reads, len(strand)
        )
        errors = sum(a != b for a, b in zip(consensus, strand))
        assert errors <= 2
