"""Tests for coverage models."""

import numpy as np
import pytest

from repro.channel import FixedCoverage, GammaCoverage


class TestFixedCoverage:
    def test_exact_counts(self):
        counts = FixedCoverage(7).sample(10, rng=0)
        assert (counts == 7).all()

    def test_rounding(self):
        counts = FixedCoverage(6.6).sample(3, rng=0)
        assert (counts == 7).all()

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedCoverage(0)

    def test_with_mean(self):
        assert FixedCoverage(5).with_mean(9).mean_coverage == 9


class TestGammaCoverage:
    def test_mean_close_to_target(self):
        counts = GammaCoverage(10, shape=6).sample(5000, rng=1)
        assert 9.0 < counts.mean() < 11.0

    def test_dispersion_increases_with_smaller_shape(self):
        tight = GammaCoverage(10, shape=50).sample(3000, rng=2)
        loose = GammaCoverage(10, shape=2).sample(3000, rng=2)
        assert loose.std() > tight.std()

    def test_dropouts_possible_at_low_coverage(self):
        counts = GammaCoverage(1.5, shape=1.0).sample(2000, rng=3)
        assert (counts == 0).sum() > 0  # strand loss -> erasures

    def test_counts_are_non_negative_integers(self):
        counts = GammaCoverage(4, shape=3).sample(1000, rng=4)
        assert counts.dtype == np.int64
        assert counts.min() >= 0

    def test_with_mean_preserves_shape(self):
        model = GammaCoverage(10, shape=7).with_mean(20)
        assert model.mean_coverage == 20
        assert model.shape == 7

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GammaCoverage(0)
        with pytest.raises(ValueError):
            GammaCoverage(5, shape=0)

    def test_deterministic(self):
        a = GammaCoverage(8).sample(50, rng=9)
        b = GammaCoverage(8).sample(50, rng=9)
        np.testing.assert_array_equal(a, b)
