"""Tests for named channel profiles."""

import pytest

from repro.channel import (
    enzymatic_synthesis_profile,
    illumina_profile,
    nanopore_profile,
    uniform_profile,
)


class TestProfiles:
    def test_uniform_splits_equally(self):
        model = uniform_profile(0.09)
        assert model.p_insertion == pytest.approx(model.p_deletion)
        assert model.p_deletion == pytest.approx(model.p_substitution)

    def test_illumina_is_low_error_sub_dominated(self):
        model = illumina_profile()
        assert model.total_rate <= 0.02
        indel_fraction = (model.p_insertion + model.p_deletion) / model.total_rate
        assert 0.25 <= indel_fraction <= 0.30  # the paper's NGS breakdown

    def test_nanopore_is_high_error_indel_dominated(self):
        model = nanopore_profile()
        assert 0.12 <= model.total_rate <= 0.15
        indel_fraction = (model.p_insertion + model.p_deletion) / model.total_rate
        assert indel_fraction > 0.60

    def test_enzymatic_is_very_noisy(self):
        model = enzymatic_synthesis_profile()
        assert model.total_rate >= 0.30
        assert model.p_insertion + model.p_deletion > model.p_substitution

    def test_rates_are_scalable(self):
        assert nanopore_profile(0.30).total_rate == pytest.approx(0.30)
