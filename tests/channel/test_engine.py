"""Tests for the batched channel engine.

The heart of this suite is *differential*: the engine's single vectorized
IDS pass must be bit-identical to the per-read reference
(:meth:`ErrorModel.apply_indices`) when both see the same randomness. The
engine documents its RNG stream (one ``random(total)`` draw, then the
substitution offsets, then the inserted bases, all in base order); the
tests re-draw that stream, slice out each read's share, and replay it
through per-read reference calls via a recording Generator subclass.
Statistical tests then pin the realized indel/substitution rates of large
batches to the configured probabilities.
"""

import numpy as np
import pytest

from repro.channel import (
    BatchedChannelEngine,
    ErrorModel,
    ErrorRateMap,
    FixedCoverage,
    GammaCoverage,
    batched_ids_pass,
    as_template_set,
)
from repro.codec.basemap import bases_to_indices, random_bases


class ReplayRng(np.random.Generator):
    """A Generator that replays pre-recorded draws.

    ``random`` pops from the uniform queue; ``integers`` dispatches on its
    lower bound — ``low == 1`` pops substitution offsets, ``low == 0``
    pops inserted bases — mirroring how ``apply_indices`` consumes its
    stream.
    """

    def __init__(self, draws, sub_offsets, ins_bases):
        super().__init__(np.random.PCG64(0))
        self._draws = np.asarray(draws, dtype=np.float64)
        self._subs = np.asarray(sub_offsets, dtype=np.uint8)
        self._ins = np.asarray(ins_bases, dtype=np.uint8)

    def random(self, size=None):
        assert size == self._draws.size, "unexpected uniform draw size"
        return self._draws

    def integers(self, low, high=None, size=None, dtype=np.int64,
                 endpoint=False):
        if low == 1:
            assert size == self._subs.size, "unexpected substitution count"
            return self._subs
        assert low == 0 and size == self._ins.size, "unexpected insert count"
        return self._ins


def _per_read_replay(model, templates, counts, seed, n_alphabet=4):
    """Reference reads generated from the engine's own RNG stream."""
    rng = np.random.default_rng(seed)
    template_of_read = np.repeat(np.arange(len(templates)), counts)
    read_templates = [templates[t] for t in template_of_read]
    in_lengths = np.array([len(t) for t in read_templates], dtype=np.int64)
    total = int(in_lengths.sum())
    draws = rng.random(total)

    flat = np.concatenate(read_templates) if total else np.zeros(0, np.uint8)
    p_del, p_ins, p_sub = (model.p_deletion, model.p_insertion,
                           model.p_substitution)
    deleted = draws < p_del
    inserted = (draws >= p_del) & (draws < p_del + p_ins)
    substituted = (draws >= p_del + p_ins) & (draws < model.total_rate)
    assert flat.size == total
    subs = rng.integers(1, n_alphabet, size=int(substituted.sum()),
                        dtype=np.uint8)
    ins = rng.integers(0, n_alphabet, size=int(inserted.sum()),
                       dtype=np.uint8)

    sub_cum = np.concatenate([[0], np.cumsum(substituted)])
    ins_cum = np.concatenate([[0], np.cumsum(inserted)])
    bounds = np.concatenate([[0], np.cumsum(in_lengths)])
    reads = []
    for i, template in enumerate(read_templates):
        a, b = int(bounds[i]), int(bounds[i + 1])
        replay = ReplayRng(
            draws[a:b],
            subs[int(sub_cum[a]): int(sub_cum[b])],
            ins[int(ins_cum[a]): int(ins_cum[b])],
        )
        reads.append(model.apply_indices(np.asarray(template, dtype=np.uint8),
                                         replay, n_alphabet=n_alphabet))
    return reads


class TestDifferentialVsPerReadReference:
    """Engine output == per-read apply_indices under a shared RNG stream."""

    @pytest.mark.parametrize("model", [
        ErrorModel.uniform(0.09),
        ErrorModel.with_breakdown(0.3, ins_frac=0.45, del_frac=0.4,
                                  sub_frac=0.15),
        ErrorModel.substitutions_only(0.2),
        ErrorModel.indels_only(0.08, 0.12),
    ])
    def test_reads_bit_identical(self, model):
        rng = np.random.default_rng(11)
        templates = [bases_to_indices(random_bases(length, rng))
                     for length in (60, 1, 33, 80, 5)]
        counts = np.array([3, 2, 0, 4, 1])
        engine = BatchedChannelEngine(model)
        batch = engine.sequence_counts(templates, counts, rng=1234)
        reference = _per_read_replay(model, templates, counts, seed=1234)
        assert batch.n_reads == len(reference)
        for i, expected in enumerate(reference):
            np.testing.assert_array_equal(batch.read(i), expected)

    def test_binary_alphabet_bit_identical(self):
        rng = np.random.default_rng(3)
        templates = [rng.integers(0, 2, size=40).astype(np.uint8)
                     for _ in range(6)]
        counts = np.full(6, 3)
        model = ErrorModel.uniform(0.15)
        engine = BatchedChannelEngine(model, n_alphabet=2)
        batch = engine.sequence_counts(templates, counts, rng=77)
        reference = _per_read_replay(model, templates, counts, seed=77,
                                     n_alphabet=2)
        for i, expected in enumerate(reference):
            np.testing.assert_array_equal(batch.read(i), expected)

    def test_noiseless_is_exact_copy_without_rng(self):
        templates = [bases_to_indices(random_bases(30, np.random.default_rng(0)))
                     for _ in range(4)]
        engine = BatchedChannelEngine(ErrorModel.uniform(0.0))
        batch = engine.sequence_counts(templates, np.full(4, 3), rng=0)
        for i in range(batch.n_reads):
            np.testing.assert_array_equal(
                batch.read(i), templates[int(batch.cluster_ids[i])]
            )


class TestEngineStatistics:
    """Realized event rates of large batches match the configuration."""

    def _big_batch(self, model, seed=5, n_strands=40, length=150, depth=25,
                   **kwargs):
        rng = np.random.default_rng(seed)
        strands = rng.integers(0, 4, size=(n_strands, length)).astype(np.uint8)
        engine = BatchedChannelEngine(model, **kwargs)
        batch = engine.sample_pool(strands, depth, rng)
        return strands, batch

    def test_deletion_rate_shrinks_reads(self):
        p = 0.10
        strands, batch = self._big_batch(ErrorModel(0.0, p, 0.0))
        realized = 1.0 - batch.total_bases / (batch.n_reads * strands.shape[1])
        assert realized == pytest.approx(p, abs=0.01)

    def test_insertion_rate_grows_reads(self):
        p = 0.10
        strands, batch = self._big_batch(ErrorModel(p, 0.0, 0.0))
        realized = batch.total_bases / (batch.n_reads * strands.shape[1]) - 1.0
        assert realized == pytest.approx(p, abs=0.01)

    def test_substitution_rate_flips_symbols(self):
        p = 0.12
        strands, batch = self._big_batch(ErrorModel(0.0, 0.0, p))
        length = strands.shape[1]
        mismatches = 0
        for i in range(batch.n_reads):
            read = batch.read(i)
            assert read.size == length  # substitutions never change length
            mismatches += int((read != strands[batch.cluster_ids[i]]).sum())
        realized = mismatches / (batch.n_reads * length)
        assert realized == pytest.approx(p, abs=0.01)

    def test_uniform_split_balances_event_types(self):
        strands, batch = self._big_batch(ErrorModel.uniform(0.09))
        # ins and del rates cancel in expectation: mean length stays L.
        mean_length = batch.total_bases / batch.n_reads
        assert mean_length == pytest.approx(strands.shape[1], rel=0.01)


class TestEngineComposition:
    def test_coverage_model_drives_read_counts(self):
        strands = [random_bases(30, np.random.default_rng(0))
                   for _ in range(200)]
        coverage = GammaCoverage(4, shape=2.0)
        engine = BatchedChannelEngine(ErrorModel.uniform(0.05), coverage)
        batch = engine.sequence(strands, rng=9)
        expected = coverage.sample(len(strands), np.random.default_rng(9))
        np.testing.assert_array_equal(batch.coverage_counts(), expected)
        assert batch.lost_clusters().size > 0  # Gamma dispersion drops some

    def test_synthesis_errors_shared_by_whole_cluster(self):
        strands = [random_bases(120, np.random.default_rng(1))]
        engine = BatchedChannelEngine(
            sequencing_model=ErrorModel.uniform(0.0),
            coverage_model=FixedCoverage(15),
            synthesis_model=ErrorModel.uniform(0.15),
        )
        batch = engine.sequence(strands, rng=2)
        reads = {batch.read_string(i) for i in range(batch.n_reads)}
        assert len(reads) == 1                   # all reads identical
        assert reads.pop() != strands[0]         # but mutated vs the design

    def test_empty_strand_list(self):
        engine = BatchedChannelEngine(ErrorModel.uniform(0.1))
        batch = engine.sequence([], rng=0)
        assert batch.n_clusters == 0 and batch.n_reads == 0

    def test_rate_map_survives_synthesis_lengthening(self):
        """Synthesis insertions can push a molecule past the designed
        length; the sequencing rate map clamps those overflow positions
        to its last entry instead of crashing."""
        length = 40
        rate_map = ErrorRateMap(
            p_insertion=np.zeros(length), p_deletion=np.zeros(length),
            p_substitution=np.full(length, 0.1),
        )
        engine = BatchedChannelEngine(
            sequencing_model=rate_map,
            coverage_model=FixedCoverage(4),
            synthesis_model=ErrorModel(p_insertion=0.3, p_deletion=0.0,
                                       p_substitution=0.0),
        )
        rng = np.random.default_rng(8)
        strands = rng.integers(0, 4, size=(10, length)).astype(np.uint8)
        batch = engine.sequence(strands, rng)
        assert batch.total_bases > 10 * 4 * length  # insertions happened

    def test_simulator_model_reassignment_honored(self):
        """The façades build their engine per call, so swapping the
        public model attributes between calls must take effect."""
        from repro.channel import SequencingSimulator

        strands = [random_bases(30, np.random.default_rng(0))]
        simulator = SequencingSimulator(ErrorModel.uniform(0.0),
                                        FixedCoverage(3))
        noiseless = simulator.sequence_batch(strands, rng=1)
        assert noiseless.read_string(0) == strands[0]
        simulator.error_model = ErrorModel.substitutions_only(0.5)
        noisy = simulator.sequence_batch(strands, rng=1)
        assert noisy.read_string(0) != strands[0]
        simulator.coverage_model = FixedCoverage(7)
        assert simulator.sequence_batch(strands, rng=1).n_reads == 7


class TestErrorRateMap:
    def test_positional_map_localizes_errors(self):
        length = 80
        rates = np.zeros(length)
        rates[length // 2:] = 0.4
        rate_map = ErrorRateMap(
            p_insertion=np.zeros(length), p_deletion=np.zeros(length),
            p_substitution=rates,
        )
        rng = np.random.default_rng(4)
        strands = rng.integers(0, 4, size=(30, length)).astype(np.uint8)
        engine = BatchedChannelEngine(rate_map, FixedCoverage(10))
        batch = engine.sequence(strands, rng)
        front = back = 0
        for i in range(batch.n_reads):
            diff = batch.read(i) != strands[batch.cluster_ids[i]]
            front += int(diff[: length // 2].sum())
            back += int(diff[length // 2:].sum())
        assert front == 0
        realized = back / (batch.n_reads * (length // 2))
        assert realized == pytest.approx(0.4, abs=0.03)

    def test_per_strand_map_rows(self):
        length = 50
        p_sub = np.zeros((2, length))
        p_sub[1] = 0.5
        rate_map = ErrorRateMap(
            p_insertion=np.zeros((2, length)),
            p_deletion=np.zeros((2, length)), p_substitution=p_sub,
        )
        rng = np.random.default_rng(6)
        strands = rng.integers(0, 4, size=(2, length)).astype(np.uint8)
        engine = BatchedChannelEngine(rate_map, FixedCoverage(20))
        batch = engine.sequence(strands, rng)
        for i in range(batch.n_reads):
            mismatches = int((batch.read(i) != strands[batch.cluster_ids[i]]).sum())
            if batch.cluster_ids[i] == 0:
                assert mismatches == 0
            else:
                assert mismatches > 0

    def test_scaled_ramp(self):
        model = ErrorModel.uniform(0.3)
        ramp = ErrorRateMap.scaled(model, np.linspace(0.0, 1.0, 64))
        assert ramp.p_substitution[0] == 0.0
        assert ramp.p_substitution[-1] == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorRateMap(np.zeros(4), np.zeros(5), np.zeros(4))
        with pytest.raises(ValueError):
            ErrorRateMap(np.full(4, 0.6), np.full(4, 0.6), np.zeros(4))
        with pytest.raises(ValueError):
            ErrorRateMap(np.zeros(4), np.zeros(4), np.full(4, -0.1))
        # Map shorter than the template must be rejected at apply time.
        rate_map = ErrorRateMap(np.zeros(4), np.zeros(4), np.full(4, 0.1))
        engine = BatchedChannelEngine(rate_map)
        with pytest.raises(ValueError):
            engine.sequence(["ACGTACGT"], rng=0)


class TestRawPassValidation:
    def test_counts_shape_mismatch(self):
        engine = BatchedChannelEngine(ErrorModel.uniform(0.1))
        with pytest.raises(ValueError):
            engine.sequence_counts(["ACGT"], np.array([1, 2]))
        with pytest.raises(ValueError):
            engine.sequence_counts(["ACGT"], np.array([-1]))
        with pytest.raises(ValueError):
            engine.sample_pool(["ACGT"], depth=0)

    def test_template_set_accepts_all_forms(self):
        from_strings = as_template_set(["ACG", "T"])
        from_arrays = as_template_set([np.array([0, 1, 2], dtype=np.uint8),
                                       np.array([3], dtype=np.uint8)])
        for (buf_a, off_a, len_a), (buf_b, off_b, len_b) in [
            (from_strings, from_arrays)
        ]:
            np.testing.assert_array_equal(buf_a, buf_b)
            np.testing.assert_array_equal(off_a, off_b)
            np.testing.assert_array_equal(len_a, len_b)

    def test_raw_pass_empty(self):
        buffer, offsets, lengths = as_template_set([])
        out, out_lengths = batched_ids_pass(
            buffer, offsets, lengths, np.zeros(0, dtype=np.int64),
            ErrorModel.uniform(0.1), rng=0,
        )
        assert out.size == 0 and out_lengths.size == 0
