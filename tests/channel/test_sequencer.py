"""Tests for the sequencing simulator and read pools."""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    GammaCoverage,
    ReadCluster,
    ReadPool,
    SequencingSimulator,
)
from repro.codec.basemap import random_bases


class TestReadCluster:
    def test_coverage(self):
        cluster = ReadCluster(source_index=0, reads=["ACG", "ACT"])
        assert cluster.coverage == 2
        assert not cluster.is_lost

    def test_lost(self):
        assert ReadCluster(source_index=3).is_lost

    def test_read_indices(self):
        cluster = ReadCluster(source_index=0, reads=["ACG", "T"])
        indices = cluster.read_indices()
        assert len(indices) == 2
        np.testing.assert_array_equal(indices[0], [0, 1, 2])
        np.testing.assert_array_equal(indices[1], [3])

    def test_padded_matrix(self):
        cluster = ReadCluster(source_index=0, reads=["ACG", "T", "ACGTA"])
        matrix, lengths = cluster.padded_matrix(pad=2)
        assert matrix.shape == (3, 7)
        np.testing.assert_array_equal(lengths, [3, 1, 5])
        np.testing.assert_array_equal(matrix[1], [3, -1, -1, -1, -1, -1, -1])
        np.testing.assert_array_equal(matrix[2, :5], [0, 1, 2, 3, 0])
        assert (matrix[2, 5:] == -1).all()

    def test_padded_matrix_lost_cluster(self):
        matrix, lengths = ReadCluster(source_index=1).padded_matrix()
        assert matrix.shape == (0, 0)
        assert lengths.shape == (0,)

    def test_padded_matrix_rejects_negative_pad(self):
        with pytest.raises(ValueError):
            ReadCluster(source_index=0, reads=["ACG"]).padded_matrix(pad=-1)


class TestSequencingSimulator:
    def test_one_cluster_per_strand(self, rng):
        strands = [random_bases(50, rng) for _ in range(8)]
        simulator = SequencingSimulator(ErrorModel.uniform(0.05), FixedCoverage(4))
        clusters = simulator.sequence(strands, rng)
        assert len(clusters) == 8
        assert [c.source_index for c in clusters] == list(range(8))
        assert all(c.coverage == 4 for c in clusters)

    def test_noiseless_reads_equal_strand(self, rng):
        strands = [random_bases(30, rng)]
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(3))
        clusters = simulator.sequence(strands, rng)
        assert all(read == strands[0] for read in clusters[0].reads)

    def test_gamma_coverage_can_drop_strands(self, rng):
        strands = [random_bases(30, rng) for _ in range(300)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.0), GammaCoverage(1.2, shape=1.0)
        )
        clusters = simulator.sequence(strands, rng)
        assert any(c.is_lost for c in clusters)


class TestReadPool:
    def test_nested_prefixes(self, rng):
        strands = [random_bases(40, rng) for _ in range(5)]
        pool = ReadPool(strands, ErrorModel.uniform(0.1), max_coverage=10, rng=1)
        low = pool.clusters_at(3)
        high = pool.clusters_at(7)
        for cluster_low, cluster_high in zip(low, high):
            assert cluster_high.reads[:3] == cluster_low.reads

    def test_coverage_capped_at_pool_depth(self, rng):
        strands = [random_bases(40, rng)]
        pool = ReadPool(strands, ErrorModel.uniform(0.1), max_coverage=5, rng=1)
        assert pool.clusters_at(50)[0].coverage == 5

    def test_zero_coverage(self, rng):
        strands = [random_bases(40, rng)]
        pool = ReadPool(strands, ErrorModel.uniform(0.1), max_coverage=5, rng=1)
        assert pool.clusters_at(0)[0].is_lost

    def test_dispersion_weights_vary_cluster_sizes(self, rng):
        strands = [random_bases(30, rng) for _ in range(200)]
        pool = ReadPool(strands, ErrorModel.uniform(0.05), max_coverage=30,
                        rng=2, dispersion_shape=2.0)
        sizes = [c.coverage for c in pool.clusters_at(10)]
        assert len(set(sizes)) > 3  # genuinely dispersed

    def test_negative_coverage_rejected(self, rng):
        pool = ReadPool([random_bases(10, rng)], ErrorModel.uniform(0.1),
                        max_coverage=2, rng=0)
        with pytest.raises(ValueError):
            pool.clusters_at(-1)

    def test_bad_construction(self, rng):
        with pytest.raises(ValueError):
            ReadPool(["ACGT"], ErrorModel.uniform(0.1), max_coverage=0)
        with pytest.raises(ValueError):
            ReadPool(["ACGT"], ErrorModel.uniform(0.1), max_coverage=3,
                     dispersion_shape=0.0)

    def test_len(self, rng):
        strands = [random_bases(10, rng) for _ in range(4)]
        pool = ReadPool(strands, ErrorModel.uniform(0.0), max_coverage=2, rng=0)
        assert len(pool) == 4
