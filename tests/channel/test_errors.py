"""Tests for the IDS error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel
from repro.codec.basemap import random_bases


class TestConstruction:
    def test_uniform_split(self):
        model = ErrorModel.uniform(0.09)
        assert model.p_insertion == pytest.approx(0.03)
        assert model.p_deletion == pytest.approx(0.03)
        assert model.p_substitution == pytest.approx(0.03)
        assert model.total_rate == pytest.approx(0.09)

    def test_breakdown(self):
        model = ErrorModel.with_breakdown(0.10, 0.25, 0.25, 0.50)
        assert model.p_substitution == pytest.approx(0.05)

    def test_breakdown_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ErrorModel.with_breakdown(0.1, 0.5, 0.5, 0.5)

    def test_substitutions_only(self):
        model = ErrorModel.substitutions_only(0.10)
        assert model.p_insertion == 0 and model.p_deletion == 0

    def test_indels_only(self):
        model = ErrorModel.indels_only(0.05, 0.05)
        assert model.p_substitution == 0
        assert model.total_rate == pytest.approx(0.10)

    def test_rejects_total_over_one(self):
        with pytest.raises(ValueError):
            ErrorModel(p_insertion=0.5, p_deletion=0.5, p_substitution=0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ErrorModel(p_insertion=-0.1, p_deletion=0.0, p_substitution=0.0)

    def test_noiseless_flag(self):
        assert ErrorModel.uniform(0.0).is_noiseless
        assert not ErrorModel.uniform(0.01).is_noiseless


class TestApply:
    def test_noiseless_is_identity(self, rng):
        strand = random_bases(100, rng)
        assert ErrorModel.uniform(0.0).apply(strand, rng) == strand

    def test_empty_strand(self, rng):
        assert ErrorModel.uniform(0.1).apply("", rng) == ""

    def test_deterministic_given_seed(self):
        strand = random_bases(200, rng=0)
        model = ErrorModel.uniform(0.2)
        assert model.apply(strand, rng=7) == model.apply(strand, rng=7)

    def test_substitution_only_preserves_length(self, rng):
        strand = random_bases(300, rng)
        model = ErrorModel.substitutions_only(0.5)
        assert len(model.apply(strand, rng)) == len(strand)

    def test_substitution_always_changes_base(self, rng):
        strand = "A" * 500
        noisy = ErrorModel.substitutions_only(1.0).apply(strand, rng)
        assert "A" not in noisy

    def test_deletion_only_shortens(self, rng):
        strand = random_bases(400, rng)
        model = ErrorModel(p_insertion=0, p_deletion=0.3, p_substitution=0)
        noisy = model.apply(strand, rng)
        assert len(noisy) < len(strand)

    def test_full_deletion(self, rng):
        model = ErrorModel(p_insertion=0, p_deletion=1.0, p_substitution=0)
        assert model.apply("ACGTACGT", rng) == ""

    def test_insertion_only_lengthens(self, rng):
        strand = random_bases(400, rng)
        model = ErrorModel(p_insertion=0.3, p_deletion=0, p_substitution=0)
        noisy = model.apply(strand, rng)
        assert len(noisy) > len(strand)

    def test_insertion_keeps_original_as_subsequence(self, rng):
        strand = random_bases(60, rng)
        model = ErrorModel(p_insertion=0.3, p_deletion=0, p_substitution=0)
        noisy = model.apply(strand, rng)
        iterator = iter(noisy)
        assert all(base in iterator for base in strand)

    def test_rate_statistics(self):
        # Deletion count over many positions concentrates near p_del.
        model = ErrorModel(p_insertion=0.0, p_deletion=0.1, p_substitution=0.0)
        strand = "A" * 20000
        noisy = model.apply(strand, rng=5)
        deleted_fraction = 1 - len(noisy) / len(strand)
        assert 0.08 < deleted_fraction < 0.12

    def test_apply_many_independent(self, rng):
        strand = random_bases(100, rng)
        copies = ErrorModel.uniform(0.2).apply_many(strand, 5, rng)
        assert len(copies) == 5
        assert len(set(copies)) > 1  # overwhelmingly likely to differ


class TestApplyIndicesAlphabet:
    def test_binary_alphabet_stays_binary(self, rng):
        original = rng.integers(0, 2, 500).astype(np.uint8)
        model = ErrorModel.uniform(0.3)
        noisy = model.apply_indices(original, rng, n_alphabet=2)
        assert set(np.unique(noisy)) <= {0, 1}

    def test_binary_substitution_flips(self, rng):
        original = np.zeros(100, dtype=np.uint8)
        model = ErrorModel.substitutions_only(1.0)
        noisy = model.apply_indices(original, rng, n_alphabet=2)
        assert noisy.sum() == 100  # every 0 became 1

    def test_rejects_tiny_alphabet(self, rng):
        with pytest.raises(ValueError):
            ErrorModel.uniform(0.1).apply_indices(
                np.zeros(4, dtype=np.uint8), rng, n_alphabet=1
            )

    @settings(max_examples=30)
    @given(st.integers(0, 10**9), st.floats(0.0, 0.5))
    def test_output_alphabet_always_valid(self, seed, rate):
        local = np.random.default_rng(seed)
        original = local.integers(0, 4, 50).astype(np.uint8)
        noisy = ErrorModel.uniform(rate).apply_indices(original, local)
        if noisy.size:
            assert noisy.max() <= 3
