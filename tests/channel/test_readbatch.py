"""Tests for the columnar ReadBatch container."""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    ReadBatch,
    ReadCluster,
    SequencingSimulator,
)
from repro.codec.basemap import bases_to_indices, random_bases


def make_batch():
    """Three clusters: 2 reads, 0 reads (lost), 3 reads (one empty)."""
    return ReadBatch.from_strings(
        [["ACG", "TTAC"], [], ["A", "", "GGT"]],
        source_indices=[5, 6, 7],
    )


class TestConstruction:
    def test_shape_accounting(self):
        batch = make_batch()
        assert batch.n_clusters == 3
        assert batch.n_reads == 5
        assert batch.total_bases == 11
        np.testing.assert_array_equal(batch.coverage_counts(), [2, 0, 3])
        np.testing.assert_array_equal(batch.lost_clusters(), [1])
        np.testing.assert_array_equal(batch.source_indices, [5, 6, 7])

    def test_read_views_share_buffer(self):
        batch = make_batch()
        view = batch.read(1)
        assert view.base is batch.buffer or view.base is batch.buffer.base
        np.testing.assert_array_equal(view, bases_to_indices("TTAC"))
        assert batch.read_string(4) == "GGT"

    def test_from_clusters_roundtrip(self):
        clusters = [
            ReadCluster(source_index=2, reads=["ACGT", "AC"]),
            ReadCluster(source_index=0, reads=[]),
        ]
        batch = ReadBatch.from_clusters(clusters)
        back = batch.to_clusters()
        assert [c.source_index for c in back] == [2, 0]
        assert [c.reads for c in back] == [["ACGT", "AC"], []]

    def test_validation(self):
        with pytest.raises(ValueError):  # decreasing cluster ids
            ReadBatch(np.zeros(2, np.uint8), [0, 1], [1, 1], [1, 0],
                      n_clusters=2)
        with pytest.raises(ValueError):  # id outside range
            ReadBatch(np.zeros(2, np.uint8), [0, 1], [1, 1], [0, 5],
                      n_clusters=2)
        with pytest.raises(ValueError):  # misaligned per-read arrays
            ReadBatch(np.zeros(2, np.uint8), [0, 1], [1], [0, 0],
                      n_clusters=1)
        with pytest.raises(ValueError):  # source_indices wrong length
            ReadBatch(np.zeros(1, np.uint8), [0], [1], [0], n_clusters=1,
                      source_indices=[1, 2])


class TestSequenceProtocol:
    def test_len_iter_getitem(self):
        batch = make_batch()
        assert len(batch) == 3
        assert [c.source_index for c in batch] == [5, 6, 7]
        assert batch[2].reads == ["A", "", "GGT"]
        assert batch[1].is_lost

    def test_string_backed_cluster_honors_reads_mutation(self):
        """The ``reads`` list is caller-visible state (historical plain
        attribute): mutating it must be reflected by later index/matrix
        views, never served from a stale cache."""
        cluster = ReadCluster(source_index=0, reads=["ACG"])
        assert len(cluster.read_indices()) == 1
        cluster.reads.append("TTT")
        arrays = cluster.read_indices()
        assert len(arrays) == 2
        np.testing.assert_array_equal(arrays[1], bases_to_indices("TTT"))
        assert cluster.coverage == 2
        matrix, _ = cluster.padded_matrix()
        assert matrix.shape == (2, 3)

    def test_cluster_views_are_lazy(self):
        batch = make_batch()
        cluster = batch[0]
        assert cluster._strings is None          # no strings materialized yet
        arrays = cluster.read_indices()
        np.testing.assert_array_equal(arrays[0], bases_to_indices("ACG"))
        assert cluster._strings is None          # still none after array use
        assert cluster.reads == ["ACG", "TTAC"]  # decoded on demand


class TestPaddedMatrix:
    def test_matches_reference_fill_loop(self):
        rng = np.random.default_rng(0)
        reads = [random_bases(rng.integers(1, 30), rng) for _ in range(25)]
        batch = ReadBatch.from_strings([reads])
        matrix, lengths = batch.padded_matrix(pad=3)
        arrays = [bases_to_indices(r) for r in reads]
        expected = np.full((len(arrays), max(len(a) for a in arrays) + 3),
                           -1, dtype=np.int64)
        for i, a in enumerate(arrays):
            expected[i, : len(a)] = a
        np.testing.assert_array_equal(matrix, expected)
        np.testing.assert_array_equal(lengths, [len(a) for a in arrays])

    def test_empty_batch(self):
        batch = ReadBatch.from_strings([[], []])
        matrix, lengths = batch.padded_matrix()
        assert matrix.shape == (0, 0) and lengths.shape == (0,)

    def test_all_empty_reads(self):
        batch = ReadBatch.from_strings([["", ""]])
        matrix, lengths = batch.padded_matrix(pad=2)
        assert matrix.shape == (2, 2)
        assert (matrix == -1).all()
        np.testing.assert_array_equal(lengths, [0, 0])

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            make_batch().padded_matrix(pad=-1)


class TestRestructuring:
    def test_drop_lost(self):
        batch = make_batch()
        live = batch.drop_lost()
        assert live.n_clusters == 2
        np.testing.assert_array_equal(live.source_indices, [5, 7])
        np.testing.assert_array_equal(live.coverage_counts(), [2, 3])
        assert live.buffer is batch.buffer  # zero-copy
        # No lost clusters: same object comes back.
        assert live.drop_lost() is live

    def test_select_prefix_nested(self):
        batch = make_batch()
        one = batch.select_prefix(np.array([1, 1, 1]))
        np.testing.assert_array_equal(one.coverage_counts(), [1, 0, 1])
        assert one[0].reads == ["ACG"]
        assert one[2].reads == ["A"]
        two = batch.select_prefix(np.array([2, 2, 2]))
        assert two[2].reads == ["A", ""]
        assert two.buffer is batch.buffer

    def test_select_prefix_validation(self):
        batch = make_batch()
        with pytest.raises(ValueError):
            batch.select_prefix(np.array([1, 1]))
        with pytest.raises(ValueError):
            batch.select_prefix(np.array([-1, 0, 0]))

    def test_select_clusters(self):
        batch = make_batch()
        tail = batch.select_clusters(1, 3)
        assert tail.n_clusters == 2
        np.testing.assert_array_equal(tail.source_indices, [6, 7])
        assert tail[1].reads == ["A", "", "GGT"]
        assert tail.buffer is batch.buffer
        with pytest.raises(ValueError):
            batch.select_clusters(2, 5)


class TestPooled:
    def test_default_merges_everything_into_one_pool(self):
        batch = make_batch()
        pool = batch.pooled()
        assert pool.n_clusters == 1
        assert pool.n_reads == batch.n_reads
        assert pool.buffer is batch.buffer
        # Without an rng the read order is preserved.
        assert [pool.read_string(i) for i in range(pool.n_reads)] \
            == [batch.read_string(i) for i in range(batch.n_reads)]
        np.testing.assert_array_equal(pool.source_indices, [0])

    def test_group_boundaries_make_one_pool_per_group(self):
        batch = make_batch()
        pool = batch.pooled(np.array([0, 2, 3]))
        assert pool.n_clusters == 2
        np.testing.assert_array_equal(pool.coverage_counts(), [2, 3])

    def test_shuffle_stays_within_pools(self):
        batch = make_batch()
        pool = batch.pooled(np.array([0, 2, 3]), rng=0)
        first = {pool.read_string(i) for i in range(2)}
        assert first == {"ACG", "TTAC"}
        second = {pool.read_string(i) for i in range(2, 5)}
        assert second == {"A", "", "GGT"}

    def test_shuffle_is_deterministic(self):
        batch = make_batch()
        one = batch.pooled(rng=7)
        two = batch.pooled(rng=7)
        np.testing.assert_array_equal(one.offsets, two.offsets)

    def test_empty_batch(self):
        batch = ReadBatch.from_strings([])
        assert batch.pooled().n_clusters == 0

    def test_bad_boundaries_rejected(self):
        batch = make_batch()
        for bad in ([1, 3], [0, 2], [0, 2, 1, 3]):
            with pytest.raises(ValueError):
                batch.pooled(np.array(bad))


class TestSimulatorIntegration:
    def test_batch_and_cluster_paths_agree(self):
        strands = [random_bases(40, np.random.default_rng(i))
                   for i in range(12)]
        simulator = SequencingSimulator(ErrorModel.uniform(0.08),
                                        FixedCoverage(5))
        batch = simulator.sequence_batch(strands, rng=3)
        clusters = simulator.sequence(strands, rng=3)
        assert batch.n_clusters == len(clusters) == 12
        for c, cluster in enumerate(clusters):
            for i, read in enumerate(cluster.read_indices()):
                start, _ = batch.cluster_rows(c)
                np.testing.assert_array_equal(read, batch.read(start + i))

    def test_cluster_padded_matrix_routes_through_batch(self):
        cluster = ReadCluster(source_index=0, reads=["ACG", "T", "ACGTA"])
        matrix, lengths = cluster.padded_matrix(pad=2)
        assert matrix.shape == (3, 7)
        np.testing.assert_array_equal(lengths, [3, 1, 5])
        np.testing.assert_array_equal(matrix[1], [3, -1, -1, -1, -1, -1, -1])
