"""RunManifest construction, serialization and schema validation."""

import json

import numpy as np
import pytest

from repro.core import PipelineConfig
from repro.observability import (
    ManifestError,
    RunManifest,
    SCHEMA_VERSION,
    Tracer,
    build_manifest,
    config_fingerprint,
    validate_manifest,
)


def traced_run():
    tracer = Tracer()
    tracer.context["seed"] = 7
    with tracer.span("store.decode", n_units=np.int64(2)):
        with tracer.span("receive"):
            pass
        with tracer.span("rs.correct"):
            tracer.metrics.counter("rs.codewords").add(20)
            tracer.metrics.histogram("rs.failure_reasons").observe_counts(
                {"ok": 18, "residual syndromes after correction": 2}
            )
    return tracer


class TestFingerprint:
    def test_equal_configs_hash_equal(self):
        assert config_fingerprint(PipelineConfig()) == \
            config_fingerprint(PipelineConfig())

    def test_different_configs_hash_differently(self):
        assert config_fingerprint(PipelineConfig()) != \
            config_fingerprint(PipelineConfig(layout="gini"))

    def test_dicts_are_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})


class TestBuild:
    def test_build_covers_stages_metrics_and_context(self):
        manifest = build_manifest(
            traced_run(), "unit-test", config=PipelineConfig()
        )
        assert manifest.schema == SCHEMA_VERSION
        assert manifest.name == "unit-test"
        assert manifest.context == {"seed": 7}
        assert set(manifest.stages) == {"store.decode", "receive",
                                        "rs.correct"}
        assert manifest.total_seconds > 0
        assert manifest.counter("rs.codewords") == 20
        assert manifest.histogram("rs.failure_reasons")["ok"] == 18
        assert manifest.config["fingerprint"]
        assert manifest.config["values"]["layout"] == "baseline"
        assert manifest.environment["numpy"] == np.__version__

    def test_extra_context_merges_over_tracer_context(self):
        manifest = build_manifest(
            traced_run(), "t", context={"seed": 9, "note": "x"}
        )
        assert manifest.context == {"seed": 9, "note": "x"}

    def test_stage_share_sums_to_one_for_the_root(self):
        manifest = build_manifest(traced_run(), "t")
        assert manifest.stage_share("store.decode") == pytest.approx(1.0)
        assert 0.0 <= manifest.stage_share("receive") <= 1.0
        assert manifest.stage_share("missing") == 0.0

    def test_span_tree_truncation_keeps_stage_totals(self):
        tracer = Tracer()
        for _ in range(30):
            with tracer.span("decode"):
                pass
        manifest = build_manifest(tracer, "t", max_root_spans=25)
        assert len(manifest.spans) == 25
        assert manifest.truncated_roots == 5
        assert manifest.stages["decode"]["calls"] == 30


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        manifest = build_manifest(
            traced_run(), "round-trip", config=PipelineConfig()
        )
        path = manifest.save(tmp_path / "run.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_saved_file_is_valid_json_with_schema(self, tmp_path):
        path = build_manifest(traced_run(), "t").save(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        validate_manifest(data)


class TestValidation:
    def valid(self):
        return build_manifest(traced_run(), "t").to_dict()

    def test_accepts_built_manifest(self):
        data = self.valid()
        assert validate_manifest(data) is data

    def test_rejects_wrong_schema(self):
        data = self.valid()
        data["schema"] = 99
        with pytest.raises(ManifestError, match="schema"):
            validate_manifest(data)

    def test_rejects_missing_name(self):
        data = self.valid()
        data["name"] = ""
        with pytest.raises(ManifestError, match="name"):
            validate_manifest(data)

    def test_rejects_negative_stage_seconds(self):
        data = self.valid()
        data["stages"]["receive"]["seconds"] = -1.0
        with pytest.raises(ManifestError, match="seconds"):
            validate_manifest(data)

    def test_rejects_non_integer_histogram_counts(self):
        data = self.valid()
        data["metrics"]["histograms"]["rs.failure_reasons"]["ok"] = "many"
        with pytest.raises(ManifestError, match="histograms"):
            validate_manifest(data)

    def test_timings_block_is_optional_but_checked(self):
        # Older manifests predate the timing-histogram block: absent is
        # fine (backward compat with committed baselines) ...
        data = self.valid()
        data["metrics"].pop("timings", None)
        assert validate_manifest(data) is data
        # ... present and well-formed is fine ...
        data["metrics"]["timings"] = {
            "lat": {"count": 2, "sum": 0.5,
                    "buckets": {"0.001": 1, "+Inf": 1}},
        }
        assert validate_manifest(data) is data
        # ... malformed is rejected.
        data["metrics"]["timings"]["lat"]["count"] = -1
        with pytest.raises(ManifestError, match="count"):
            validate_manifest(data)
        data["metrics"]["timings"] = {"lat": {"count": 1, "sum": 0.1,
                                              "buckets": {"0.1": "x"}}}
        with pytest.raises(ManifestError, match="buckets"):
            validate_manifest(data)

    def test_rejects_missing_environment_key(self):
        data = self.valid()
        del data["environment"]["numpy"]
        with pytest.raises(ManifestError, match="environment.numpy"):
            validate_manifest(data)

    def test_collects_every_problem(self):
        data = self.valid()
        data["name"] = ""
        data["total_seconds"] = -1
        try:
            validate_manifest(data)
        except ManifestError as exc:
            assert len(exc.problems) == 2
        else:
            pytest.fail("expected ManifestError")

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ManifestError):
            RunManifest.load(path)
