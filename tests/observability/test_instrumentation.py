"""Decode-path instrumentation: spans, counters and emitted manifests.

The acceptance bar for the telemetry layer: a pool decode run under an
active tracer leaves one schema-valid :class:`RunManifest` covering the
channel, clustering, consensus, receive and RS stages with nonzero
pipeline counters — and the ``repro.cli report`` subcommand renders and
diffs that evidence.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.cli import main as cli_main
from repro.core import MatrixConfig, PipelineConfig
from repro.core.store import DnaStore
from repro.observability import Tracer, use_tracer, validate_manifest

MATRIX = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)


def traced_pool_decode(seed=3, rate=0.05):
    """Run sequence_store + decode_pool under one tracer; return
    (tracer, decoded bits, report, payload bits)."""
    store = DnaStore(PipelineConfig(matrix=MATRIX))
    rng = np.random.default_rng(17)
    bits = rng.integers(0, 2, 2 * store.unit_capacity_bits - 5)
    bits = bits.astype(np.uint8)
    image = store.encode(bits)
    simulator = SequencingSimulator(
        ErrorModel.uniform(rate), FixedCoverage(8)
    )
    tracer = Tracer()
    tracer.context["seed"] = seed
    with use_tracer(tracer):
        pool = simulator.sequence_store(image, rng=seed, labeled=False)
        decoded, report = store.decode_pool(pool, bits.size)
    return tracer, decoded, report, bits


@pytest.fixture(scope="module")
def traced_run():
    return traced_pool_decode()


class TestDecodePoolManifest:
    def test_decode_still_round_trips_under_tracing(self, traced_run):
        _, decoded, report, bits = traced_run
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_manifest_emitted_and_schema_valid(self, traced_run):
        tracer = traced_run[0]
        assert len(tracer.manifests) == 1
        manifest = tracer.manifests[0]
        assert manifest.name == "store.decode_pool"
        assert validate_manifest(manifest.to_dict()) is not None

    def test_manifest_covers_every_pipeline_stage(self, traced_run):
        manifest = traced_run[0].manifests[0]
        for stage in (
            "channel.sequence",      # sequencing the pool
            "cluster.pools",         # recovering unlabeled clusters
            "consensus.reconstruct",  # trace reconstruction
            "pipeline.receive_many",  # index parse + column assembly
            "rs.decode_words",       # RS errata correction
            "store.decode_pool",     # the enclosing store span
        ):
            assert stage in manifest.stages, stage
            assert manifest.stages[stage]["seconds"] >= 0.0
            assert manifest.stages[stage]["calls"] >= 1

    def test_manifest_counters_are_nonzero(self, traced_run):
        manifest = traced_run[0].manifests[0]
        for counter in (
            "channel.strands_in",
            "channel.reads_out",
            "cluster.reads_in",
            "cluster.recovered_clusters",
            "consensus.clusters",
            "receive.clusters_in",
            "receive.units_out",
            "rs.codewords",
        ):
            assert manifest.counter(counter) > 0, counter
        reasons = manifest.histogram("rs.failure_reasons")
        assert sum(reasons.values()) == manifest.counter("rs.codewords")

    def test_manifest_carries_config_and_context(self, traced_run):
        manifest = traced_run[0].manifests[0]
        assert manifest.config["fingerprint"]
        assert manifest.config["values"]["matrix"]["n_columns"] == 40
        assert manifest.context["seed"] == 3

    def test_labeled_decode_emits_manifest_too(self):
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        rng = np.random.default_rng(23)
        bits = rng.integers(0, 2, store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), FixedCoverage(6)
        )
        batch = simulator.sequence_store(image, rng=7)
        tracer = Tracer()
        with use_tracer(tracer):
            decoded, report = store.decode(batch, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
        manifest = tracer.manifests[0]
        assert manifest.name == "store.decode"
        assert "rs.decode_words" in manifest.stages
        assert manifest.counter("rs.codewords") > 0

    def test_auto_manifest_off_records_spans_but_emits_nothing(self):
        """Long decode loops (the benchmark harness) switch off the
        per-decode store manifest and build one aggregate at the end —
        spans and counters must keep recording."""
        from repro.observability import build_manifest

        store = DnaStore(PipelineConfig(matrix=MATRIX))
        rng = np.random.default_rng(31)
        bits = rng.integers(0, 2, store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), FixedCoverage(6)
        )
        batch = simulator.sequence_store(image, rng=5)
        tracer = Tracer()
        tracer.auto_manifest = False
        with use_tracer(tracer):
            for _ in range(3):
                store.decode(batch, bits.size)
        assert tracer.manifests == []
        aggregate = build_manifest(tracer, "sweep")
        assert aggregate.stages["store.decode"]["calls"] == 3
        assert aggregate.counter("rs.codewords") > 0


class TestCliReport:
    def test_report_renders_saved_manifest(self, traced_run, tmp_path,
                                           capsys):
        path = traced_run[0].manifests[0].save(tmp_path / "run.json")
        assert cli_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Run manifest: store.decode_pool" in out
        assert "## Stages" in out
        assert "rs.decode_words" in out

    def test_report_diffs_two_manifests(self, traced_run, tmp_path, capsys):
        base = traced_run[0].manifests[0].save(tmp_path / "base.json")
        fresh_tracer = traced_pool_decode(seed=4, rate=0.06)[0]
        fresh = fresh_tracer.manifests[0].save(tmp_path / "fresh.json")
        assert cli_main(["report", str(fresh), str(base)]) == 0
        out = capsys.readouterr().out
        assert "# Manifest diff" in out
        assert "## Stage deltas" in out

    def test_report_rejects_invalid_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 1}')
        assert cli_main(["report", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err.lower()

    def test_report_missing_file(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "nope.json")]) == 1
        assert capsys.readouterr().err
