"""Text rendering and diffing of run manifests."""

from repro.observability import (
    Tracer,
    build_manifest,
    diff_manifests,
    render_manifest,
)


def manifest(name="run", counter=100, extra_stage_spans=0, config=None):
    tracer = Tracer()
    tracer.context["seed"] = 42
    with tracer.span("decode"):
        with tracer.span("cluster"):
            pass
        tracer.metrics.counter("rs.codewords").add(counter)
        tracer.metrics.gauge("coverage").set(10)
        tracer.metrics.histogram("rs.failure_reasons").observe_counts(
            {"ok": counter - 2, "erasures exceed correction capability": 2}
        )
    for _ in range(extra_stage_spans):
        with tracer.span("retry"):
            pass
    return build_manifest(tracer, name, config=config)


class TestRender:
    def test_render_covers_every_section(self):
        text = render_manifest(manifest())
        assert text.startswith("# Run manifest: run\n")
        assert "- total traced:" in text
        assert "- context:      seed=42" in text
        assert "## Stages" in text
        assert "decode" in text and "cluster" in text
        assert "## Counters" in text
        assert "rs.codewords" in text and "100" in text
        assert "## Gauges" in text and "coverage" in text
        assert "## Histograms" in text
        assert "### rs.failure_reasons" in text
        assert "erasures exceed correction capability" in text

    def test_render_accepts_plain_dict(self):
        text = render_manifest(manifest().to_dict())
        assert "# Run manifest: run" in text

    def test_stages_sorted_heaviest_first(self):
        text = render_manifest(manifest())
        stages = text.split("## Stages")[1].split("##")[0]
        assert stages.index("decode") < stages.index("cluster")

    def test_truncation_is_reported(self):
        m = manifest(extra_stage_spans=40)
        assert m.truncated_roots > 0
        assert "span tree truncated" in render_manifest(m)


class TestDiff:
    def test_unchanged_config_and_counter_deltas(self):
        text = diff_manifests(manifest("base"), manifest("fresh", counter=120))
        assert text.startswith("# Manifest diff: base -> fresh\n")
        assert "(unchanged)" in text
        assert "CONFIG CHANGED" not in text
        assert "## Stage deltas" in text
        assert "## Counter deltas" in text
        assert "rs.codewords" in text
        assert "+20" in text

    def test_config_change_is_flagged(self):
        text = diff_manifests(
            manifest(config={"rate": 0.04}),
            manifest(config={"rate": 0.06}),
        )
        assert "CONFIG CHANGED" in text

    def test_one_sided_stages_marked(self):
        base = manifest("base")
        fresh = manifest("fresh", extra_stage_spans=3)
        text = diff_manifests(base, fresh)
        assert "retry" in text
        assert "(new)" in text
        assert "(gone)" in diff_manifests(fresh, base)

    def test_identical_counters_noted(self):
        text = diff_manifests(manifest(), manifest())
        assert "(no counter changed)" in text
