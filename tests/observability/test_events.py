"""EventLog: bounded ring, JSON-lines serialization, file sink."""

import json

import pytest

from repro.observability import EventLog


class TestRing:
    def test_emit_records_event_and_monotonic_offset(self):
        log = EventLog()
        first = log.emit("submit", request_id=0, object_id="a")
        second = log.emit("submit", request_id=1, object_id="b")
        assert first["event"] == "submit"
        assert first["request_id"] == 0
        assert second["t"] >= first["t"] >= 0.0

    def test_capacity_bounds_the_ring(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("submit", request_id=i)
        assert len(log) == 3
        assert [r["request_id"] for r in log.records()] == [7, 8, 9]
        assert log.emitted == 10  # lifetime count survives the drops

    def test_records_filter_and_tail(self):
        log = EventLog()
        log.emit("submit", request_id=0)
        log.emit("complete", request_id=0)
        log.emit("submit", request_id=1)
        assert [r["request_id"] for r in log.records("submit")] == [0, 1]
        assert [r["event"] for r in log.tail(2)] == ["complete", "submit"]

    def test_clear_keeps_lifetime_count(self):
        log = EventLog()
        log.emit("submit")
        log.clear()
        assert len(log) == 0
        assert log.emitted == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("submit", request_id=0, object_id="obj0", queue_depth=1)
        log.emit("complete", request_id=0, object_id="obj0",
                 cache_hit=False, clean=True, seconds=0.01)
        path = log.save(tmp_path / "events.jsonl")
        loaded = EventLog.load_jsonl(path)
        assert [r["event"] for r in loaded] == ["submit", "complete"]
        assert loaded[1]["clean"] is True
        assert loaded[1]["seconds"] == 0.01

    def test_each_line_is_self_describing_json(self):
        log = EventLog()
        log.emit("coalesce", tick=0, n_requests=4, n_objects=2)
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "coalesce"
        assert record["n_requests"] == 4
        assert "t" in record

    def test_non_json_fields_fall_back_to_str(self):
        class Oid:
            def __str__(self):
                return "oid-7"

        log = EventLog()
        log.emit("submit", object_id=Oid())
        record = json.loads(log.to_jsonl())
        assert record["object_id"] == "oid-7"


class TestFileSink:
    def test_sink_appends_as_events_happen(self, tmp_path):
        path = tmp_path / "live.jsonl"
        log = EventLog(path=path)
        log.emit("submit", request_id=0)
        # Flushed immediately: a tailing log shipper sees it now.
        assert len(path.read_text().splitlines()) == 1
        log.emit("complete", request_id=0)
        assert len(path.read_text().splitlines()) == 2
        log.close()
        assert [r["event"] for r in EventLog.load_jsonl(path)] == [
            "submit", "complete",
        ]

    def test_sink_survives_ring_eviction(self, tmp_path):
        path = tmp_path / "live.jsonl"
        log = EventLog(path=path, capacity=2)
        for i in range(5):
            log.emit("submit", request_id=i)
        log.close()
        assert len(EventLog.load_jsonl(path)) == 5  # file keeps them all
        assert len(log) == 2

    def test_close_keeps_ring_usable(self, tmp_path):
        log = EventLog(path=tmp_path / "x.jsonl")
        log.emit("submit")
        log.close()
        log.emit("complete")  # no sink anymore, ring still records
        assert len(log) == 2
