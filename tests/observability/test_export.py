"""Prometheus exposition round-trip and ServiceHealth verdicts."""

import pytest

from repro.observability import (
    MetricRegistry,
    SLOThresholds,
    SlidingWindow,
    capture_health,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    verify_roundtrip,
)


def populated_registry() -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("service.requests").add(128)
    registry.counter("service.ticks").add(16)
    registry.gauge("service.queue_depth").set(3)
    registry.histogram("service.read_outcomes").observe("clean", 120)
    registry.histogram("service.read_outcomes").observe("failed", 8)
    timing = registry.timing("service.request_seconds")
    timing.observe_many([0.001, 0.002, 0.004, 0.05, 1.5])
    return registry


class TestRender:
    def test_type_lines_and_prefix(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_service_requests counter" in text
        assert "repro_service_requests 128" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert 'repro_service_read_outcomes{label="clean"} 120' in text

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        text = render_prometheus(populated_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_service_request_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert bucket_lines[-1].startswith(
            'repro_service_request_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 5
        assert "repro_service_request_seconds_count 5" in text

    def test_name_sanitization(self):
        assert sanitize_metric_name("rs.failure-reasons") == \
            "rs_failure_reasons"
        registry = MetricRegistry()
        registry.counter("weird.name-with/chars").add(1)
        text = render_prometheus(registry)
        assert "repro_weird_name_with_chars 1" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricRegistry()) == ""

    def test_accepts_snapshot_dict(self):
        registry = populated_registry()
        assert render_prometheus(registry.snapshot()) == \
            render_prometheus(registry)


class TestRoundTrip:
    def test_parse_inverts_render(self):
        registry = populated_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["counters"]["repro_service_requests"] == 128
        assert parsed["gauges"]["repro_service_queue_depth"] == 3
        assert parsed["histograms"]["repro_service_read_outcomes"] == {
            "clean": 120, "failed": 8,
        }
        timing = parsed["timings"]["repro_service_request_seconds"]
        assert timing["count"] == 5
        assert timing["sum"] == pytest.approx(1.557)
        snap = registry.snapshot()["timings"]["service.request_seconds"]
        assert timing["buckets"] == snap["buckets"]

    def test_verify_roundtrip_returns_text(self):
        registry = populated_registry()
        text = verify_roundtrip(registry)
        assert text == render_prometheus(registry)

    def test_label_escaping_survives(self):
        registry = MetricRegistry()
        registry.histogram("reasons").observe('tricky "label"\nnewline')
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["histograms"]["repro_reasons"] == {
            'tricky "label"\nnewline': 1,
        }
        verify_roundtrip(registry)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition format")

    def test_parse_rejects_untyped_sample(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus("mystery_metric 1")

    def test_verify_flags_sanitization_collision(self):
        registry = MetricRegistry()
        registry.counter("a.b").add(1)
        registry.counter("a/b").add(2)  # both expose as repro_a_b
        with pytest.raises(ValueError, match="collision"):
            verify_roundtrip(registry)


class TestServiceHealth:
    # populated_registry's timing tops out at 1.5 s and its outcomes run
    # 6.25% failed, so the health tests that expect "ok" loosen those
    # tiers above the populated values.
    LOOSE = SLOThresholds(degraded_p99_seconds=5.0,
                          unhealthy_p99_seconds=10.0,
                          degraded_failure_rate=0.10,
                          unhealthy_failure_rate=0.50)

    def test_healthy_snapshot(self):
        registry = populated_registry()
        health = capture_health(registry, queue_depth=3,
                                slo=self.LOOSE, elapsed_seconds=10.0)
        assert health.verdict == "ok"
        assert health.checks == {
            "latency": "ok", "queue": "ok", "failures": "ok",
        }
        # Lifetime fallback rate: answers counter absent -> 0 req/s.
        registry.counter("service.answers").add(128)
        health = capture_health(registry, queue_depth=3,
                                slo=self.LOOSE, elapsed_seconds=10.0)
        assert health.requests_per_second == pytest.approx(12.8)
        assert health.p99_seconds > 0

    def test_verdict_flips_degraded_then_unhealthy(self):
        registry = MetricRegistry()
        registry.timing("service.request_seconds").observe(1.0)  # slow
        slo = SLOThresholds(degraded_p99_seconds=0.5,
                            unhealthy_p99_seconds=2.0)
        health = capture_health(registry, slo=slo)
        assert health.checks["latency"] == "degraded"
        assert health.verdict == "degraded"

        registry.timing("service.request_seconds").observe(30.0)
        health = capture_health(registry, slo=slo)
        assert health.checks["latency"] == "unhealthy"
        assert health.verdict == "unhealthy"

    def test_queue_and_failure_checks(self):
        registry = MetricRegistry()
        outcomes = registry.histogram("service.read_outcomes")
        outcomes.observe("clean", 80)
        outcomes.observe("failed", 20)  # 20% failures
        health = capture_health(registry, queue_depth=1000)
        assert health.checks["queue"] == "unhealthy"
        assert health.checks["failures"] == "unhealthy"
        assert health.failure_rate == pytest.approx(0.20)
        assert health.failure_reasons == {"failed": pytest.approx(0.20)}

    def test_rs_failure_reasons_preferred_when_present(self):
        registry = MetricRegistry()
        registry.histogram("service.read_outcomes").observe("clean", 9)
        registry.histogram("service.read_outcomes").observe("failed", 1)
        reasons = registry.histogram("rs.failure_reasons")
        reasons.observe("ok", 9)
        reasons.observe("erasures exceed correction capability", 1)
        health = capture_health(registry)
        assert health.failure_reasons == {
            "erasures exceed correction capability": pytest.approx(0.1),
        }

    def test_cache_hit_rate_from_stats_and_floor_check(self):
        registry = MetricRegistry()
        stats = {"hits": 30, "misses": 70}
        slo = SLOThresholds(min_cache_hit_rate=0.5)
        health = capture_health(registry, cache_stats=stats, slo=slo)
        assert health.cache_hit_rate == pytest.approx(0.30)
        assert health.checks["cache"] == "degraded"
        assert health.verdict == "degraded"

    def test_windowed_rates_and_quantiles(self):
        registry = MetricRegistry()
        window = SlidingWindow(registry, n_intervals=4)
        registry.counter("service.answers").add(50)
        registry.timing("service.request_seconds").observe_many(
            [0.001] * 50
        )
        window.roll(seconds=2.0)
        health = capture_health(registry, window=window)
        assert health.requests_per_second == pytest.approx(25.0)
        assert health.window_seconds == pytest.approx(2.0)
        assert 0.0 < health.p50_seconds < 0.01

    def test_to_dict_and_summary(self):
        health = capture_health(populated_registry(), queue_depth=2,
                                slo=self.LOOSE)
        as_dict = health.to_dict()
        assert as_dict["verdict"] == "ok"
        assert as_dict["queue_depth"] == 2
        assert "latency" in as_dict["checks"]
        line = health.summary()
        assert line.startswith("health: ok")
        assert "p99" in line and "queue 2" in line
