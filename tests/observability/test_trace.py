"""Tracer, span-tree and thread-local activation semantics."""

import threading

import numpy as np
import pytest

from repro.observability import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    get_tracer,
    traced,
    use_tracer,
)
from repro.observability.trace import _NULL_SPAN


class TestNullPath:
    def test_default_tracer_is_the_null_singleton(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.is_recording

    def test_null_span_is_one_shared_object(self):
        a = NULL_TRACER.span("anything", rows=3)
        b = NULL_TRACER.span("else")
        assert a is b is _NULL_SPAN
        with a as span:
            span.set(ignored=1)  # no-op, no state

    def test_null_metrics_are_no_ops(self):
        NULL_TRACER.metrics.counter("x").add(5)
        NULL_TRACER.metrics.gauge("y").set(2)
        NULL_TRACER.metrics.histogram("z").observe("label")
        snapshot = NULL_TRACER.metrics.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {},
                            "timings": {}}


class TestActivation:
    def test_use_tracer_activates_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_nests(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer

    def test_use_tracer_restores_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_activation_is_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["tracer"] = get_tracer()

        with use_tracer(tracer):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["tracer"] is NULL_TRACER


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child.a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child.b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_durations_are_monotonic_and_inclusive(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.seconds >= inner.seconds >= 0.0
        assert tracer.total_seconds() == pytest.approx(outer.seconds)

    def test_attributes_at_open_and_mid_span(self):
        tracer = Tracer()
        with tracer.span("stage", rows=np.int64(12)) as span:
            span.set(dirty=np.int32(3), note="ok")
        record = tracer.roots[0]
        # numpy scalars are coerced to plain ints for JSON-readiness.
        assert record.attributes == {"rows": 12, "dirty": 3, "note": "ok"}
        assert isinstance(record.attributes["rows"], int)

    def test_exception_closes_the_whole_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("unwind")
        assert tracer.roots[0].t_end is not None
        assert tracer.roots[0].children[0].t_end is not None
        # The tracer is reusable afterwards: new spans become new roots.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_find_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("target", which="first"):
                pass
        with tracer.span("target", which="second"):
            pass
        assert tracer.find("target").attributes["which"] == "first"
        assert tracer.find("missing") is None

    def test_stage_totals_aggregate_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                with tracer.span("sub"):
                    pass
        totals = tracer.stage_totals()
        assert totals["stage"]["calls"] == 3
        assert totals["sub"]["calls"] == 3
        assert totals["stage"]["seconds"] >= totals["sub"]["seconds"]

    def test_open_span_reports_zero_seconds(self):
        record = SpanRecord(name="open", t_start=1.0)
        assert record.seconds == 0.0

    def test_to_dict_shape(self):
        tracer = Tracer()
        with tracer.span("root", n=np.int64(2)):
            with tracer.span("child"):
                pass
        data = tracer.roots[0].to_dict()
        assert data["name"] == "root"
        assert data["attributes"] == {"n": 2}
        assert data["seconds"] >= 0
        assert data["children"][0]["name"] == "child"


class TestDecorator:
    def test_traced_uses_active_tracer(self):
        tracer = Tracer()

        @traced("my.stage", fixed=1)
        def work(x):
            return x * 2

        with use_tracer(tracer):
            assert work(21) == 42
        assert tracer.roots[0].name == "my.stage"
        assert tracer.roots[0].attributes == {"fixed": 1}

    def test_traced_defaults_to_qualname_and_is_free_when_off(self):
        @traced()
        def helper():
            return "done"

        assert helper() == "done"  # no tracer active: pure no-op path
