"""Metric instruments and registry snapshot semantics."""

from repro.observability import MetricRegistry, NULL_REGISTRY


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        counter = registry.counter("rows")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_is_get_or_create(self):
        registry = MetricRegistry()
        registry.counter("x").add(1)
        registry.counter("x").add(2)
        assert registry.counter("x").value == 3

    def test_gauge_last_value_wins(self):
        registry = MetricRegistry()
        gauge = registry.gauge("active")
        assert gauge.value is None
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_counts_labels(self):
        registry = MetricRegistry()
        hist = registry.histogram("reasons")
        hist.observe("ok", 10)
        hist.observe("ok")
        hist.observe("bad")
        assert hist.counts == {"ok": 11, "bad": 1}
        assert hist.total == 12

    def test_histogram_merges_count_dicts(self):
        hist = MetricRegistry().histogram("reasons")
        hist.observe_counts({"ok": 2, "bad": 1})
        hist.observe_counts({"ok": 3})
        assert hist.counts == {"ok": 5, "bad": 1}

    def test_histogram_stringifies_labels(self):
        hist = MetricRegistry().histogram("codes")
        hist.observe(0)
        hist.observe(0)
        assert hist.counts == {"0": 2}


class TestSnapshot:
    def test_snapshot_is_plain_sorted_dicts(self):
        registry = MetricRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("set").set(9)
        registry.gauge("unset")  # never set: excluded from the snapshot
        registry.histogram("h").observe("z")
        registry.histogram("h").observe("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"set": 9}
        assert list(snapshot["histograms"]["h"]) == ["a", "z"]

    def test_empty_registry_snapshot(self):
        assert MetricRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestNullRegistry:
    def test_shared_no_op_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")

    def test_operations_leave_no_state(self):
        NULL_REGISTRY.counter("c").add(10)
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe("x")
        NULL_REGISTRY.histogram("h").observe_counts({"y": 2})
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
