"""Metric instruments and registry snapshot semantics."""

import math

import numpy as np
import pytest

from repro.observability import (
    MetricRegistry,
    NULL_REGISTRY,
    SlidingWindow,
    TimingHistogram,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        counter = registry.counter("rows")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_is_get_or_create(self):
        registry = MetricRegistry()
        registry.counter("x").add(1)
        registry.counter("x").add(2)
        assert registry.counter("x").value == 3

    def test_gauge_last_value_wins(self):
        registry = MetricRegistry()
        gauge = registry.gauge("active")
        assert gauge.value is None
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_gauge_add_increments_and_decrements(self):
        gauge = MetricRegistry().gauge("depth")
        gauge.add()        # unset gauge starts from 0
        gauge.add(4)
        gauge.add(-2)
        assert gauge.value == 3
        gauge.set(10)
        gauge.add(-10)
        assert gauge.value == 0

    def test_histogram_counts_labels(self):
        registry = MetricRegistry()
        hist = registry.histogram("reasons")
        hist.observe("ok", 10)
        hist.observe("ok")
        hist.observe("bad")
        assert hist.counts == {"ok": 11, "bad": 1}
        assert hist.total == 12

    def test_histogram_merges_count_dicts(self):
        hist = MetricRegistry().histogram("reasons")
        hist.observe_counts({"ok": 2, "bad": 1})
        hist.observe_counts({"ok": 3})
        assert hist.counts == {"ok": 5, "bad": 1}

    def test_histogram_stringifies_labels(self):
        hist = MetricRegistry().histogram("codes")
        hist.observe(0)
        hist.observe(0)
        assert hist.counts == {"0": 2}


class TestSnapshot:
    def test_snapshot_is_plain_sorted_dicts(self):
        registry = MetricRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("set").set(9)
        registry.gauge("unset")  # never set: excluded from the snapshot
        registry.histogram("h").observe("z")
        registry.histogram("h").observe("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"set": 9}
        assert list(snapshot["histograms"]["h"]) == ["a", "z"]

    def test_empty_registry_snapshot(self):
        assert MetricRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timings": {},
        }


class TestNullRegistry:
    def test_shared_no_op_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.timing("a") is NULL_REGISTRY.timing("b")

    def test_operations_leave_no_state(self):
        NULL_REGISTRY.counter("c").add(10)
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.gauge("g").add(2)
        NULL_REGISTRY.histogram("h").observe("x")
        NULL_REGISTRY.histogram("h").observe_counts({"y": 2})
        NULL_REGISTRY.timing("t").observe(0.5)
        assert NULL_REGISTRY.timing("t").quantile(0.5) == 0.0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timings": {},
        }


class TestTimingHistogram:
    def test_quantiles_within_one_bucket_of_exact(self):
        # The acceptance contract: the estimate is the upper bound of
        # the bucket holding the exact percentile (clamped to the
        # observed max), so it is never below the exact value and never
        # past the next bucket boundary.
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-4.0, sigma=1.5, size=5_000)
        hist = TimingHistogram("t", buckets_per_decade=5)
        hist.observe_many(values)
        ratio = 10.0 ** (1.0 / 5)  # one bucket's relative width
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            estimate = hist.quantile(q)
            assert exact <= estimate <= exact * ratio * (1 + 1e-9), (
                f"q={q}: exact {exact}, estimate {estimate}"
            )

    def test_bounded_memory_and_overflow(self):
        hist = TimingHistogram("t", lowest=1e-3, highest=10.0,
                               buckets_per_decade=2)
        n_buckets = len(hist.counts)
        hist.observe_many([1e-6, 5000.0, 0.02] * 1000)
        assert len(hist.counts) == n_buckets  # fixed layout, never grows
        assert hist.count == 3000
        assert hist.quantile(1.0) == 5000.0  # overflow reports observed max
        assert hist.quantile(0.0) <= 1e-3    # underflow lands in bucket 0

    def test_mean_sum_min_max(self):
        hist = TimingHistogram("t")
        hist.observe(0.1)
        hist.observe(0.3)
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.4)
        assert hist.mean == pytest.approx(0.2)
        assert hist.min_value == pytest.approx(0.1)
        assert hist.max_value == pytest.approx(0.3)

    def test_empty_quantile_is_zero(self):
        assert TimingHistogram("t").quantile(0.99) == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = TimingHistogram("t")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError):
            TimingHistogram("t", lowest=0.0)
        with pytest.raises(ValueError):
            TimingHistogram("t", lowest=1.0, highest=0.5)
        with pytest.raises(ValueError):
            TimingHistogram("t", buckets_per_decade=0)

    def test_snapshot_shape(self):
        hist = TimingHistogram("t")
        hist.observe(0.01)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.01)
        assert sum(snap["buckets"].values()) == 1
        # Bucket keys parse back to floats ("+Inf" for overflow).
        for key in snap["buckets"]:
            assert key == "+Inf" or math.isfinite(float(key))

    def test_registry_snapshot_includes_nonempty_timings_only(self):
        registry = MetricRegistry()
        registry.timing("empty")
        registry.timing("used").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["timings"]) == ["used"]
        assert snapshot["timings"]["used"]["count"] == 1


class TestSlidingWindow:
    def test_rates_cover_the_window_not_lifetime(self):
        registry = MetricRegistry()
        window = SlidingWindow(registry, n_intervals=3)
        registry.counter("reqs").add(100)
        window.roll(seconds=1.0)
        registry.counter("reqs").add(10)
        window.roll(seconds=1.0)
        assert window.total("reqs") == 110
        assert window.rate("reqs") == pytest.approx(55.0)

    def test_old_intervals_are_forgotten(self):
        registry = MetricRegistry()
        window = SlidingWindow(registry, n_intervals=2)
        registry.counter("reqs").add(1000)
        registry.timing("lat").observe(100.0)  # a terrible early latency
        window.roll(seconds=1.0)
        for _ in range(2):  # two fresh intervals push the burst out
            registry.counter("reqs").add(10)
            registry.timing("lat").observe(0.001)
            window.roll(seconds=1.0)
        assert window.total("reqs") == 20
        assert window.rate("reqs") == pytest.approx(10.0)
        assert window.timing_count("lat") == 2
        # The window quantile reflects only the recent 1ms observations,
        # not the forgotten 100s outlier.
        assert window.quantile("lat", 0.99) < 0.01

    def test_quantile_merges_intervals(self):
        registry = MetricRegistry()
        window = SlidingWindow(registry, n_intervals=4)
        for value in (0.001, 0.002):
            registry.timing("lat").observe(value)
            window.roll(seconds=1.0)
        assert window.timing_count("lat") == 2
        assert window.timing_mean("lat") == pytest.approx(0.0015)
        assert window.quantile("lat", 0.5) >= 0.001

    def test_empty_window_is_zero(self):
        registry = MetricRegistry()
        window = SlidingWindow(registry, n_intervals=2)
        assert window.rate("anything") == 0.0
        assert window.quantile("anything", 0.5) == 0.0
        assert window.window_seconds == 0.0

    def test_rejects_bad_interval_count(self):
        with pytest.raises(ValueError):
            SlidingWindow(MetricRegistry(), n_intervals=0)
