"""Property-based tests over the whole pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

_LAYOUTS = ["baseline", "gini", "dnamapper"]


@st.composite
def _geometries(draw):
    rows = draw(st.integers(2, 10))
    nsym = draw(st.integers(0, 8))
    n_columns = draw(st.integers(nsym + 2, 40))
    return MatrixConfig(m=8, n_columns=n_columns, nsym=nsym,
                        payload_rows=rows)


class TestPipelineProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_geometries(), st.sampled_from(_LAYOUTS), st.integers(0, 2**31))
    def test_noiseless_roundtrip_any_geometry(self, matrix, layout, seed):
        if layout == "gini" and matrix.nsym == 0:
            pass  # still valid; diagonal geometry without parity
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=matrix, layout=layout)
        )
        rng = np.random.default_rng(seed)
        n_bits = int(rng.integers(0, pipeline.capacity_bits + 1))
        bits = rng.integers(0, 2, n_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        clusters = simulator.sequence(unit.strands, rng)
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**31), st.sampled_from(_LAYOUTS))
    def test_roundtrip_with_arbitrary_ranking(self, seed, layout):
        matrix = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=5)
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=matrix, layout=layout)
        )
        rng = np.random.default_rng(seed)
        n_bits = int(rng.integers(1, pipeline.capacity_bits + 1))
        bits = rng.integers(0, 2, n_bits).astype(np.uint8)
        ranking = rng.permutation(n_bits)
        unit = pipeline.encode(bits, ranking=ranking)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        clusters = simulator.sequence(unit.strands, rng)
        decoded, _ = pipeline.decode(clusters, n_bits, ranking=ranking)
        np.testing.assert_array_equal(decoded, bits)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**31))
    def test_erasures_within_budget_always_recoverable(self, seed):
        matrix = MatrixConfig(m=8, n_columns=30, nsym=8, payload_rows=4)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix, layout="gini"))
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        clusters = simulator.sequence(unit.strands, rng)
        n_lost = int(rng.integers(0, matrix.nsym + 1))
        for column in rng.choice(matrix.n_columns, n_lost, replace=False):
            clusters[column].reads.clear()
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**31))
    def test_decode_never_crashes_under_heavy_noise(self, seed):
        """Whatever the channel does, decode returns bits and a report."""
        matrix = MatrixConfig(m=8, n_columns=20, nsym=4, payload_rows=4)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.4), FixedCoverage(2)
        )
        clusters = simulator.sequence(unit.strands, rng)
        decoded, report = pipeline.decode(clusters, bits.size)
        assert decoded.shape == (bits.size,)
        assert set(np.unique(decoded)) <= {0, 1}
