"""Integration tests asserting the paper's headline qualitative claims.

Each test is a miniature version of one of the paper's evaluation
results; the full-scale versions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis import (
    errors_per_codeword,
    gini_coefficient,
    min_coverage_for_error_free,
)
from repro.channel import ErrorModel, ReadPool
from repro.core import (
    BaselineLayout,
    DnaStoragePipeline,
    GiniLayout,
    MatrixConfig,
    PipelineConfig,
)

MATRIX = MatrixConfig(m=8, n_columns=90, nsym=17, payload_rows=14)


def _received_matrix(pipeline, unit, error_rate, coverage, rng):
    pool = ReadPool(unit.strands, ErrorModel.uniform(error_rate),
                    max_coverage=coverage, rng=rng)
    return pipeline.receive(pool.clusters_at(coverage))


@pytest.mark.slow
class TestFigure11Property:
    """Gini flattens the per-codeword error distribution."""

    def test_baseline_peaks_in_middle_and_gini_flattens(self, rng):
        bits = rng.integers(0, 2, 14 * 73 * 8).astype(np.uint8)
        base_pipe = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="baseline")
        )
        gini_pipe = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="gini")
        )
        base_counts = np.zeros(14)
        gini_counts = np.zeros(14)
        for trial in range(6):
            unit_b = base_pipe.encode(bits)
            received_b = _received_matrix(base_pipe, unit_b, 0.10, 5, rng)
            base_counts += errors_per_codeword(
                BaselineLayout(MATRIX), unit_b.matrix, received_b.matrix,
                received_b.erased_columns,
            )
            unit_g = gini_pipe.encode(bits)
            received_g = _received_matrix(gini_pipe, unit_g, 0.10, 5, rng)
            gini_counts += errors_per_codeword(
                GiniLayout(MATRIX), unit_g.matrix, received_g.matrix,
                received_g.erased_columns,
            )
        # Baseline: middle rows collect far more errors than edge rows.
        middle = base_counts[5:9].mean()
        edges = np.concatenate([base_counts[:2], base_counts[-2:]]).mean()
        assert middle > 2 * edges
        # Gini: distribution is much more even (smaller Gini coefficient).
        assert gini_coefficient(gini_counts) < 0.5 * gini_coefficient(base_counts)
        # Total error mass is comparable (Gini redistributes, not removes).
        assert 0.6 < gini_counts.sum() / max(base_counts.sum(), 1) < 1.4


@pytest.mark.slow
class TestFigure12Property:
    """Gini needs less coverage than the baseline for error-free decode.

    The sweep is the smallest shape that still exercises the search: two
    trials over a grid wide enough that both layouts find an error-free
    coverage below the top of the grid (the full-scale sweep is
    ``benchmarks/test_fig12_min_coverage.py``).
    """

    def test_gini_reduces_min_coverage(self):
        coverages = range(2, 18)
        base = min_coverage_for_error_free(
            DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline")),
            error_rate=0.09, coverages=coverages, trials=2, rng=11,
        )
        gini = min_coverage_for_error_free(
            DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="gini")),
            error_rate=0.09, coverages=coverages, trials=2, rng=11,
        )
        # Both searches must actually succeed on the grid (max+1 marks
        # failure), otherwise the comparison is vacuous.
        assert base <= coverages[-1]
        assert gini <= base


class TestGiniReliabilityClasses:
    """Figure 8b: excluded rows form separately-protected classes."""

    def test_roundtrip_and_partition(self, rng):
        config = PipelineConfig(
            matrix=MATRIX, layout="gini", gini_excluded_rows=(0, 13)
        )
        pipeline = DnaStoragePipeline(config)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        pool = ReadPool(unit.strands, ErrorModel.uniform(0.05),
                        max_coverage=10, rng=rng)
        decoded, report = pipeline.decode(pool.clusters_at(10), bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
