"""Smoke tests: the quick examples must run end to end.

Only the fast examples are exercised (the sweep-based ones take minutes
and are covered by the benchmarks they mirror).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesSmoke:
    def test_quickstart_runs(self, capsys):
        module = _load("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "baseline" in output and "gini" in output
        assert "exact=True" in output

    def test_random_access_runs(self, capsys):
        module = _load("random_access")
        module.main()
        output = capsys.readouterr().out
        assert "exact=True" in output

    def test_examples_exist_and_have_mains(self):
        expected = {
            "quickstart", "skew_profile", "approximate_images",
            "degradation_gallery", "read_cost_savings", "random_access",
            "system_planning",
        }
        found = {path.stem for path in _EXAMPLES.glob("*.py")}
        assert expected <= found
        for name in expected:
            source = (_EXAMPLES / f"{name}.py").read_text()
            assert "def main()" in source
            assert '__main__' in source
