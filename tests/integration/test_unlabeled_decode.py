"""End-to-end unlabeled-pool decode.

The realistic retrieval workload the clustering subsystem opens:
``sequence_store(..., labeled=False)`` emits per-unit amplification
pools with no ground-truth read labels, the batched greedy clusterer
recovers the clusters on the columnar plane, and the store decodes every
recovered cluster of every unit through the same one-pass
``receive_many`` as labeled reads — the payload must come back
byte-identical.
"""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    GammaCoverage,
    SequencingSimulator,
)
from repro.cluster import BatchedGreedyClusterer, LSHClusterer
from repro.consensus import PosteriorReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.store import DnaStore

MATRIX = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)


def payload_for(store_or_pipeline, units=1, trim=0, seed=11):
    rng = np.random.default_rng(seed)
    capacity = getattr(store_or_pipeline, "unit_capacity_bits", None) \
        or store_or_pipeline.capacity_bits
    return rng.integers(0, 2, units * capacity - trim).astype(np.uint8)


class TestPipelinePoolDecode:
    def test_single_unit_roundtrip(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        bits = payload_for(pipeline)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(8)
        )
        pool = simulator.sequence_batch(unit.strands, rng=5).pooled(rng=5)
        decoded, report = pipeline.decode_pool(pool, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_explicit_clusterer_and_ranking(self):
        from repro.core import positional_ranking

        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="dnamapper")
        )
        bits = payload_for(pipeline, trim=9)
        ranking = positional_ranking(bits.size)
        unit = pipeline.encode(bits, ranking)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(8)
        )
        pool = simulator.sequence_batch(unit.strands, rng=6).pooled(rng=6)
        decoded, report = pipeline.decode_pool(
            pool, bits.size,
            clusterer=BatchedGreedyClusterer(threshold=14),
            ranking=ranking,
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)


class TestStorePoolDecode:
    def test_multi_unit_roundtrip(self):
        store = DnaStore(PipelineConfig(matrix=MATRIX, layout="gini"))
        bits = payload_for(store, units=3, trim=17)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), GammaCoverage(8, shape=6)
        )
        pool = simulator.sequence_store(image, rng=3, labeled=False)
        assert pool.n_clusters == image.n_units
        decoded, report = store.decode_pool(pool, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_matches_labeled_decode_payload(self):
        """Labeled and unlabeled paths land on the same payload (reports
        may differ: clustering can split clusters into duplicates)."""
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        bits = payload_for(store, units=2, trim=3)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), FixedCoverage(6)
        )
        labeled = simulator.sequence_store(image, rng=9)
        unlabeled = simulator.sequence_store(image, rng=9, labeled=False)
        want, _ = store.decode(labeled, bits.size)
        got, report = store.decode_pool(unlabeled, bits.size)
        assert report.clean
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got, bits)

    def test_lsh_clusterer_matches_labeled_decode_payload(self):
        """The LSH-banded path is a drop-in for the greedy scan on the
        retrieval workload: the unlabeled decode it clusters comes back
        byte-identical to the labeled (perfect-clustering) decode."""
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        bits = payload_for(store, units=2, trim=3)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), FixedCoverage(6)
        )
        labeled = simulator.sequence_store(image, rng=9)
        unlabeled = simulator.sequence_store(image, rng=9, labeled=False)
        clusterer = LSHClusterer.for_strand_length(
            store.pipeline.matrix_config.strand_length
        )
        want, _ = store.decode(labeled, bits.size)
        got, report = store.decode_pool(
            unlabeled, bits.size, clusterer=clusterer
        )
        assert report.clean
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got, bits)

    def test_confidence_threshold_path(self):
        """The posterior's soft output flows through the unlabeled path
        (cell erasures ride receive_many exactly like labeled decode)."""
        store = DnaStore(
            PipelineConfig(matrix=MATRIX),
            reconstructor=PosteriorReconstructor(
                channel=ErrorModel.uniform(0.04)
            ),
        )
        bits = payload_for(store, units=2)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(6)
        )
        pool = simulator.sequence_store(image, rng=4, labeled=False)
        decoded, report = store.decode_pool(
            pool, bits.size, confidence_threshold=0.6
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_wrong_pool_count_rejected(self):
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        bits = payload_for(store, units=2)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(4)
        )
        labeled = simulator.sequence_store(image, rng=2)
        with pytest.raises(ValueError):
            store.decode_pool(labeled, bits.size)  # 80 pools, not 2

    def test_labeled_default_unchanged(self):
        """labeled=True (the default) still emits the strand-granular
        spanning batch."""
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        bits = payload_for(store, units=2)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(4)
        )
        batch = simulator.sequence_store(image, rng=2)
        assert batch.n_clusters == 2 * MATRIX.n_columns
