"""Paper-scale parameter smoke tests.

The experiment defaults in this repository are scaled down (GF(2^8), short
strands) so benchmarks run in minutes; these tests confirm the *library*
handles the paper's actual parameters — GF(2^16) symbols, 750-base
strands, 82 payload rows — on a unit shortened in the column dimension
only (a full 65,535-column unit holds 8.7 MB and is a matter of patience,
not capability).
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, ReadCluster, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

pytestmark = pytest.mark.paperscale


@pytest.fixture(scope="module")
def paper_matrix():
    # 16-bit symbols (8-base index), 82 payload rows => 8 + 656 = 664 base
    # payload; with the paper's 40 primer bases that is a ~704-750 base
    # strand. Columns shortened to 120 (M=98, E=22 keeps ~18% redundancy).
    return MatrixConfig(m=16, n_columns=120, nsym=22, payload_rows=82)


class TestPaperScaleGeometry:
    def test_strand_length_matches_paper(self, paper_matrix):
        # 8 index bases + 82 rows * 8 bases = 664; the paper's 750 minus
        # the 40-base primer pair and trailing slack.
        assert paper_matrix.index_bases == 8
        assert paper_matrix.strand_length == 664

    def test_full_width_capacity_is_paper_scale(self):
        full = MatrixConfig(m=16, n_columns=65535, nsym=12056, payload_rows=82)
        assert full.data_bits / 8 / 2**20 == pytest.approx(8.36, abs=0.1)
        assert full.redundancy_fraction == pytest.approx(0.184, abs=0.001)


class TestPaperScaleRoundtrip:
    def test_noiseless_roundtrip(self, paper_matrix, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=paper_matrix, layout="gini")
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        assert len(unit.strands[0]) == 664
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_erasures_at_scale(self, paper_matrix, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=paper_matrix, layout="gini")
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        clusters = simulator.sequence(unit.strands, rng)
        for column in rng.choice(paper_matrix.n_columns, paper_matrix.nsym,
                                 replace=False):
            clusters[column] = ReadCluster(source_index=int(column), reads=[])
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_noisy_roundtrip_long_strands(self, paper_matrix, rng):
        """750-base-class strands survive a 3% channel at coverage 8."""
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=paper_matrix, layout="dnamapper")
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.03), FixedCoverage(8))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
