"""Integration tests: the complete store-and-retrieve path."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, GammaCoverage, SequencingSimulator
from repro.cluster import GreedyClusterer, perfect_clusters
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.crypto import ChaCha20
from repro.files import FileEntry, pack_archive, unpack_archive
from repro.media import JpegCodec, psnr, synth_image
from repro.primers import PcrSelector, PrimerDesigner, attach_primers
from repro.utils.bitio import bits_to_bytes, bytes_to_bits

MATRIX = MatrixConfig(m=8, n_columns=80, nsym=16, payload_rows=12)


class TestFullStack:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_encrypted_archive_roundtrip(self, layout, rng):
        """Archive -> encrypt -> encode -> noisy channel -> decode -> verify."""
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout))
        key, nonce = bytes(range(32)), bytes(12)
        image = synth_image(32, 32, rng=rng)
        compressed = JpegCodec(quality=60).encode(image)
        encrypted = ChaCha20(key, nonce).process(compressed)
        packed = pack_archive([FileEntry("img", encrypted)])
        assert packed.n_bits <= pipeline.capacity_bits

        bits = bytes_to_bits(packed.data)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.05), FixedCoverage(9))
        clusters = simulator.sequence(unit.strands, rng)
        decoded_bits, report = pipeline.decode(clusters, bits.size)
        assert report.clean

        entries = unpack_archive(bits_to_bytes(decoded_bits))
        recovered = ChaCha20(key, nonce).process(entries[0].data)
        assert recovered == compressed
        decoded_image = JpegCodec(quality=60).decode(recovered)
        assert psnr(image, decoded_image) > 25.0

    def test_gamma_coverage_with_dropouts(self, rng):
        """Erasure path: Gamma coverage at a safe mean still decodes."""
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="gini"))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), GammaCoverage(12, shape=3)
        )
        clusters = simulator.sequence(unit.strands, rng)
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_realistic_clustering_instead_of_oracle(self, rng):
        """Swap perfect clustering for the greedy edit-distance clusterer."""
        matrix = MatrixConfig(m=8, n_columns=24, nsym=6, payload_rows=8)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)

        model = ErrorModel.uniform(0.02)
        reads = []
        for strand in unit.strands:
            reads.extend(model.apply_many(strand, 6, rng))
        order = rng.permutation(len(reads))
        clusters = GreedyClusterer(threshold=10).cluster(
            [reads[i] for i in order]
        )
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_random_access_via_primers(self, rng):
        """Two files with different primer pairs; PCR pulls out only one."""
        matrix = MatrixConfig(m=8, n_columns=30, nsym=6, payload_rows=6)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        pairs = PrimerDesigner(length=16, min_distance=7).design_set(2, rng=3)

        payloads = {}
        tagged_pool = []
        for file_id, pair in enumerate(pairs):
            bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
            payloads[file_id] = bits
            unit = pipeline.encode(bits)
            for strand in unit.strands:
                tagged_pool.append(attach_primers(strand, pair))
        rng.shuffle(tagged_pool)

        # Sequence the whole pot with noise, then select file 1 by primers.
        model = ErrorModel.uniform(0.02)
        noisy_reads = []
        for strand in tagged_pool:
            noisy_reads.extend(model.apply_many(strand, 5, rng))
        selector = PcrSelector(pairs[1], max_errors=4)
        selected = selector.select(noisy_reads)
        assert len(selected) >= 0.9 * 5 * matrix.n_columns

        clusters = GreedyClusterer(threshold=10).cluster(selected)
        # Keep the plausible clusters (primer survivors of the other file
        # are rare but possible).
        clusters = [c for c in clusters if c.coverage >= 2]
        decoded, report = pipeline.decode(clusters, pipeline.capacity_bits)
        assert report.clean
        np.testing.assert_array_equal(decoded, payloads[1])

    def test_perfect_clusters_match_simulator(self, rng):
        """perfect_clusters regroups a flattened tagged pool correctly."""
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        model = ErrorModel.uniform(0.04)
        tagged = []
        for index, strand in enumerate(unit.strands):
            for read in model.apply_many(strand, 7, rng):
                tagged.append((index, read))
        rng.shuffle(tagged)
        clusters = perfect_clusters(tagged, n_strands=len(unit.strands))
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
