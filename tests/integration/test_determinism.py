"""Determinism guarantees around the batched consensus path.

The numpy rewrite of the consensus engine must not introduce RNG- or
order-dependence anywhere: sequencing with a fixed seed is reproducible
run-to-run, batched reconstruction equals per-cluster reconstruction, and
a full unit decode is bit-identical however the clusters are fed in.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, GammaCoverage, SequencingSimulator
from repro.codec.basemap import random_bases
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    PosteriorReconstructor,
    TwoWayReconstructor,
)
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)


def make_clusters(seed=0, coverage=6, rate=0.08, n_strands=12, length=40):
    strands = [random_bases(length, rng=np.random.default_rng(1000 + i))
               for i in range(n_strands)]
    simulator = SequencingSimulator(
        ErrorModel.uniform(rate), FixedCoverage(coverage)
    )
    return strands, simulator.sequence(strands, rng=seed)


class TestSequencingDeterminism:
    def test_sequence_reproducible_with_seed(self):
        strands, first = make_clusters(seed=0)
        _, second = make_clusters(seed=0)
        assert [c.reads for c in first] == [c.reads for c in second]

    def test_sequence_differs_across_seeds(self):
        _, first = make_clusters(seed=0)
        _, second = make_clusters(seed=1)
        assert [c.reads for c in first] != [c.reads for c in second]

    def test_gamma_coverage_reproducible(self):
        strands = [random_bases(30, rng=np.random.default_rng(i))
                   for i in range(8)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), GammaCoverage(6, shape=4)
        )
        a = simulator.sequence(strands, rng=42)
        b = simulator.sequence(strands, rng=42)
        assert [c.reads for c in a] == [c.reads for c in b]


@pytest.mark.parametrize("reconstructor_cls", [
    OneWayReconstructor, TwoWayReconstructor, IterativeReconstructor,
    PosteriorReconstructor,
])
class TestBatchDeterminism:
    def test_batch_reproducible_run_to_run(self, reconstructor_cls):
        _, clusters = make_clusters()
        index_clusters = [c.read_indices() for c in clusters]
        first = reconstructor_cls().reconstruct_many_indices(index_clusters, 40)
        second = reconstructor_cls().reconstruct_many_indices(index_clusters, 40)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_batch_equals_scalar_entry_point(self, reconstructor_cls):
        _, clusters = make_clusters()
        index_clusters = [c.read_indices() for c in clusters]
        reconstructor = reconstructor_cls()
        batched = reconstructor.reconstruct_many_indices(index_clusters, 40)
        for reads, estimate in zip(index_clusters, batched):
            np.testing.assert_array_equal(
                estimate, reconstructor.reconstruct_indices(reads, 40)
            )


class TestLSHClusteringDeterminism:
    """The LSH path must be as reproducible as the exact scan: fixed RNG
    substreams make same-pool-same-seed runs identical, and every sort
    key is content-derived, so shuffling the read order permutes the
    assignment without changing the partition."""

    def _pool(self, seed=11, n_strands=30, length=60):
        strands = [random_bases(length, rng=np.random.default_rng(500 + i))
                   for i in range(n_strands)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), FixedCoverage(5)
        )
        return simulator.sequence_batch(
            strands, np.random.default_rng(seed)
        ).pooled()

    def test_same_pool_same_seed_identical(self):
        from repro.cluster import LSHClusterer

        pool = self._pool()
        clusterer = LSHClusterer.for_strand_length(60)
        first, n_first = clusterer.assign(pool)
        second, n_second = clusterer.assign(pool)
        assert n_first == n_second
        np.testing.assert_array_equal(first, second)
        # A fresh instance with the same seed agrees too.
        third, _ = LSHClusterer.for_strand_length(60).assign(pool)
        np.testing.assert_array_equal(first, third)

    def test_shuffled_order_same_partition(self):
        from repro.channel.readbatch import ReadBatch
        from repro.cluster import LSHClusterer, pair_precision_recall

        pool = self._pool()
        permutation = np.random.default_rng(99).permutation(pool.n_reads)
        shuffled = ReadBatch(
            pool.buffer, pool.offsets[permutation],
            pool.lengths[permutation], pool.cluster_ids,
            n_clusters=pool.n_clusters,
        )
        clusterer = LSHClusterer.for_strand_length(60)
        original, n_original = clusterer.assign(pool)
        reordered, n_reordered = clusterer.assign(shuffled)
        assert n_original == n_reordered
        # Identical partitions modulo relabeling: aligned per read, the
        # two assignments refine each other exactly.
        assert pair_precision_recall(
            original[permutation], reordered
        ) == (1.0, 1.0)


class TestPipelineDeterminism:
    def test_decode_reproducible(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(8)
        )
        clusters = simulator.sequence(unit.strands, rng=7)
        first, _ = pipeline.decode(clusters, bits.size)
        second, _ = pipeline.decode(clusters, bits.size)
        np.testing.assert_array_equal(first, second)

    def test_receive_matrix_independent_of_cluster_order(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        rng = np.random.default_rng(6)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), FixedCoverage(6)
        )
        clusters = simulator.sequence(unit.strands, rng=3)
        forward = pipeline.receive(clusters)
        backward = pipeline.receive(list(reversed(clusters)))
        np.testing.assert_array_equal(forward.matrix, backward.matrix)
        assert forward.erased_columns == backward.erased_columns
