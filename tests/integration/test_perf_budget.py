"""Wall-clock budgets for the consensus and channel hot paths.

The batched consensus engine decodes the quickstart-sized unit in well
under 100 ms; the pure-Python per-read scan it replaced took seconds. This
test pins a *generous* ceiling over one encode -> sequence -> decode
roundtrip so the hot path can never silently regress to per-cluster
Python-loop speeds — a 2 s budget is ~20x headroom for the vectorized
engine but far below what any scalar implementation can reach. The same
logic applies to the channel stage: the batched engine emits the
quickstart unit's reads in a few milliseconds, so a 0.5 s ceiling (and a
5x lead over the per-read reference) can only fail if the vectorized pass
regresses to per-copy Python loops. The refinement stages (iterative
realign-and-vote, posterior lattice) carry the same style of guard: the
batched sweeps must lead their frozen per-cluster references by at least
5x on a quickstart-sized unit (measured ~10x for both on the development
machine), plus an absolute ceiling. The store plane gets the same
treatment: one spanning decode of a 32-unit payload must issue exactly
one reconstructor batch call and lead the frozen per-unit loop
(``DnaStore.decode_units``) by at least 3x. The errata plane closes the
loop: a store decode must route every unit's codewords through exactly
one ``ReedSolomon.decode_many`` call, and the batched chain must lead
the frozen per-codeword scalar loop by at least 3x on an all-dirty
multi-unit store.
"""

import time

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.store import DnaStore

#: Seconds allowed for one small-unit decode (receive + RS correction).
DECODE_BUDGET_SECONDS = 2.0

#: Seconds allowed for one batched store-plane decode of the many-unit
#: perf configuration below.
STORE_DECODE_BUDGET_SECONDS = 0.5

#: Minimum lead of the one-pass store decode over the per-unit reference.
STORE_SPEEDUP_FACTOR = 3

#: Minimum lead of the batched errata decoder (one decode_many over every
#: dirty codeword of every unit) over the frozen per-codeword scalar loop.
ERRATA_SPEEDUP_FACTOR = 3

#: Seconds allowed for the channel stage of one quickstart-sized unit.
CHANNEL_BUDGET_SECONDS = 0.5

#: Seconds allowed for one batched refinement sweep of a quickstart unit.
REFINEMENT_BUDGET_SECONDS = 1.5

#: Minimum lead of a batched refiner over its per-cluster reference.
REFINEMENT_SPEEDUP_FACTOR = 5

#: Minimum lead of the batched posterior lattice over its per-read
#: reference. Lower than the iterative floor: the posterior's batched
#: pass also emits per-position confidences the reference skips, so its
#: measured lead (~6-8x) sits closer to the bar and a single noisy
#: timing sample used to flake the old 5x floor.
POSTERIOR_SPEEDUP_FACTOR = 3

#: Fraction of decode wall time the default (NullTracer) telemetry path
#: is allowed to add.
TRACING_OVERHEAD_BUDGET = 0.05

#: Seconds allowed to cluster the full quickstart-config pool (120
#: strands x coverage 10) on the columnar plane.
CLUSTERING_BUDGET_SECONDS = 2.0

#: Minimum lead of the batched clusterer over the frozen string-plane
#: reference on the differential pool below.
CLUSTERING_SPEEDUP_FACTOR = 5

#: Minimum lead of the LSH-banded clusterer over the batched greedy scan
#: on the reduced pool below. The gap widens with pool size (the greedy
#: scan is quadratic at fixed coverage; benchmarks/test_fig_lsh_scaling
#: measures >5x at 50k reads) — 3x at 1200 reads is the floor a
#: regression to pool x representative candidate generation cannot meet.
LSH_SPEEDUP_FACTOR = 3


def best_of(repeats, fn):
    """Best-of-N wall time for ``fn()``: the minimum is robust to the
    scheduler/turbo noise a single sample is not. Returns
    ``(seconds, last result)``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def quickstart_unit(seed, n_clusters=120, coverage=10, length=68, rate=0.06):
    """Index-array clusters shaped like the quickstart encoding unit."""
    rng = np.random.default_rng(seed)
    model = ErrorModel.uniform(rate)
    clusters = []
    for _ in range(n_clusters):
        original = rng.integers(0, 4, length).astype(np.uint8)
        clusters.append([model.apply_indices(original, rng)
                         for _ in range(coverage)])
    return clusters


class TestPerfBudget:
    def test_small_unit_roundtrip_within_budget(self):
        matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(10)
        )
        clusters = simulator.sequence(unit.strands, rng)

        start = time.perf_counter()
        decoded, report = pipeline.decode(clusters, bits.size)
        elapsed = time.perf_counter() - start

        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
        assert elapsed < DECODE_BUDGET_SECONDS, (
            f"decode took {elapsed:.2f}s; the consensus hot path has "
            f"regressed past the {DECODE_BUDGET_SECONDS:.0f}s budget"
        )

    def test_batched_consensus_beats_per_cluster_reference(self):
        """The batch path must stay meaningfully faster than the frozen
        reference — the whole point of the engine."""
        from repro.consensus import ReferenceTwoWayReconstructor, TwoWayReconstructor

        rng = np.random.default_rng(1)
        model = ErrorModel.uniform(0.06)
        clusters = []
        for _ in range(60):
            original = rng.integers(0, 4, 68).astype(np.uint8)
            clusters.append([model.apply_indices(original, rng)
                             for _ in range(8)])

        start = time.perf_counter()
        TwoWayReconstructor().reconstruct_many_indices(clusters, 68)
        batched = time.perf_counter() - start

        start = time.perf_counter()
        reference = ReferenceTwoWayReconstructor()
        for reads in clusters:
            reference.reconstruct_indices(reads, 68)
        scalar = time.perf_counter() - start

        assert batched < scalar, (
            f"batched scan ({batched:.3f}s) no faster than the per-cluster "
            f"reference ({scalar:.3f}s)"
        )

    @pytest.mark.slow
    def test_batched_iterative_refinement_beats_reference(self):
        """The batched realign-and-vote sweep must lead the frozen
        per-cluster reference by at least 5x on a quickstart-sized unit
        (and fit an absolute ceiling). The reference path is the whole
        per-cluster algorithm — per-read edit DP, Python traceback loops —
        so only a regression to scalar processing can close the gap."""
        from repro.consensus import (
            IterativeReconstructor, ReferenceIterativeReconstructor,
        )

        clusters = quickstart_unit(seed=1)
        fast = IterativeReconstructor()
        fast.reconstruct_many_indices(clusters[:5], 68)  # warm-up

        batched_seconds, batched = best_of(
            3, lambda: fast.reconstruct_many_indices(clusters, 68)
        )

        reference = ReferenceIterativeReconstructor()
        start = time.perf_counter()
        expected = [reference.reconstruct_indices(reads, 68)
                    for reads in clusters]
        reference_seconds = time.perf_counter() - start

        for estimate, want in zip(batched, expected):
            np.testing.assert_array_equal(estimate, want)
        assert batched_seconds < REFINEMENT_BUDGET_SECONDS, (
            f"batched iterative refinement took {batched_seconds:.2f}s; "
            f"budget is {REFINEMENT_BUDGET_SECONDS:.1f}s"
        )
        assert batched_seconds * REFINEMENT_SPEEDUP_FACTOR < reference_seconds, (
            f"batched iterative ({batched_seconds * 1e3:.0f}ms) is not "
            f"{REFINEMENT_SPEEDUP_FACTOR}x faster than the per-cluster "
            f"reference ({reference_seconds * 1e3:.0f}ms)"
        )

    @pytest.mark.slow
    def test_batched_posterior_refinement_beats_reference(self):
        """Same guard for the posterior lattice: the batched
        ``(reads, positions)`` forward-backward must lead the per-read
        reference on a quickstart-sized unit. The batched side is timed
        best-of-3 (one noisy sample used to flake this guard) and the
        floor is the posterior-specific 3x — see
        ``POSTERIOR_SPEEDUP_FACTOR``."""
        from repro.consensus import (
            PosteriorReconstructor, ReferencePosteriorReconstructor,
        )

        model = ErrorModel.uniform(0.06)
        clusters = quickstart_unit(seed=2)
        fast = PosteriorReconstructor(channel=model)
        fast.reconstruct_many_indices(clusters[:5], 68)  # warm-up

        batched_seconds, batched = best_of(
            3, lambda: fast.reconstruct_many_with_confidence(clusters, 68)
        )

        reference = ReferencePosteriorReconstructor(channel=model)
        start = time.perf_counter()
        expected = [reference.reconstruct_indices(reads, 68)
                    for reads in clusters]
        reference_seconds = time.perf_counter() - start

        for (estimate, _), want in zip(batched, expected):
            np.testing.assert_array_equal(estimate, want)
        assert batched_seconds < REFINEMENT_BUDGET_SECONDS, (
            f"batched posterior refinement took {batched_seconds:.2f}s; "
            f"budget is {REFINEMENT_BUDGET_SECONDS:.1f}s"
        )
        assert batched_seconds * POSTERIOR_SPEEDUP_FACTOR < reference_seconds, (
            f"batched posterior ({batched_seconds * 1e3:.0f}ms) is not "
            f"{POSTERIOR_SPEEDUP_FACTOR}x faster than the per-read "
            f"reference ({reference_seconds * 1e3:.0f}ms)"
        )

    def test_store_decode_one_batch_call_and_beats_per_unit_reference(self):
        """The store plane is the batching boundary: decoding a many-unit
        payload must issue exactly *one* reconstructor batch call, return
        bits byte-identical to the frozen per-unit loop
        (``DnaStore.decode_units``), and lead it by at least 3x (measured
        ~4.5x on the development machine). Many small units make the
        per-call overhead the reference pays 32 times the dominant cost —
        only a regression of the spanning path back to per-unit
        processing can close the gap."""
        from repro.consensus import TwoWayReconstructor

        calls = []

        class CountingTwoWay(TwoWayReconstructor):
            def reconstruct_batch(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch(batch, length)

        matrix = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)
        store = DnaStore(PipelineConfig(matrix=matrix),
                         reconstructor=CountingTwoWay())
        rng = np.random.default_rng(11)
        n_units = 32
        bits = rng.integers(
            0, 2, n_units * store.unit_capacity_bits - 17
        ).astype(np.uint8)
        image = store.encode(bits)
        assert image.n_units == n_units
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.01), FixedCoverage(5)
        )
        batch = simulator.sequence_store(image, rng=1)
        store.decode(batch, bits.size)  # warm-up

        calls.clear()
        start = time.perf_counter()
        decoded, report = store.decode(batch, bits.size)
        batched_seconds = time.perf_counter() - start
        assert len(calls) == 1, (
            f"store decode issued {len(calls)} reconstructor batch calls; "
            f"the store plane must batch them into one"
        )

        start = time.perf_counter()
        expected, expected_report = store.decode_units(batch, bits.size)
        reference_seconds = time.perf_counter() - start

        np.testing.assert_array_equal(decoded, expected)
        np.testing.assert_array_equal(decoded, bits)
        assert report.clean
        assert batched_seconds < STORE_DECODE_BUDGET_SECONDS, (
            f"store decode took {batched_seconds:.2f}s; budget is "
            f"{STORE_DECODE_BUDGET_SECONDS:.1f}s"
        )
        assert batched_seconds * STORE_SPEEDUP_FACTOR < reference_seconds, (
            f"one-pass store decode ({batched_seconds * 1e3:.0f}ms) is not "
            f"{STORE_SPEEDUP_FACTOR}x faster than the per-unit reference "
            f"({reference_seconds * 1e3:.0f}ms)"
        )

    def test_store_decode_issues_exactly_one_errata_batch_call(self):
        """The RS correction plane is batched at the store boundary too:
        one spanning store decode must route every unit's codewords
        through exactly one ``ReedSolomon.decode_many`` call (no
        confidence threshold means no soft flags, so no retry wave)."""
        matrix = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)
        store = DnaStore(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(19)
        n_units = 8
        bits = rng.integers(
            0, 2, n_units * store.unit_capacity_bits
        ).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.02), FixedCoverage(5)
        )
        batch = simulator.sequence_store(image, rng=2)

        rs = store.pipeline._rs
        calls = []
        original = rs.decode_many

        def counting(words, erasure_table=None):
            calls.append(words.shape[0])
            return original(words, erasure_table)

        rs.decode_many = counting
        try:
            decoded, report = store.decode(batch, bits.size)
        finally:
            del rs.decode_many
        assert len(calls) == 1, (
            f"store decode issued {len(calls)} decode_many calls; the "
            f"errata plane must batch every unit's codewords into one"
        )
        assert calls[0] == n_units * matrix.payload_rows
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_batched_errata_beats_per_codeword_reference(self):
        """The batched errata chain must lead the frozen per-codeword
        scalar loop by at least 3x on an all-dirty multi-unit store
        (measured far higher on the development machine) while staying
        byte-identical. Every codeword carries errors, so the comparison
        times the Berlekamp-Massey/Chien/Forney chain itself, not the
        clean-syndrome fast path."""
        from repro.core.pipeline import ReceivedUnit

        matrix = MatrixConfig(m=8, n_columns=60, nsym=12, payload_rows=8)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(43)
        units = []
        for _ in range(16):
            bits = rng.integers(0, 2, pipeline.capacity_bits).astype(
                np.uint8
            )
            mat = pipeline.encode(bits).matrix.copy()
            columns = rng.permutation(matrix.n_columns)
            # Three corrupted columns hit every row-codeword; two more
            # columns are lost outright (hard erasures).
            for column in columns[:3]:
                mat[:, column] ^= rng.integers(
                    1, 256, size=matrix.payload_rows
                )
            erased = [int(c) for c in columns[3:5]]
            mat[:, erased] = 0
            units.append(ReceivedUnit(
                matrix=mat, erased_columns=erased, duplicate_columns=[],
                invalid_strands=0, cell_erasures=[],
            ))

        pipeline.correct_matrix_many(units[:2])  # warm-up
        start = time.perf_counter()
        batched = pipeline.correct_matrix_many(units)
        batched_seconds = time.perf_counter() - start

        pipeline.correct_matrix_loop_reference(units[0])  # warm-up
        start = time.perf_counter()
        expected = [pipeline.correct_matrix_loop_reference(unit)
                    for unit in units]
        reference_seconds = time.perf_counter() - start

        for (got_matrix, got_report), (want_matrix, want_report) in zip(
            batched, expected
        ):
            np.testing.assert_array_equal(got_matrix, want_matrix)
            assert got_report.failed_codewords == \
                want_report.failed_codewords
            assert got_report.corrected_symbols == \
                want_report.corrected_symbols
            assert got_report.clean
            assert got_report.corrected_symbols > 0  # genuinely dirty
        assert batched_seconds * ERRATA_SPEEDUP_FACTOR \
            < reference_seconds, (
                f"batched errata decode ({batched_seconds * 1e3:.0f}ms) "
                f"is not {ERRATA_SPEEDUP_FACTOR}x faster than the "
                f"per-codeword reference "
                f"({reference_seconds * 1e3:.0f}ms)"
            )

    @pytest.mark.slow
    def test_batched_clustering_beats_string_reference(self):
        """The columnar clusterer must stay meaningfully faster than the
        frozen string-plane reference while producing identical
        assignments. The differential pool is quickstart-channel shaped
        (68-base strands, 6% errors) at reduced strand count so the
        deliberately slow reference fits the suite; the full
        quickstart-config pool (120 strands x coverage 10, ~30x measured
        on the development machine) is guarded by the absolute budget in
        the end-to-end test below."""
        from repro.cluster import BatchedGreedyClusterer, ReferenceGreedyClusterer
        from repro.codec.basemap import random_bases

        rng = np.random.default_rng(5)
        strands = [random_bases(68, rng) for _ in range(60)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(8)
        )
        pool = simulator.sequence_batch(strands, rng).pooled(rng=rng)
        threshold = 17
        fast = BatchedGreedyClusterer(threshold)
        fast.cluster_batch(pool.select_prefix(np.array([100])))  # warm-up

        start = time.perf_counter()
        labeled = fast.cluster_batch(pool)
        batched_seconds = time.perf_counter() - start

        reads = [pool.read_string(i) for i in range(pool.n_reads)]
        reference = ReferenceGreedyClusterer(threshold)
        start = time.perf_counter()
        expected = reference.cluster(reads)
        reference_seconds = time.perf_counter() - start

        assert labeled.n_clusters == len(expected)
        got = [
            [labeled.read_string(i) for i in range(*labeled.cluster_rows(c))]
            for c in range(labeled.n_clusters)
        ]
        assert got == [cluster.reads for cluster in expected]
        assert batched_seconds * CLUSTERING_SPEEDUP_FACTOR \
            < reference_seconds, (
                f"batched clustering ({batched_seconds * 1e3:.0f}ms) is not "
                f"{CLUSTERING_SPEEDUP_FACTOR}x faster than the string-plane "
                f"reference ({reference_seconds * 1e3:.0f}ms)"
            )

    @pytest.mark.slow
    def test_lsh_clustering_beats_batched_greedy(self):
        """The LSH-banded clusterer must lead the exact greedy scan on a
        quickstart-channel pool while recovering the same-quality
        clustering. 200 strands x coverage 6 (1200 reads) keeps the
        greedy side fast enough for the suite; the scaling benchmark
        carries the 50k-read evidence where the lead exceeds the 5x
        acceptance floor."""
        from repro.cluster import (
            BatchedGreedyClusterer, LSHClusterer, pair_precision_recall,
        )
        from repro.codec.basemap import random_bases

        rng = np.random.default_rng(17)
        strands = [random_bases(68, rng) for _ in range(200)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(6)
        )
        labeled = simulator.sequence_batch(strands, rng)
        permutation = rng.permutation(labeled.n_reads)
        truth = labeled.cluster_ids[permutation]
        pool = labeled.pooled()
        pool = type(pool)(
            pool.buffer, pool.offsets[permutation],
            pool.lengths[permutation], pool.cluster_ids,
            n_clusters=pool.n_clusters,
        )
        lsh = LSHClusterer.for_strand_length(68)
        greedy = BatchedGreedyClusterer.for_strand_length(68)
        small = pool.select_prefix(np.array([100]))
        lsh.cluster_batch(small)  # warm-up
        greedy.cluster_batch(small)

        lsh_seconds, (predicted, _) = best_of(
            3, lambda: lsh.assign(pool)
        )
        greedy_seconds, _ = best_of(3, lambda: greedy.assign(pool))

        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0, "LSH merges are DP-verified; never wrong"
        assert recall > 0.95
        assert lsh_seconds * LSH_SPEEDUP_FACTOR < greedy_seconds, (
            f"LSH clustering ({lsh_seconds * 1e3:.0f}ms) is not "
            f"{LSH_SPEEDUP_FACTOR}x faster than the batched greedy scan "
            f"({greedy_seconds * 1e3:.0f}ms)"
        )

    @pytest.mark.slow
    def test_unlabeled_quickstart_pool_clusters_and_decodes_within_budget(self):
        """The full quickstart-config pool (120 strands x coverage 10)
        must cluster within the absolute budget, and the end-to-end
        unlabeled decode — ``sequence_store(labeled=False)`` -> cluster
        -> ``DnaStore.decode`` plumbing — must round-trip the payload
        byte-identically."""
        matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
        store = DnaStore(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(13)
        bits = rng.integers(0, 2, store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(10)
        )
        pool = simulator.sequence_store(image, rng=1, labeled=False)
        assert pool.n_reads == 1200

        start = time.perf_counter()
        decoded, report = store.decode_pool(pool, bits.size)
        elapsed = time.perf_counter() - start

        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
        assert elapsed < CLUSTERING_BUDGET_SECONDS, (
            f"unlabeled-pool decode took {elapsed:.2f}s; the clustering "
            f"hot path has regressed past the "
            f"{CLUSTERING_BUDGET_SECONDS:.1f}s budget"
        )

    def test_channel_stage_within_budget_and_beats_per_read_path(self):
        """The quickstart-config channel stage must stay vectorized: one
        batched engine call both fits an absolute budget and leads the
        per-read ``apply_many`` reference by at least 5x (measured ~12x
        on the development machine)."""
        from repro.codec.basemap import random_bases

        rng = np.random.default_rng(3)
        strands = [random_bases(68, rng) for _ in range(120)]
        model = ErrorModel.uniform(0.06)
        simulator = SequencingSimulator(model, FixedCoverage(10))
        simulator.sequence_batch(strands, rng=0)  # warm-up

        start = time.perf_counter()
        rounds = 5
        for _ in range(rounds):
            batch = simulator.sequence_batch(strands, rng=1)
        batched = (time.perf_counter() - start) / rounds
        assert batch.n_reads == 1200

        reference_rng = np.random.default_rng(1)
        start = time.perf_counter()
        for strand in strands:
            model.apply_many(strand, 10, reference_rng)
        per_read = time.perf_counter() - start

        assert batched < CHANNEL_BUDGET_SECONDS, (
            f"channel stage took {batched:.3f}s; the batched engine has "
            f"regressed past the {CHANNEL_BUDGET_SECONDS:.1f}s budget"
        )
        assert batched * 5 < per_read, (
            f"batched channel ({batched * 1e3:.1f}ms) is not 5x faster "
            f"than the per-read path ({per_read * 1e3:.1f}ms)"
        )


class TestTracingBudget:
    """The telemetry layer's contract with the hot path: with the
    default ``NullTracer`` the decode output is byte-identical to an
    instrumented run and the traced call sites cost a vanishing
    fraction of decode wall time."""

    def quickstart_store(self):
        matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
        store = DnaStore(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(29)
        bits = rng.integers(0, 2, store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(10)
        )
        return store, simulator.sequence_store(image, rng=8), bits

    def test_decode_byte_identical_with_tracing_on_and_off(self):
        from repro.observability import Tracer, use_tracer

        store, batch, bits = self.quickstart_store()
        off_decoded, off_report = store.decode(batch, bits.size)
        tracer = Tracer()
        with use_tracer(tracer):
            on_decoded, on_report = store.decode(batch, bits.size)
        np.testing.assert_array_equal(on_decoded, off_decoded)
        np.testing.assert_array_equal(off_decoded, bits)
        assert on_report.clean == off_report.clean
        assert on_report.total_failed_codewords == \
            off_report.total_failed_codewords
        assert on_report.total_erased_columns == \
            off_report.total_erased_columns
        assert tracer.manifests  # the traced run left its evidence

    def test_null_tracer_overhead_within_budget(self):
        """Estimate the off-path cost directly: (number of span call
        sites one decode crosses, from a recording run) x (measured
        cost of one null get_tracer()+span round trip). The product
        must stay under 5% of the decode's own wall time — comparing
        two noisy end-to-end timings would flake long before the null
        path ever grew that expensive."""
        from repro.observability import Tracer, use_tracer
        from repro.observability.trace import get_tracer

        store, batch, bits = self.quickstart_store()
        store.decode(batch, bits.size)  # warm-up
        decode_seconds, _ = best_of(
            3, lambda: store.decode(batch, bits.size)
        )

        tracer = Tracer()
        with use_tracer(tracer):
            store.decode(batch, bits.size)
        span_calls = sum(
            entry["calls"] for entry in tracer.stage_totals().values()
        )
        assert span_calls >= 5  # decode/receive/consensus/correct/rs

        rounds = 20_000
        start = time.perf_counter()
        for _ in range(rounds):
            with get_tracer().span("probe", n=1):
                pass
        per_site = (time.perf_counter() - start) / rounds

        overhead = per_site * span_calls
        assert overhead < TRACING_OVERHEAD_BUDGET * decode_seconds, (
            f"null tracing path costs {overhead * 1e6:.1f}us across "
            f"{span_calls} call sites — over "
            f"{TRACING_OVERHEAD_BUDGET:.0%} of the "
            f"{decode_seconds * 1e3:.1f}ms decode"
        )


class TestServiceTickBudget:
    """The serving plane's amortization contract: one tick = at most one
    consensus batch call and one RS errata call, however many requests
    drain — and a warm-cache tick makes none at all."""

    N_OBJECTS = 8

    def build_service(self, calls):
        from repro.consensus import TwoWayReconstructor
        from repro.service import StoreService

        class CountingTwoWay(TwoWayReconstructor):
            def reconstruct_batch(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch(batch, length)

        matrix = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)
        store = DnaStore(PipelineConfig(matrix=matrix),
                         reconstructor=CountingTwoWay())
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.01), FixedCoverage(5)
        )
        rng = np.random.default_rng(60)
        service = StoreService(store, cache_capacity=256)
        expected = {}
        for k in range(self.N_OBJECTS):
            bits = rng.integers(0, 2, store.unit_capacity_bits,
                                dtype=np.uint8)
            image = store.encode(bits)
            batch = simulator.sequence_store(image, rng=7000 + k)
            service.put(f"obj{k}", batch, bits.size)
            expected[f"obj{k}"] = bits
        return store, service, expected, matrix

    def test_tick_issues_one_consensus_and_one_errata_pass(self):
        """N>=8 concurrent object reads, one tick: exactly ONE spanning
        reconstruct_batch call and ONE ReedSolomon.decode_many call."""
        consensus_calls = []
        store, service, expected, matrix = self.build_service(
            consensus_calls
        )
        rs = store.pipeline._rs
        rs_calls = []
        original = rs.decode_many

        def counting(words, erasure_table=None):
            rs_calls.append(words.shape[0])
            return original(words, erasure_table)

        for oid in expected:
            service.submit(oid)
        consensus_calls.clear()
        rs.decode_many = counting
        try:
            results = service.tick()
        finally:
            del rs.decode_many

        assert len(results) == self.N_OBJECTS
        assert len(consensus_calls) == 1, (
            f"service tick issued {len(consensus_calls)} reconstructor "
            f"batch calls for {self.N_OBJECTS} requests; the plane must "
            f"coalesce them into one"
        )
        assert len(rs_calls) == 1, (
            f"service tick issued {len(rs_calls)} decode_many calls; "
            f"the errata pass must be shared across all requests"
        )
        assert rs_calls[0] == self.N_OBJECTS * matrix.payload_rows
        for result in results:
            assert result.report.clean
            np.testing.assert_array_equal(
                result.bits, expected[result.object_id]
            )

    def test_warm_cache_tick_makes_zero_pipeline_calls(self):
        """Repeat reads of cached objects bypass the pipeline entirely:
        zero reconstruct_batch calls, zero errata calls."""
        consensus_calls = []
        store, service, expected, _ = self.build_service(consensus_calls)
        for oid in expected:
            service.submit(oid)
        service.tick()  # cold tick fills the decoded-unit cache

        rs = store.pipeline._rs
        rs_calls = []
        original = rs.decode_many

        def counting(words, erasure_table=None):
            rs_calls.append(words.shape[0])
            return original(words, erasure_table)

        for oid in expected:
            service.submit(oid)
        consensus_calls.clear()
        rs.decode_many = counting
        try:
            results = service.tick()
        finally:
            del rs.decode_many

        assert consensus_calls == []
        assert rs_calls == []
        assert all(result.cache_hit for result in results)
        for result in results:
            np.testing.assert_array_equal(
                result.bits, expected[result.object_id]
            )
