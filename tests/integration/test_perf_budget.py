"""Wall-clock budgets for the consensus and channel hot paths.

The batched consensus engine decodes the quickstart-sized unit in well
under 100 ms; the pure-Python per-read scan it replaced took seconds. This
test pins a *generous* ceiling over one encode -> sequence -> decode
roundtrip so the hot path can never silently regress to per-cluster
Python-loop speeds — a 2 s budget is ~20x headroom for the vectorized
engine but far below what any scalar implementation can reach. The same
logic applies to the channel stage: the batched engine emits the
quickstart unit's reads in a few milliseconds, so a 0.5 s ceiling (and a
5x lead over the per-read reference) can only fail if the vectorized pass
regresses to per-copy Python loops.
"""

import time

import numpy as np

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

#: Seconds allowed for one small-unit decode (receive + RS correction).
DECODE_BUDGET_SECONDS = 2.0

#: Seconds allowed for the channel stage of one quickstart-sized unit.
CHANNEL_BUDGET_SECONDS = 0.5


class TestPerfBudget:
    def test_small_unit_roundtrip_within_budget(self):
        matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix))
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.06), FixedCoverage(10)
        )
        clusters = simulator.sequence(unit.strands, rng)

        start = time.perf_counter()
        decoded, report = pipeline.decode(clusters, bits.size)
        elapsed = time.perf_counter() - start

        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
        assert elapsed < DECODE_BUDGET_SECONDS, (
            f"decode took {elapsed:.2f}s; the consensus hot path has "
            f"regressed past the {DECODE_BUDGET_SECONDS:.0f}s budget"
        )

    def test_batched_consensus_beats_per_cluster_reference(self):
        """The batch path must stay meaningfully faster than the frozen
        reference — the whole point of the engine."""
        from repro.consensus import ReferenceTwoWayReconstructor, TwoWayReconstructor

        rng = np.random.default_rng(1)
        model = ErrorModel.uniform(0.06)
        clusters = []
        for _ in range(60):
            original = rng.integers(0, 4, 68).astype(np.uint8)
            clusters.append([model.apply_indices(original, rng)
                             for _ in range(8)])

        start = time.perf_counter()
        TwoWayReconstructor().reconstruct_many_indices(clusters, 68)
        batched = time.perf_counter() - start

        start = time.perf_counter()
        reference = ReferenceTwoWayReconstructor()
        for reads in clusters:
            reference.reconstruct_indices(reads, 68)
        scalar = time.perf_counter() - start

        assert batched < scalar, (
            f"batched scan ({batched:.3f}s) no faster than the per-cluster "
            f"reference ({scalar:.3f}s)"
        )

    def test_channel_stage_within_budget_and_beats_per_read_path(self):
        """The quickstart-config channel stage must stay vectorized: one
        batched engine call both fits an absolute budget and leads the
        per-read ``apply_many`` reference by at least 5x (measured ~12x
        on the development machine)."""
        from repro.codec.basemap import random_bases

        rng = np.random.default_rng(3)
        strands = [random_bases(68, rng) for _ in range(120)]
        model = ErrorModel.uniform(0.06)
        simulator = SequencingSimulator(model, FixedCoverage(10))
        simulator.sequence_batch(strands, rng=0)  # warm-up

        start = time.perf_counter()
        rounds = 5
        for _ in range(rounds):
            batch = simulator.sequence_batch(strands, rng=1)
        batched = (time.perf_counter() - start) / rounds
        assert batch.n_reads == 1200

        reference_rng = np.random.default_rng(1)
        start = time.perf_counter()
        for strand in strands:
            model.apply_many(strand, 10, reference_rng)
        per_read = time.perf_counter() - start

        assert batched < CHANNEL_BUDGET_SECONDS, (
            f"channel stage took {batched:.3f}s; the batched engine has "
            f"regressed past the {CHANNEL_BUDGET_SECONDS:.1f}s budget"
        )
        assert batched * 5 < per_read, (
            f"batched channel ({batched * 1e3:.1f}ms) is not 5x faster "
            f"than the per-read path ({per_read * 1e3:.1f}ms)"
        )
