"""Equivalence of the vectorized BMA scan with a naive reference.

The one-way scan is the repository's hottest loop and is fully
vectorized; this file pins its behaviour to a direct, obviously-correct
transliteration of the algorithm. Any future optimization must keep the
two byte-for-byte identical.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel
from repro.consensus import OneWayReconstructor


def _reference_one_way(reads, length, lookahead=3, n_alphabet=4,
                       fill_symbol=0):
    """Naive per-read transliteration of the scan (kept deliberately slow)."""
    reads = [np.asarray(r, dtype=np.int64) for r in reads if len(r) > 0]
    output = np.full(length, fill_symbol, dtype=np.int64)
    if not reads or length == 0:
        return output
    pointers = [0] * len(reads)

    def estimate_lookahead(consensus):
        window = np.full(lookahead, -1, dtype=np.int64)
        for offset in range(1, lookahead + 1):
            counts = np.zeros(n_alphabet, dtype=np.int64)
            for read, pointer in zip(reads, pointers):
                if (pointer < len(read) and read[pointer] == consensus
                        and pointer + offset < len(read)):
                    counts[read[pointer + offset]] += 1
            if counts.sum() > 0:
                window[offset - 1] = int(np.argmax(counts))
        return window

    def score(read, start, window):
        total = 0
        for offset, expected in enumerate(window):
            if expected < 0:
                continue
            index = start + offset
            if index < len(read) and read[index] == expected:
                total += 1
        return total

    for position in range(length):
        counts = np.zeros(n_alphabet, dtype=np.int64)
        for read, pointer in zip(reads, pointers):
            if pointer < len(read):
                counts[read[pointer]] += 1
        if counts.sum() == 0:
            break
        consensus = int(np.argmax(counts))
        output[position] = consensus
        window = estimate_lookahead(consensus)
        for i, read in enumerate(reads):
            pointer = pointers[i]
            if pointer >= len(read):
                continue
            if read[pointer] == consensus:
                pointers[i] = pointer + 1
                continue
            substitution = score(read, pointer + 1, window)
            deletion = score(read, pointer, window)
            insertion = -1
            if pointer + 1 < len(read) and read[pointer + 1] == consensus:
                insertion = 1 + score(read, pointer + 2, window)
            advance, best = 1, substitution
            if deletion > best:
                advance, best = 0, deletion
            if insertion > best:
                advance = 2
            pointers[i] = pointer + advance
    return output


class TestVectorizedMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**9), st.integers(1, 8),
           st.floats(0.0, 0.25), st.integers(5, 60))
    def test_equivalence_random_clusters(self, seed, coverage, rate, length):
        rng = np.random.default_rng(seed)
        original = rng.integers(0, 4, length).astype(np.uint8)
        model = ErrorModel.uniform(rate)
        reads = [model.apply_indices(original, rng) for _ in range(coverage)]
        fast = OneWayReconstructor().reconstruct_indices(reads, length)
        slow = _reference_one_way(reads, length)
        np.testing.assert_array_equal(fast, slow)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**9))
    def test_equivalence_binary(self, seed):
        rng = np.random.default_rng(seed)
        original = rng.integers(0, 2, 30).astype(np.uint8)
        model = ErrorModel.uniform(0.2)
        reads = [model.apply_indices(original, rng, n_alphabet=2)
                 for _ in range(4)]
        fast = OneWayReconstructor(n_alphabet=2).reconstruct_indices(reads, 30)
        slow = _reference_one_way(reads, 30, n_alphabet=2)
        np.testing.assert_array_equal(fast, slow)

    def test_equivalence_with_short_reads(self):
        reads = [np.array([0, 1], dtype=np.int64),
                 np.array([1], dtype=np.int64),
                 np.array([0, 1, 2, 3, 0, 1], dtype=np.int64)]
        fast = OneWayReconstructor().reconstruct_indices(reads, 10)
        slow = _reference_one_way(reads, 10)
        np.testing.assert_array_equal(fast, slow)
