"""Tests for the iterative realign-and-vote reconstructor."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.codec.basemap import random_bases
from repro.consensus import IterativeReconstructor, TwoWayReconstructor
from repro.consensus.iterative import IterativeReconstructor as _Impl


@pytest.fixture
def reconstructor():
    return IterativeReconstructor()


class TestBasics:
    def test_identical_reads(self, reconstructor):
        strand = "ACGTTGCAACGT"
        assert reconstructor.reconstruct([strand] * 3, len(strand)) == strand

    def test_exact_length(self, reconstructor):
        assert len(reconstructor.reconstruct(["ACGTACG"] * 2, 12)) == 12

    def test_empty_cluster(self, reconstructor):
        assert reconstructor.reconstruct([], 5) == "AAAAA"

    def test_zero_length(self, reconstructor):
        assert reconstructor.reconstruct(["ACGT"], 0) == ""

    def test_rejects_bad_iteration_count(self):
        with pytest.raises(ValueError):
            IterativeReconstructor(max_iterations=0)

    def test_deterministic(self, reconstructor, rng):
        strand = random_bases(70, rng)
        reads = ErrorModel.uniform(0.1).apply_many(strand, 6, rng)
        assert (reconstructor.reconstruct(reads, 70)
                == reconstructor.reconstruct(reads, 70))


class TestEmptyBatch:
    """The explicit empty-batch early returns of ``reconstruct_batch``."""

    def test_zero_cluster_batch(self, reconstructor):
        from repro.channel import ReadBatch

        result = reconstructor.reconstruct_batch(ReadBatch.from_strings([]), 8)
        assert result.shape == (0, 8)
        assert result.dtype == np.int64

    def test_zero_cluster_batch_zero_length(self, reconstructor):
        from repro.channel import ReadBatch

        result = reconstructor.reconstruct_batch(ReadBatch.from_strings([]), 0)
        assert result.shape == (0, 0)

    def test_clusters_without_reads_keep_seed(self, reconstructor):
        from repro.channel import ReadBatch

        batch = ReadBatch.from_strings([[], []])
        result = reconstructor.reconstruct_batch(batch, 5)
        np.testing.assert_array_equal(result, np.zeros((2, 5), dtype=np.int64))


class TestEditMatrix:
    def test_matches_levenshtein(self, rng):
        from repro.cluster.distance import edit_distance_indices
        for _ in range(20):
            a = rng.integers(0, 4, rng.integers(0, 25))
            b = rng.integers(0, 4, rng.integers(0, 25))
            matrix = _Impl._edit_matrix(a, b)
            assert matrix[len(a), len(b)] == edit_distance_indices(a, b)

    def test_boundary_rows(self):
        matrix = _Impl._edit_matrix(np.array([0, 1]), np.array([1]))
        np.testing.assert_array_equal(matrix[0], [0, 1])
        np.testing.assert_array_equal(matrix[:, 0], [0, 1, 2])


class TestQuality:
    def test_not_worse_than_two_way_on_average(self, rng):
        iterative = IterativeReconstructor()
        two_way = TwoWayReconstructor()
        model = ErrorModel.uniform(0.10)
        length = 100
        iterative_errors = 0
        two_way_errors = 0
        for _ in range(30):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 6, rng)
            iterative_errors += sum(
                a != b
                for a, b in zip(iterative.reconstruct(reads, length), strand)
            )
            two_way_errors += sum(
                a != b
                for a, b in zip(two_way.reconstruct(reads, length), strand)
            )
        assert iterative_errors <= two_way_errors * 1.05

    def test_skew_persists(self, rng):
        """The Figure 5 claim: a stronger reconstructor still shows skew."""
        reconstructor = IterativeReconstructor()
        model = ErrorModel.uniform(0.10)
        length = 120
        errors = np.zeros(length)
        for _ in range(60):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            estimate = reconstructor.reconstruct(reads, length)
            errors += [a != b for a, b in zip(estimate, strand)]
        edges = np.concatenate([errors[:15], errors[-15:]]).mean()
        middle = errors[length // 2 - 15: length // 2 + 15].mean()
        assert middle > 1.5 * edges

    def test_substitution_only_is_easy(self, rng):
        """Paired with two-way on identical reads: refinement never hurts,
        and the overall substitution-only error rate stays small."""
        iterative = IterativeReconstructor()
        two_way = TwoWayReconstructor()
        model = ErrorModel.substitutions_only(0.10)
        length = 100
        iterative_total = 0
        two_way_total = 0
        for _ in range(20):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            iterative_total += sum(
                a != b
                for a, b in zip(iterative.reconstruct(reads, length), strand)
            )
            two_way_total += sum(
                a != b
                for a, b in zip(two_way.reconstruct(reads, length), strand)
            )
        assert iterative_total <= two_way_total
        assert iterative_total / (20 * length) < 0.025
