"""Tests for the symbolwise posterior reconstructor."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.codec.basemap import bases_to_indices, random_bases
from repro.consensus import TwoWayReconstructor
from repro.consensus.posterior import PosteriorReconstructor


@pytest.fixture
def reconstructor():
    return PosteriorReconstructor(channel=ErrorModel.uniform(0.08))


def _index_reads(model, strand, coverage, rng):
    return [bases_to_indices(r) for r in model.apply_many(strand, coverage, rng)]


class TestBasics:
    def test_identical_reads(self, reconstructor):
        strand = "ACGTTGCAACGTAC"
        assert reconstructor.reconstruct([strand] * 3, len(strand)) == strand

    def test_exact_length(self, reconstructor):
        assert len(reconstructor.reconstruct(["ACGTACG"] * 2, 12)) == 12

    def test_empty_cluster(self, reconstructor):
        assert reconstructor.reconstruct([], 5) == "AAAAA"

    def test_zero_length(self, reconstructor):
        assert reconstructor.reconstruct(["ACGT"], 0) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            PosteriorReconstructor(max_iterations=0)
        with pytest.raises(ValueError):
            PosteriorReconstructor(channel=ErrorModel.uniform(1.0))

    def test_deterministic(self, reconstructor, rng):
        strand = random_bases(80, rng)
        model = ErrorModel.uniform(0.08)
        reads = _index_reads(model, strand, 5, rng)
        first = reconstructor.reconstruct_indices(reads, 80)
        second = reconstructor.reconstruct_indices(reads, 80)
        np.testing.assert_array_equal(first, second)


class TestEmptyBatch:
    """The explicit empty-batch early returns of the columnar entry points."""

    def test_zero_cluster_batch(self, reconstructor):
        from repro.channel import ReadBatch

        batch = ReadBatch.from_strings([])
        result = reconstructor.reconstruct_batch(batch, 7)
        assert result.shape == (0, 7)
        assert result.dtype == np.int64
        assert reconstructor.reconstruct_batch_with_confidence(batch, 7) == []

    def test_clusters_without_reads_fully_confident(self, reconstructor):
        from repro.channel import ReadBatch

        batch = ReadBatch.from_strings([[], ["", ""]])
        results = reconstructor.reconstruct_batch_with_confidence(batch, 4)
        assert len(results) == 2
        for estimate, confidence in results:
            np.testing.assert_array_equal(estimate, np.zeros(4, dtype=np.int64))
            np.testing.assert_array_equal(confidence, np.ones(4))


class TestAccuracy:
    def test_competitive_with_two_way(self, rng):
        model = ErrorModel.uniform(0.08)
        posterior = PosteriorReconstructor(channel=model)
        two_way = TwoWayReconstructor()
        length = 120
        posterior_errors = two_way_errors = 0
        for _ in range(12):
            strand = random_bases(length, rng)
            reads = _index_reads(model, strand, 6, rng)
            target = bases_to_indices(strand)
            posterior_errors += int(
                (posterior.reconstruct_indices(reads, length) != target).sum()
            )
            two_way_errors += int(
                (two_way.reconstruct_indices(reads, length) != target).sum()
            )
        assert posterior_errors <= two_way_errors * 1.15

    def test_substitution_only_nearly_perfect(self, rng):
        model = ErrorModel.substitutions_only(0.12)
        reconstructor = PosteriorReconstructor(channel=model)
        length = 100
        total = 0
        for _ in range(10):
            strand = random_bases(length, rng)
            reads = _index_reads(model, strand, 5, rng)
            total += int(
                (reconstructor.reconstruct_indices(reads, length)
                 != bases_to_indices(strand)).sum()
            )
        assert total <= 5


class TestConfidence:
    def test_shape_and_range(self, reconstructor, rng):
        strand = random_bases(60, rng)
        reads = _index_reads(ErrorModel.uniform(0.08), strand, 4, rng)
        confidence = reconstructor.positional_confidence(reads, 60)
        assert confidence.shape == (60,)
        assert (confidence > 0).all() and (confidence <= 1.0 + 1e-9).all()

    def test_clean_cluster_fully_confident(self, reconstructor):
        strand = "ACGTACGTACGTACGT"
        reads = [bases_to_indices(strand)] * 4
        confidence = reconstructor.positional_confidence(reads, len(strand))
        assert confidence.min() > 0.95

    def test_wrong_positions_less_confident(self, rng):
        """Aggregate correlation: error positions carry lower confidence."""
        model = ErrorModel.uniform(0.10)
        reconstructor = PosteriorReconstructor(channel=model)
        length = 120
        confidence_correct = []
        confidence_wrong = []
        for _ in range(25):
            strand = random_bases(length, rng)
            reads = _index_reads(model, strand, 5, rng)
            target = bases_to_indices(strand)
            estimate, confidence = reconstructor.reconstruct_with_confidence(
                reads, length
            )
            wrong = estimate != target
            confidence_correct.extend(confidence[~wrong])
            confidence_wrong.extend(confidence[wrong])
        assert np.mean(confidence_wrong) < np.mean(confidence_correct)

    def test_confidence_dips_mid_strand(self, rng):
        """The skew, seen through posterior mass: middle < ends."""
        model = ErrorModel.uniform(0.10)
        reconstructor = PosteriorReconstructor(channel=model)
        length = 120
        profile = np.zeros(length)
        trials = 25
        for _ in range(trials):
            strand = random_bases(length, rng)
            reads = _index_reads(model, strand, 5, rng)
            profile += reconstructor.positional_confidence(reads, length)
        profile /= trials
        edges = np.concatenate([profile[:15], profile[-15:]]).mean()
        middle = profile[45:75].mean()
        assert middle < edges
