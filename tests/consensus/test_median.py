"""Tests for the exact constrained edit-distance median search."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.cluster.distance import edit_distance_indices
from repro.consensus import OptimalMedianReconstructor


@pytest.fixture
def median():
    return OptimalMedianReconstructor(n_alphabet=2)


def _total_cost(candidate, reads):
    return sum(edit_distance_indices(candidate, r) for r in reads)


class TestExactness:
    def test_perfect_reads(self, median):
        original = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        result = median.search([original] * 3, 5)
        assert result.cost == 0
        assert any(np.array_equal(c, original) for c in result.candidates)

    def test_cost_matches_exhaustive_enumeration(self, median, rng):
        """Cross-check against a literal enumeration of all 2^L strings."""
        length = 8
        model = ErrorModel.uniform(0.25)
        for trial in range(5):
            original = rng.integers(0, 2, length).astype(np.uint8)
            reads = [model.apply_indices(original, rng, n_alphabet=2)
                     for _ in range(3)]
            result = median.search(reads, length)
            best = min(
                _total_cost(np.array([(v >> (length - 1 - i)) & 1
                                      for i in range(length)]), reads)
                for v in range(2**length)
            )
            assert result.cost == best

    def test_all_candidates_are_optimal(self, median, rng):
        model = ErrorModel.uniform(0.3)
        original = rng.integers(0, 2, 10).astype(np.uint8)
        reads = [model.apply_indices(original, rng, n_alphabet=2)
                 for _ in range(2)]
        result = median.search(reads, 10)
        costs = {_total_cost(c, reads) for c in result.candidates}
        assert costs == {result.cost}

    def test_candidates_are_unique(self, median, rng):
        model = ErrorModel.uniform(0.3)
        original = rng.integers(0, 2, 9).astype(np.uint8)
        reads = [model.apply_indices(original, rng, n_alphabet=2)
                 for _ in range(2)]
        result = median.search(reads, 9)
        as_tuples = {tuple(c) for c in result.candidates}
        assert len(as_tuples) == len(result.candidates)

    def test_empty_cluster(self, median):
        result = median.search([], 6)
        assert result.cost == 0
        assert result.candidates[0].shape == (6,)

    def test_reconstruct_indices_returns_length(self, median, rng):
        reads = [rng.integers(0, 2, 7).astype(np.uint8) for _ in range(3)]
        assert median.reconstruct_indices(reads, 7).shape == (7,)

    def test_truncation_flag(self, rng):
        tight = OptimalMedianReconstructor(n_alphabet=2, max_candidates=1)
        model = ErrorModel.uniform(0.4)
        original = rng.integers(0, 2, 10).astype(np.uint8)
        reads = [model.apply_indices(original, rng, n_alphabet=2)]
        result = tight.search(reads, 10)
        assert len(result.candidates) == 1
        # With a single noisy read, ties are overwhelmingly likely.
        loose = OptimalMedianReconstructor(n_alphabet=2, max_candidates=4096)
        full = loose.search(reads, 10)
        if len(full.candidates) > 1:
            assert result.truncated


class TestAdversarialSelection:
    def test_returns_an_optimal_candidate(self, median, rng):
        model = ErrorModel.uniform(0.25)
        original = rng.integers(0, 2, 12).astype(np.uint8)
        reads = [model.apply_indices(original, rng, n_alphabet=2)
                 for _ in range(3)]
        adversarial = median.reconstruct_adversarial(reads, 12, original)
        result = median.search(reads, 12)
        assert _total_cost(adversarial, reads) == result.cost

    def test_prefers_middle_accuracy(self, median):
        """Among tied optima, the pick agrees with the original more in the
        middle than a pick maximizing end accuracy would."""
        original = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
        # Construct reads so that several strings are tied; the adversarial
        # pick must maximize centre-weighted agreement.
        reads = [np.array([0, 1, 0, 1, 0, 1], dtype=np.uint8),
                 np.array([1, 0, 1, 0, 1, 0], dtype=np.uint8)]
        adversarial = median.reconstruct_adversarial(reads, 6, original)
        center_agreement = (adversarial[2:4] == original[2:4]).sum()
        assert center_agreement == 2

    def test_requires_matching_length(self, median):
        with pytest.raises(ValueError):
            median.reconstruct_adversarial(
                [np.array([0, 1], dtype=np.uint8)], 2, np.array([0, 1, 1])
            )


class TestDnaAlphabet:
    def test_four_letter_search(self, rng):
        median = OptimalMedianReconstructor(n_alphabet=4)
        model = ErrorModel.uniform(0.2)
        original = rng.integers(0, 4, 7).astype(np.uint8)
        reads = [model.apply_indices(original, rng) for _ in range(4)]
        result = median.search(reads, 7)
        brute = min(
            _total_cost(np.array([(v // 4**i) % 4 for i in range(6, -1, -1)]),
                        reads)
            for v in range(4**7)
        )
        assert result.cost == brute

    def test_string_interface(self):
        median = OptimalMedianReconstructor(n_alphabet=4)
        assert median.reconstruct(["ACGT", "ACGT"], 4) == "ACGT"


class TestValidation:
    def test_bad_alphabet(self):
        with pytest.raises(ValueError):
            OptimalMedianReconstructor(n_alphabet=1)

    def test_bad_cap(self):
        with pytest.raises(ValueError):
            OptimalMedianReconstructor(max_candidates=0)

    def test_negative_length(self, median):
        with pytest.raises(ValueError):
            median.search([np.array([0, 1], dtype=np.uint8)], -1)
