"""Tests for the one-way BMA reconstructor."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.codec.basemap import random_bases
from repro.consensus import OneWayReconstructor


@pytest.fixture
def reconstructor():
    return OneWayReconstructor()


class TestBasics:
    def test_identical_reads_reconstruct_exactly(self, reconstructor):
        strand = "ACGTACGTAC"
        assert reconstructor.reconstruct([strand] * 3, 10) == strand

    def test_output_length_always_exact(self, reconstructor):
        assert len(reconstructor.reconstruct(["ACG"], 10)) == 10
        assert len(reconstructor.reconstruct(["ACGTACGTACGT"], 5)) == 5

    def test_empty_cluster_gives_fill(self, reconstructor):
        assert reconstructor.reconstruct([], 4) == "AAAA"

    def test_zero_length(self, reconstructor):
        assert reconstructor.reconstruct(["ACGT"], 0) == ""

    def test_empty_reads_ignored(self, reconstructor):
        assert reconstructor.reconstruct(["", "ACGT", ""], 4) == "ACGT"

    def test_negative_length_rejected(self, reconstructor):
        with pytest.raises(ValueError):
            reconstructor.reconstruct(["ACGT"], -1)

    def test_bad_lookahead_rejected(self):
        with pytest.raises(ValueError):
            OneWayReconstructor(lookahead=0)

    def test_bad_fill_symbol_rejected(self):
        with pytest.raises(ValueError):
            OneWayReconstructor(n_alphabet=2, fill_symbol=2)

    def test_deterministic(self, reconstructor, rng):
        strand = random_bases(80, rng)
        reads = ErrorModel.uniform(0.1).apply_many(strand, 5, rng)
        first = reconstructor.reconstruct(reads, 80)
        second = reconstructor.reconstruct(reads, 80)
        assert first == second


class TestErrorCorrection:
    def test_substitution_outvoted(self, reconstructor):
        reads = ["ACGTACGT", "ACGTACGT", "ACTTACGT"]
        assert reconstructor.reconstruct(reads, 8) == "ACGTACGT"

    def test_deletion_recovered(self, reconstructor):
        # Second read lost the 'G' at position 2.
        reads = ["ACGTACGT", "ACTACGT", "ACGTACGT"]
        assert reconstructor.reconstruct(reads, 8) == "ACGTACGT"

    def test_insertion_recovered(self, reconstructor):
        # Second read gained a 'T' before position 2.
        reads = ["ACGTACGT", "ACTGTACGT", "ACGTACGT"]
        assert reconstructor.reconstruct(reads, 8) == "ACGTACGT"

    def test_paper_figure2_example(self, reconstructor):
        # The worked example of the paper's Figure 2(b).
        original = "ACGTACGTACGT"
        reads = [
            "TCGTACGTACGT",   # substitution at position 0
            "AGTACGTACG",     # deletion of C (and a shorter tail)
            "ACGTGACGTACGT",  # insertion of G
            "ACGTATGTACGT",   # substitution
            "ACAGTACAGTACGT",  # two insertions of A
        ]
        assert reconstructor.reconstruct(reads, 12) == original

    def test_high_coverage_beats_low_coverage(self, rng):
        reconstructor = OneWayReconstructor()
        model = ErrorModel.uniform(0.10)
        length = 150
        errors = {coverage: 0 for coverage in (3, 12)}
        for _ in range(30):
            strand = random_bases(length, rng)
            pool = model.apply_many(strand, 12, rng)
            for coverage in errors:
                estimate = reconstructor.reconstruct(pool[:coverage], length)
                errors[coverage] += sum(a != b for a, b in zip(estimate, strand))
        assert errors[12] < errors[3]


class TestSkewShape:
    def test_error_grows_towards_the_end(self, rng):
        """The Figure 3 property: one-way error rises with position."""
        reconstructor = OneWayReconstructor()
        model = ErrorModel.uniform(0.05)
        length = 120
        errors = np.zeros(length)
        trials = 60
        for _ in range(trials):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            estimate = reconstructor.reconstruct(reads, length)
            errors += [a != b for a, b in zip(estimate, strand)]
        first_quarter = errors[: length // 4].mean()
        last_quarter = errors[-length // 4:].mean()
        assert last_quarter > 3 * first_quarter

    def test_substitutions_only_show_no_skew(self, rng):
        reconstructor = OneWayReconstructor()
        model = ErrorModel.substitutions_only(0.10)
        length = 120
        errors = np.zeros(length)
        for _ in range(50):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            estimate = reconstructor.reconstruct(reads, length)
            errors += [a != b for a, b in zip(estimate, strand)]
        # Without indels the scan never desynchronizes: errors stay rare
        # and roughly flat (the paper's brown line).
        assert errors[-30:].mean() <= errors[:30].mean() + 0.05 * 50


class TestBinaryAlphabet:
    def test_binary_reconstruction(self, rng):
        reconstructor = OneWayReconstructor(n_alphabet=2)
        original = rng.integers(0, 2, 40).astype(np.uint8)
        model = ErrorModel.uniform(0.1)
        reads = [model.apply_indices(original, rng, n_alphabet=2)
                 for _ in range(7)]
        estimate = reconstructor.reconstruct_indices(reads, 40)
        assert estimate.shape == (40,)
        assert (estimate == original).mean() > 0.8
