"""The columnar ``reconstruct_batch`` entry point equals the list APIs.

Every reconstructor must produce byte-identical estimates whether it is
fed per-cluster index lists (``reconstruct_many_indices``) or one
columnar :class:`~repro.channel.readbatch.ReadBatch` — including batches
with empty reads, lost clusters, and non-default alphabets.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, ReadBatch, SequencingSimulator
from repro.codec.basemap import random_bases
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    PosteriorReconstructor,
    TwoWayReconstructor,
)

RECONSTRUCTORS = [
    OneWayReconstructor, TwoWayReconstructor, IterativeReconstructor,
    PosteriorReconstructor,
]


def noisy_batch(seed=0, n_strands=15, length=48, coverage=6, rate=0.08):
    strands = [random_bases(length, rng=np.random.default_rng(100 + i))
               for i in range(n_strands)]
    simulator = SequencingSimulator(ErrorModel.uniform(rate),
                                    FixedCoverage(coverage))
    return simulator.sequence_batch(strands, rng=seed)


@pytest.mark.parametrize("reconstructor_cls", RECONSTRUCTORS)
class TestBatchEqualsList:
    def test_noisy_batch(self, reconstructor_cls):
        batch = noisy_batch()
        reconstructor = reconstructor_cls()
        from_batch = reconstructor.reconstruct_batch(batch, 48)
        from_lists = reconstructor.reconstruct_many_indices(
            batch.clusters_as_indices(), 48
        )
        assert from_batch.shape == (batch.n_clusters, 48)
        for row, expected in zip(from_batch, from_lists):
            np.testing.assert_array_equal(row, expected)

    def test_degenerate_clusters(self, reconstructor_cls):
        # Lost cluster, cluster of empty reads, ordinary cluster.
        batch = ReadBatch.from_strings(
            [[], ["", ""], ["ACGTAC", "ACTTAC", "AGGTAC"]]
        )
        reconstructor = reconstructor_cls()
        from_batch = reconstructor.reconstruct_batch(batch, 6)
        from_lists = reconstructor.reconstruct_many_indices(
            batch.clusters_as_indices(), 6
        )
        for row, expected in zip(from_batch, from_lists):
            np.testing.assert_array_equal(row, expected)

    def test_zero_length(self, reconstructor_cls):
        batch = noisy_batch(n_strands=3)
        result = reconstructor_cls().reconstruct_batch(batch, 0)
        assert result.shape == (3, 0)

    def test_empty_batch(self, reconstructor_cls):
        batch = ReadBatch.from_strings([])
        result = reconstructor_cls().reconstruct_batch(batch, 10)
        assert result.shape == (0, 10)


class TestBinaryAlphabetBatch:
    def test_two_way_binary(self):
        rng = np.random.default_rng(5)
        originals = rng.integers(0, 2, size=(8, 30)).astype(np.uint8)
        model = ErrorModel.uniform(0.1)
        from repro.channel import BatchedChannelEngine

        engine = BatchedChannelEngine(model, n_alphabet=2)
        batch = engine.sequence_counts(originals, np.full(8, 5), rng)
        reconstructor = TwoWayReconstructor(n_alphabet=2)
        from_batch = reconstructor.reconstruct_batch(batch, 30)
        from_lists = reconstructor.reconstruct_many_indices(
            batch.clusters_as_indices(), 30
        )
        for row, expected in zip(from_batch, from_lists):
            np.testing.assert_array_equal(row, expected)


class TestPosteriorBatchConfidence:
    def test_confidence_matches_list_variant(self):
        batch = noisy_batch(n_strands=5, coverage=4)
        reconstructor = PosteriorReconstructor()
        from_batch = reconstructor.reconstruct_batch_with_confidence(batch, 48)
        from_lists = reconstructor.reconstruct_many_with_confidence(
            batch.clusters_as_indices(), 48
        )
        for (be, bc), (le, lc) in zip(from_batch, from_lists):
            np.testing.assert_array_equal(be, le)
            np.testing.assert_allclose(bc, lc)
