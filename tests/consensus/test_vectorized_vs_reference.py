"""Differential tests: batched engine vs frozen reference implementations.

The production reconstructors advance every read of every cluster
simultaneously (:mod:`repro.consensus.bma`); the originals they replaced
are frozen in :mod:`repro.consensus.reference`. These tests assert the two
produce *byte-identical* output — per cluster, across whole batched units,
and under degenerate inputs — so any future optimization of the hot path
is checked by construction against an implementation that never changes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel, ReadBatch
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    PosteriorReconstructor,
    ReferenceIterativeReconstructor,
    ReferenceOneWayReconstructor,
    ReferencePosteriorReconstructor,
    ReferenceTwoWayReconstructor,
    TwoWayReconstructor,
)

PAIRS = [
    (OneWayReconstructor, ReferenceOneWayReconstructor),
    (TwoWayReconstructor, ReferenceTwoWayReconstructor),
    (IterativeReconstructor, ReferenceIterativeReconstructor),
]
PAIR_IDS = ["one_way", "two_way", "iterative"]


def random_unit(seed, n_clusters, length, rate, max_coverage, n_alphabet=4):
    """A batch of clusters with randomized coverage (including dropouts)."""
    rng = np.random.default_rng(seed)
    model = ErrorModel.uniform(rate)
    clusters = []
    for _ in range(n_clusters):
        original = rng.integers(0, n_alphabet, length).astype(np.uint8)
        coverage = int(rng.integers(0, max_coverage + 1))
        clusters.append([
            model.apply_indices(original, rng, n_alphabet=n_alphabet)
            for _ in range(coverage)
        ])
    return clusters


def assert_batch_matches_reference(fast, slow, clusters, length):
    batched = fast.reconstruct_many_indices(clusters, length)
    assert len(batched) == len(clusters)
    for reads, estimate in zip(clusters, batched):
        expected = slow.reconstruct_indices(reads, length)
        np.testing.assert_array_equal(estimate, expected)
        assert estimate.shape == (length,)


@pytest.mark.parametrize("fast_cls,ref_cls", PAIRS, ids=PAIR_IDS)
class TestBatchedMatchesReference:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        n_clusters=st.integers(1, 8),
        length=st.integers(1, 40),
        rate=st.floats(0.0, 0.25),
        max_coverage=st.integers(1, 6),
    )
    def test_randomized_units(self, fast_cls, ref_cls, seed, n_clusters,
                              length, rate, max_coverage):
        clusters = random_unit(seed, n_clusters, length, rate, max_coverage)
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, length)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_binary_alphabet(self, fast_cls, ref_cls, seed):
        clusters = random_unit(seed, 5, 24, 0.2, 4, n_alphabet=2)
        assert_batch_matches_reference(
            fast_cls(n_alphabet=2), ref_cls(n_alphabet=2), clusters, 24
        )

    def test_scalar_entry_point_matches_reference(self, fast_cls, ref_cls):
        clusters = random_unit(99, 6, 30, 0.15, 5)
        fast, slow = fast_cls(), ref_cls()
        for reads in clusters:
            np.testing.assert_array_equal(
                fast.reconstruct_indices(reads, 30),
                slow.reconstruct_indices(reads, 30),
            )

    def test_empty_batch(self, fast_cls, ref_cls):
        assert fast_cls().reconstruct_many_indices([], 10) == []

    def test_empty_and_singleton_clusters(self, fast_cls, ref_cls):
        clusters = [
            [],  # dropout: no reads at all
            [np.array([2], dtype=np.int64)],  # singleton read
            [np.zeros(0, dtype=np.int64)],  # one zero-length read
            [np.array([0, 1, 2, 3] * 5, dtype=np.int64)] * 3,
        ]
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, 12)

    def test_wildly_uneven_read_lengths(self, fast_cls, ref_cls):
        rng = np.random.default_rng(3)
        clusters = [
            [rng.integers(0, 4, n).astype(np.int64)
             for n in (1, 2, 40, 80, 3, 77)],
            [rng.integers(0, 4, 200).astype(np.int64)],
        ]
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, 60)

    def test_zero_length_output(self, fast_cls, ref_cls):
        clusters = random_unit(5, 3, 10, 0.1, 3)
        for estimate in fast_cls().reconstruct_many_indices(clusters, 0):
            assert estimate.shape == (0,)


class TestPosteriorMatchesReference:
    """The batched posterior lattice vs the frozen per-read original.

    Estimates must match byte for byte. Confidences are pinned to float
    round-off rather than bitwise: the batched lattice sums the same
    per-read vote terms, but in a different association order (segmented
    ``reduceat``, probability-domain edge products), so the soft values
    agree only to ~1e-12 relative.
    """

    def assert_matches(self, clusters, length, channel):
        fast = PosteriorReconstructor(channel=channel)
        slow = ReferencePosteriorReconstructor(channel=channel)
        batched = fast.reconstruct_many_with_confidence(clusters, length)
        assert len(batched) == len(clusters)
        for reads, (estimate, confidence) in zip(clusters, batched):
            expected, expected_confidence = slow.reconstruct_with_confidence(
                reads, length
            )
            np.testing.assert_array_equal(estimate, expected)
            np.testing.assert_allclose(
                confidence, expected_confidence, rtol=1e-9, atol=1e-12
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_units(self, seed):
        clusters = random_unit(seed, 8, 36, 0.1, 6)
        self.assert_matches(clusters, 36, ErrorModel.uniform(0.08))

    def test_high_noise_unit(self):
        clusters = random_unit(77, 6, 48, 0.22, 5)
        self.assert_matches(clusters, 48, ErrorModel.uniform(0.15))

    def test_deletion_heavy_channel(self):
        """No insertions at all (insertion step 0) plus heavy deletions —
        the regime that stresses the lattice boundary handling."""
        channel = ErrorModel(p_insertion=0.0, p_deletion=0.2,
                             p_substitution=0.05)
        rng = np.random.default_rng(9)
        clusters = []
        for _ in range(6):
            original = rng.integers(0, 4, 40).astype(np.uint8)
            clusters.append([
                channel.apply_indices(original, rng) for _ in range(4)
            ])
        self.assert_matches(clusters, 40, channel)

    def test_impossible_read_stays_finite(self):
        """The one deliberate divergence from the reference: a read that
        is impossible under the model (longer than the estimate with
        ``p_insertion=0``) zeroes the whole lattice. The reference's
        log-space rescaling turns that into NaN votes and confidences;
        the batched probability-domain path keeps the read voteless and
        finite, which is the behavior pinned here."""
        channel = ErrorModel(p_insertion=0.0, p_deletion=0.2,
                             p_substitution=0.05)
        rng = np.random.default_rng(4)
        reads = [rng.integers(0, 4, 40).astype(np.int64),
                 rng.integers(0, 4, 25).astype(np.int64)]
        fast = PosteriorReconstructor(channel=channel)
        estimate, confidence = fast.reconstruct_many_with_confidence(
            [reads], 30
        )[0]
        assert np.isfinite(confidence).all()
        assert estimate.shape == (30,)
        assert ((estimate >= 0) & (estimate < 4)).all()
        # And it is deterministic, not NaN-poisoned garbage.
        again, again_confidence = fast.reconstruct_many_with_confidence(
            [reads], 30
        )[0]
        np.testing.assert_array_equal(estimate, again)
        np.testing.assert_array_equal(confidence, again_confidence)

    def test_binary_alphabet(self):
        rng = np.random.default_rng(13)
        model = ErrorModel.uniform(0.12)
        clusters = []
        for _ in range(5):
            original = rng.integers(0, 2, 30).astype(np.uint8)
            clusters.append([
                model.apply_indices(original, rng, n_alphabet=2)
                for _ in range(4)
            ])
        fast = PosteriorReconstructor(channel=model, n_alphabet=2)
        slow = ReferencePosteriorReconstructor(channel=model, n_alphabet=2)
        for reads, (estimate, confidence) in zip(
            clusters, fast.reconstruct_many_with_confidence(clusters, 30)
        ):
            expected, expected_confidence = slow.reconstruct_with_confidence(
                reads, 30
            )
            np.testing.assert_array_equal(estimate, expected)
            np.testing.assert_allclose(
                confidence, expected_confidence, rtol=1e-9, atol=1e-12
            )

    def test_degenerate_clusters(self):
        clusters = [
            [],
            [np.zeros(0, dtype=np.int64)],
            [np.array([1], dtype=np.int64)],
            [np.array([0, 1, 2, 3] * 4, dtype=np.int64)] * 3,
        ]
        self.assert_matches(clusters, 10, ErrorModel.uniform(0.08))

    def test_columnar_entry_point(self):
        """The ReadBatch path must agree with the reference as well."""
        channel = ErrorModel.uniform(0.1)
        clusters = random_unit(5, 7, 32, 0.1, 5)
        batch = ReadBatch.from_arrays(clusters)
        fast = PosteriorReconstructor(channel=channel)
        slow = ReferencePosteriorReconstructor(channel=channel)
        for reads, (estimate, confidence) in zip(
            clusters, fast.reconstruct_batch_with_confidence(batch, 32)
        ):
            expected, expected_confidence = slow.reconstruct_with_confidence(
                reads, 32
            )
            np.testing.assert_array_equal(estimate, expected)
            np.testing.assert_allclose(
                confidence, expected_confidence, rtol=1e-9, atol=1e-12
            )


class TestBatchedRefinementInternals:
    """Properties specific to the batched refinement engines."""

    def test_iterative_chunked_equals_unchunked(self, monkeypatch):
        """A tiny DP budget forces many chunks; votes are additive, so the
        result must not change."""
        clusters = random_unit(21, 10, 40, 0.12, 6)
        whole = IterativeReconstructor().reconstruct_many_indices(clusters, 40)
        monkeypatch.setattr(IterativeReconstructor, "dp_budget_bytes", 1)
        chunked = IterativeReconstructor().reconstruct_many_indices(
            clusters, 40
        )
        for a, b in zip(whole, chunked):
            np.testing.assert_array_equal(a, b)

    def test_posterior_chunked_equals_unchunked(self, monkeypatch):
        """Chunk boundaries fall inside clusters; the segmented reduceat
        accumulation must keep per-cluster read order regardless."""
        clusters = random_unit(22, 8, 32, 0.1, 6)
        whole = PosteriorReconstructor().reconstruct_many_with_confidence(
            clusters, 32
        )
        monkeypatch.setattr(PosteriorReconstructor, "lattice_budget_bytes", 1)
        chunked = PosteriorReconstructor().reconstruct_many_with_confidence(
            clusters, 32
        )
        for (ew, cw), (ec, cc) in zip(whole, chunked):
            np.testing.assert_array_equal(ew, ec)
            np.testing.assert_allclose(cw, cc, rtol=1e-9, atol=1e-12)

    def test_iterative_active_set_isolation(self):
        """A cluster at its fixed point must not change when refined next
        to a cluster that needs many iterations."""
        easy = [np.array([0, 1, 2, 3] * 6, dtype=np.int64)] * 4
        hard = random_unit(33, 1, 24, 0.25, 6)[0]
        solo = IterativeReconstructor().reconstruct_indices(easy, 24)
        together = IterativeReconstructor().reconstruct_many_indices(
            [easy, hard, easy], 24
        )
        np.testing.assert_array_equal(together[0], solo)
        np.testing.assert_array_equal(together[2], solo)

    def test_reads_longer_and_shorter_than_length(self):
        rng = np.random.default_rng(3)
        clusters = [
            [rng.integers(0, 4, n).astype(np.int64)
             for n in (2, 90, 17, 60, 1)],
        ]
        fast = IterativeReconstructor()
        slow = ReferenceIterativeReconstructor()
        np.testing.assert_array_equal(
            fast.reconstruct_many_indices(clusters, 45)[0],
            slow.reconstruct_indices(clusters[0], 45),
        )


class TestOneWayParameterVariants:
    """Non-default lookahead / fill_symbol must match the reference too."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9), lookahead=st.integers(1, 6),
           fill=st.integers(0, 3))
    def test_lookahead_and_fill(self, seed, lookahead, fill):
        clusters = random_unit(seed, 4, 25, 0.2, 3)
        fast = OneWayReconstructor(lookahead=lookahead, fill_symbol=fill)
        slow = ReferenceOneWayReconstructor(lookahead=lookahead, fill_symbol=fill)
        assert_batch_matches_reference(fast, slow, clusters, 25)

    def test_string_batch_api(self):
        """reconstruct_many (string variant) agrees with the reference."""
        rng = np.random.default_rng(11)
        model = ErrorModel.uniform(0.1)
        strands = ["".join("ACGT"[i] for i in rng.integers(0, 4, 30))
                   for _ in range(5)]
        clusters = [model.apply_many(s, 4, rng) for s in strands]
        fast = TwoWayReconstructor()
        slow = ReferenceTwoWayReconstructor()
        batched = fast.reconstruct_many(clusters, 30)
        for reads, estimate in zip(clusters, batched):
            assert estimate == slow.reconstruct(reads, 30)
